"""Shared fixtures for the benchmark suite.

Scale selection: set ``RTSP_BENCH_SCALE`` to ``small`` (default),
``medium``, or ``paper`` (the paper's full 50-server / 1000-object
setup; budget roughly an hour for the whole suite at that scale).

Every figure benchmark writes its regenerated table to
``benchmarks/results/<figure>.txt`` so the paper-shaped output survives
pytest's output capture.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments.config import get_scale

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_scale():
    """The experiment scale benchmarks run at (env: RTSP_BENCH_SCALE)."""
    return get_scale(os.environ.get("RTSP_BENCH_SCALE", "small"))


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory collecting the regenerated figure tables."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


