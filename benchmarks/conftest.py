"""Shared fixtures for the benchmark suite.

Scale selection: set ``RTSP_BENCH_SCALE`` to ``small`` (default),
``medium``, or ``paper`` (the paper's full 50-server / 1000-object
setup; budget roughly an hour for the whole suite at that scale).

Every figure benchmark writes its regenerated table to
``benchmarks/results/<figure>.txt`` so the paper-shaped output survives
pytest's output capture.

In addition, whenever timing benchmarks ran, the session writes their
statistics as machine-readable JSON into ``benchmarks/results/`` (file
name overridable via ``RTSP_BENCH_JSON``), so CI can archive per-commit
numbers and regressions can be diffed mechanically instead of by eyeball
against the checked-in ``.txt`` tables.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform

import pytest

from repro.experiments.config import get_scale

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_scale():
    """The experiment scale benchmarks run at (env: RTSP_BENCH_SCALE)."""
    return get_scale(os.environ.get("RTSP_BENCH_SCALE", "small"))


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory collecting the regenerated figure tables."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


#: Stats fields exported per benchmark, in display order (seconds).
_STAT_FIELDS = (
    "min", "max", "mean", "stddev", "median", "iqr", "ops", "total",
)


def pytest_sessionfinish(session, exitstatus):
    """Dump timing statistics of the finished session as JSON."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not bench_session.benchmarks:
        return
    scale = os.environ.get("RTSP_BENCH_SCALE", "small")
    payload = {
        "scale": scale,
        "machine": platform.machine(),
        "python": platform.python_version(),
        "benchmarks": [],
    }
    for bench in bench_session.benchmarks:
        stats = bench.stats
        payload["benchmarks"].append(
            {
                "name": bench.name,
                "fullname": bench.fullname,
                "group": bench.group,
                "param": bench.param,
                "rounds": int(stats.rounds),
                "iterations": int(bench.iterations),
                "stats": {
                    field: float(getattr(stats, field))
                    for field in _STAT_FIELDS
                },
            }
        )
    RESULTS_DIR.mkdir(exist_ok=True)
    name = os.environ.get("RTSP_BENCH_JSON", f"bench_{scale}_latest.json")
    path = RESULTS_DIR / name
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    terminal = session.config.pluginmanager.get_plugin("terminalreporter")
    if terminal is not None:
        terminal.write_line(f"benchmark JSON written to {path}")


