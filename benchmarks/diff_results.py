"""Diff two benchmark-JSON files (benchmarks/conftest.py format).

Used by CI's perf-smoke job to compare the fresh run against the
committed baseline in ``benchmarks/results/`` and append a per-builder
markdown table to the run summary::

    python benchmarks/diff_results.py \
        --baseline benchmarks/results/perf_builders_small.json \
        --current benchmarks/results/perf_smoke.json >> "$GITHUB_STEP_SUMMARY"

The exit code only signals *missing/corrupt files* (2) or an empty
benchmark overlap (3) — never a slowdown. Hosted-runner timing is too
noisy to gate on; the table is telemetry, the deltas are for humans
reading the run summary.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict


def load_means(path: pathlib.Path) -> Dict[str, float]:
    """Map benchmark name -> mean seconds from one results file."""
    payload = json.loads(path.read_text())
    return {
        bench["name"]: float(bench["stats"]["mean"])
        for bench in payload.get("benchmarks", [])
    }


def format_table(base: Dict[str, float], cur: Dict[str, float]) -> str:
    """Markdown table of per-benchmark mean deltas (shared names only)."""
    shared = sorted(set(base) & set(cur))
    lines = [
        "### Perf smoke vs committed baseline",
        "",
        "| benchmark | baseline mean | current mean | delta |",
        "|---|---:|---:|---:|",
    ]
    for name in shared:
        b, c = base[name], cur[name]
        delta = (c - b) / b if b > 0 else float("inf")
        arrow = "🔺" if delta > 0.10 else ("🔻" if delta < -0.10 else "≈")
        lines.append(
            f"| {name} | {b * 1e3:.3f} ms | {c * 1e3:.3f} ms "
            f"| {arrow} {delta:+.1%} |"
        )
    for name in sorted(set(cur) - set(base)):
        lines.append(f"| {name} | — | {cur[name] * 1e3:.3f} ms | new |")
    for name in sorted(set(base) - set(cur)):
        lines.append(f"| {name} | {base[name] * 1e3:.3f} ms | — | missing |")
    lines.append("")
    lines.append(
        "_Deltas are means on a shared hosted runner; >±10% is flagged, "
        "nothing is gated._"
    )
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, type=pathlib.Path)
    parser.add_argument("--current", required=True, type=pathlib.Path)
    args = parser.parse_args(argv)
    try:
        base = load_means(args.baseline)
        cur = load_means(args.current)
    except (OSError, json.JSONDecodeError, KeyError, TypeError) as exc:
        print(f"diff_results: cannot load inputs: {exc}", file=sys.stderr)
        return 2
    if not set(base) & set(cur):
        print("diff_results: no overlapping benchmarks", file=sys.stderr)
        return 3
    print(format_table(base, cur))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
