"""Shared driver for the per-figure benchmarks.

Each ``benchmarks/test_figN.py`` calls :func:`regenerate` with its figure
id and shape assertions. The benchmark clock measures one full figure
regeneration (every cell, one repetition) at the selected scale; the
regenerated table — the same rows/series the paper's plot reports — is
printed and written to ``benchmarks/results/``.
"""

from __future__ import annotations

import pathlib
from typing import Callable, Optional

from repro.experiments.figures import get_figure
from repro.experiments.report import render_csv, render_table
from repro.experiments.runner import FigureResult, run_figure


def write_result(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Persist (and echo) one regenerated table."""
    path = results_dir / f"{name}.txt"
    path.write_text(text, encoding="utf-8")
    print(text)


def regenerate(
    benchmark,
    bench_scale,
    results_dir,
    figure_id: str,
    check_shape: Optional[Callable[[FigureResult], None]] = None,
    repetitions: int = 1,
) -> FigureResult:
    """Regenerate one paper figure under the benchmark clock."""
    spec = get_figure(figure_id)
    result = benchmark.pedantic(
        run_figure,
        args=(spec, bench_scale),
        kwargs={"repetitions": repetitions},
        rounds=1,
        iterations=1,
    )
    text = render_table(result)
    write_result(results_dir, f"{figure_id}_{bench_scale.name}", text)
    write_result(
        results_dir, f"{figure_id}_{bench_scale.name}_csv", render_csv(result)
    )
    if check_shape is not None:
        check_shape(result)
    return result
