"""Measure the runtime overhead of the observability layer.

The zero-overhead-when-off contract is structural (hot paths capture
instruments once and skip them with a single ``is None`` check), but
this script puts a number on it. Three configurations of the same
seeded pipeline build are timed in interleaved rounds (so clock drift
and cache warmth cancel out):

* ``disabled`` — no observability context at all (the production path);
* ``null``     — :data:`repro.obs.NULL_TRACER` explicitly installed,
  metrics off: must be indistinguishable from ``disabled``;
* ``enabled``  — a live :class:`~repro.obs.Tracer` plus
  :class:`~repro.obs.MetricsRegistry`.

Reported ratios (written to ``benchmarks/results/BENCH_obs.json``):

* ``disabled_ratio`` = median(null) / median(disabled) — the cost of
  the disabled instrumentation path; the obs-smoke CI job flags > 1.05;
* ``enabled_ratio`` = median(enabled) / median(disabled) — telemetry
  for how expensive full recording is (not gated; it does real work).

Usage::

    PYTHONPATH=src python benchmarks/obs_overhead.py \
        [--pipeline GOLCF+H1+H2+OP1] [--servers 20] [--objects 100] \
        [--rounds 7] [--out benchmarks/results/BENCH_obs.json]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time

from repro.core.pipeline import build_pipeline
from repro.obs import MetricsRegistry, NULL_TRACER, Tracer, observed, use_tracer
from repro.workloads.regular import paper_instance

FORMAT = "rtsp-bench-obs/1"


def _time_build(pipeline, instance, seed) -> float:
    start = time.perf_counter()
    pipeline.run(instance, rng=seed)
    return time.perf_counter() - start


def measure(pipeline_name, servers, objects, rounds, seed=0):
    pipeline = build_pipeline(pipeline_name)
    instance = paper_instance(
        replicas=2, num_servers=servers, num_objects=objects, rng=seed
    )
    pipeline.run(instance, rng=seed)  # warm-up (JIT-free, but touches caches)
    samples = {"disabled": [], "null": [], "enabled": []}
    for _ in range(rounds):
        samples["disabled"].append(_time_build(pipeline, instance, seed))
        with use_tracer(NULL_TRACER):
            samples["null"].append(_time_build(pipeline, instance, seed))
        with observed(tracer=Tracer(), metrics=MetricsRegistry()):
            samples["enabled"].append(_time_build(pipeline, instance, seed))
    medians = {k: statistics.median(v) for k, v in samples.items()}
    return {
        "format": FORMAT,
        "pipeline": pipeline_name,
        "num_servers": servers,
        "num_objects": objects,
        "rounds": rounds,
        "seed": seed,
        "median_seconds": medians,
        "disabled_ratio": medians["null"] / medians["disabled"],
        "enabled_ratio": medians["enabled"] / medians["disabled"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pipeline", default="GOLCF+H1+H2+OP1")
    parser.add_argument("--servers", type=int, default=20)
    parser.add_argument("--objects", type=int, default=100)
    parser.add_argument("--rounds", type=int, default=7)
    parser.add_argument("--threshold", type=float, default=1.05,
                        help="fail when disabled_ratio exceeds this")
    parser.add_argument("--out", default="benchmarks/results/BENCH_obs.json")
    args = parser.parse_args(argv)

    result = measure(args.pipeline, args.servers, args.objects, args.rounds)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(
        f"{args.pipeline} ({args.servers}x{args.objects}, "
        f"{args.rounds} rounds): "
        f"disabled={result['median_seconds']['disabled'] * 1e3:.1f}ms  "
        f"disabled_ratio={result['disabled_ratio']:.3f}  "
        f"enabled_ratio={result['enabled_ratio']:.3f}"
    )
    print(f"wrote {args.out}")
    if result["disabled_ratio"] > args.threshold:
        print(
            f"FAIL: disabled_ratio {result['disabled_ratio']:.3f} "
            f"> {args.threshold}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
