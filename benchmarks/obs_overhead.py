"""Measure the runtime overhead of the observability layer.

The zero-overhead-when-off contract is structural (hot paths capture
instruments once and skip them with a single ``is None`` check), but
this script puts a number on it. Three planning tiers are timed —

* ``direct``  — the reference pipeline on a paper-sized instance;
* ``flat``    — the array-core builder on a scale-bench medium
  instance (100x1000);
* ``sharded`` — ``plan_sharded`` over a shard-bench medium composed
  instance (8 blocks of 25x250);

each under three configurations, interleaved per round so clock drift
and cache warmth cancel out:

* ``disabled`` — no observability context at all (the production path);
* ``null``     — :data:`repro.obs.NULL_TRACER` explicitly installed,
  metrics/events off: must be indistinguishable from ``disabled``;
* ``full``     — live :class:`~repro.obs.Tracer`,
  :class:`~repro.obs.MetricsRegistry` and
  :class:`~repro.obs.EventStream`, with Prometheus and OTLP export of
  the captured telemetry *included in the timing*.

Reported per tier (written to ``benchmarks/results/BENCH_obs.json``):

* ``disabled_ratio`` = median(null) / median(disabled) — the cost of
  the disabled instrumentation path; the obs-smoke CI job flags > 1.05
  on the ``direct`` tier;
* ``full_ratio`` = median(full) / median(disabled) — events + export
  overhead; the budget is <= 1.10 on the medium tiers (telemetry, not
  gated in CI: hosted-runner timing is too noisy).

The output also carries a ``benchmarks`` list in the
``benchmarks/conftest.py`` shape (``{"name", "stats": {"mean"}}``) so
``benchmarks/diff_results.py`` can diff a fresh run against the
committed baseline.

Usage::

    PYTHONPATH=src python benchmarks/obs_overhead.py \
        [--tiers direct,flat,sharded] [--rounds 7] \
        [--out benchmarks/results/BENCH_obs.json]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time

from scale_bench import synth_instance

from repro.core.pipeline import build_pipeline
from repro.flat import flat_build
from repro.obs import (
    EventStream,
    MetricsRegistry,
    NULL_TRACER,
    Tracer,
    observed,
    use_tracer,
)
from repro.obs.export import metrics_to_otlp, prometheus_text, spans_to_otlp
from repro.shard import compose_instances, plan_sharded
from repro.workloads.regular import paper_instance

FORMAT = "rtsp-bench-obs/2"

CONFIGS = ("disabled", "null", "full")


def _tier_direct(seed):
    pipeline = build_pipeline("GOLCF+H1+H2+OP1")
    instance = paper_instance(
        replicas=2, num_servers=20, num_objects=100, rng=seed
    )
    return lambda: pipeline.run(instance, rng=seed), {
        "num_servers": 20, "num_objects": 100,
        "pipeline": "GOLCF+H1+H2+OP1",
    }


def _tier_flat(seed):
    instance = synth_instance(100, 1000, seed=seed)
    return lambda: flat_build("GOLCF", instance, rng=seed), {
        "num_servers": 100, "num_objects": 1000, "builder": "GOLCF",
    }


def _tier_sharded(seed):
    composed = compose_instances(
        [synth_instance(25, 250, seed=seed * 1000 + b) for b in range(8)]
    )
    pipeline = build_pipeline("GOLCF+H1")
    return (
        lambda: plan_sharded(composed, pipeline, shards=4, workers=1,
                             rng=seed),
        {"blocks": 8, "num_servers": 200, "num_objects": 2000,
         "pipeline": "GOLCF+H1"},
    )


TIERS = {
    "direct": (_tier_direct, 7),
    "flat": (_tier_flat, 5),
    "sharded": (_tier_sharded, 3),
}


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _timed_full(fn) -> float:
    """One fully-observed run: record everything, then export it."""
    tracer = Tracer()
    registry = MetricsRegistry()
    stream = EventStream()
    start = time.perf_counter()
    with observed(tracer=tracer, metrics=registry, events=stream):
        fn()
    snapshot = registry.snapshot()
    prometheus_text(snapshot)
    metrics_to_otlp(snapshot)
    spans_to_otlp(tracer.spans)
    stream.to_lines()
    return time.perf_counter() - start


def measure_tier(name: str, rounds: int, seed: int = 0):
    factory, default_rounds = TIERS[name]
    rounds = rounds or default_rounds
    fn, info = factory(seed)
    fn()  # warm-up (touches caches, materializes lazy state)
    samples = {config: [] for config in CONFIGS}
    for _ in range(rounds):
        samples["disabled"].append(_timed(fn))
        with use_tracer(NULL_TRACER):
            samples["null"].append(_timed(fn))
        samples["full"].append(_timed_full(fn))
    medians = {k: statistics.median(v) for k, v in samples.items()}
    return {
        "tier": name,
        "rounds": rounds,
        "median_seconds": medians,
        "disabled_ratio": medians["null"] / medians["disabled"],
        "full_ratio": medians["full"] / medians["disabled"],
        **info,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiers", default="direct,flat,sharded",
                        help="comma-separated subset of "
                             + ",".join(TIERS))
    parser.add_argument("--rounds", type=int, default=0,
                        help="override per-tier round counts")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--threshold", type=float, default=1.05,
                        help="fail when the direct tier's disabled_ratio "
                             "exceeds this")
    parser.add_argument("--out", default="benchmarks/results/BENCH_obs.json")
    args = parser.parse_args(argv)

    tiers = [t.strip() for t in args.tiers.split(",") if t.strip()]
    unknown = [t for t in tiers if t not in TIERS]
    if unknown:
        parser.error(f"unknown tiers: {unknown}; choose from {sorted(TIERS)}")

    results = []
    for tier in tiers:
        result = measure_tier(tier, args.rounds, args.seed)
        results.append(result)
        print(
            f"obs[{tier}] ({result['rounds']} rounds): "
            f"disabled={result['median_seconds']['disabled'] * 1e3:.1f}ms  "
            f"disabled_ratio={result['disabled_ratio']:.3f}  "
            f"full_ratio={result['full_ratio']:.3f}"
        )

    payload = {
        "format": FORMAT,
        "seed": args.seed,
        "tiers": results,
        # diff_results.py-compatible view: one benchmark per tier/config.
        "benchmarks": [
            {
                "name": f"obs[{r['tier']}]/{config}",
                "stats": {"mean": r["median_seconds"][config]},
                "tier": r["tier"],
                "config": config,
                "rounds": r["rounds"],
            }
            for r in results
            for config in CONFIGS
        ],
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")

    direct = next((r for r in results if r["tier"] == "direct"), None)
    if direct is not None and direct["disabled_ratio"] > args.threshold:
        print(
            f"FAIL: direct disabled_ratio {direct['disabled_ratio']:.3f} "
            f"> {args.threshold}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
