"""Scaling-law benchmark: flat core vs reference across instance sizes.

Standalone (no pytest-benchmark dependency) so CI's scale-smoke job and
local runs share one entry point::

    PYTHONPATH=src python benchmarks/scale_bench.py --tier medium \
        --out benchmarks/results/BENCH_scale_current.json

Tiers: small (20x100), medium (100x1000), large (1000x10000 — the
acceptance target: GOLCF must finish in single-digit seconds on the
flat core). Each builder is timed on both cores over the same synthetic
instance; the schedules are asserted byte-identical and (below the
large tier) replay-validated, so the benchmark doubles as a
differential check at scales the unit suites never touch.

Output follows the ``benchmarks/conftest.py`` JSON shape
(``{"benchmarks": [{"name", "stats": {"mean", ...}}]}``) so
``benchmarks/diff_results.py`` can diff runs against the committed
``benchmarks/results/BENCH_scale.json`` baseline.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

from repro.core.base import get_builder
from repro.flat import flat_build, flat_builder_names, flat_mode_override
from repro.model.instance import RtspInstance

#: tier name -> (num_servers, num_objects, timing rounds)
TIERS = {
    "small": (20, 100, 5),
    "medium": (100, 1000, 3),
    "large": (1000, 10000, 2),
}

BUILDERS = tuple(flat_builder_names())


def synth_instance(num_servers: int, num_objects: int, seed: int = 0):
    """A paper-shaped instance built in O(M^2 + N) — ``paper_instance``'s
    knapsack packing is itself super-linear, which would swamp the
    large-tier timings, so the benchmark draws placements directly:
    ~2 replicas per object old and new, 10% storage slack, Manhattan
    grid link costs."""
    rng = np.random.default_rng(seed)
    sizes = rng.integers(1, 11, size=num_objects).astype(float)
    coords = rng.random((num_servers, 2)) * 100
    costs = np.ceil(
        np.abs(coords[:, None, :] - coords[None, :, :]).sum(axis=2)
    )
    np.fill_diagonal(costs, 0.0)
    x_old = np.zeros((num_servers, num_objects), dtype=np.int8)
    x_new = np.zeros((num_servers, num_objects), dtype=np.int8)
    cols = np.arange(num_objects)
    for matrix in (x_old, x_new):
        picks = rng.integers(0, num_servers, size=(num_objects, 2))
        matrix[picks[:, 0], cols] = 1
        matrix[picks[:, 1], cols] = 1
    caps = np.maximum(x_old @ sizes, x_new @ sizes) * 1.1 + 5
    return RtspInstance.create(sizes, caps, costs, x_old, x_new)


def _time(fn, rounds: int):
    best, result = None, None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        dt = time.perf_counter() - t0
        best = dt if best is None or dt < best else best
    return best, result


def run_tier(tier: str, seed: int, verbose: bool = True):
    """Benchmark every builder on both cores for one tier."""
    m, n, rounds = TIERS[tier]
    inst = synth_instance(m, n, seed=seed)
    records = []
    for name in BUILDERS:
        with flat_mode_override("off"):
            t_ref, ref = _time(
                lambda: get_builder(name).build(inst, rng=seed), rounds
            )
        t_flat, flat = _time(lambda: flat_build(name, inst, rng=seed), rounds)
        if ref.actions() != flat.actions():
            raise AssertionError(
                f"flat/reference divergence: tier={tier} builder={name}"
            )
        if tier != "large":
            report = flat.validate(inst)
            if not report.ok:
                raise AssertionError(
                    f"invalid schedule: tier={tier} builder={name}: "
                    f"{report.message}"
                )
        for core, mean in (("ref", t_ref), ("flat", t_flat)):
            records.append(
                {
                    "name": f"scale[{tier}]/{name}/{core}",
                    "stats": {"mean": mean},
                    "tier": tier,
                    "builder": name,
                    "core": core,
                    "num_servers": m,
                    "num_objects": n,
                    "actions": len(flat),
                    "rounds": rounds,
                }
            )
        if verbose:
            print(
                f"  {tier:6s} {name:6s} ref {t_ref:7.3f}s  "
                f"flat {t_flat:7.3f}s  speedup {t_ref / t_flat:4.2f}x  "
                f"({len(flat)} actions)",
                flush=True,
            )
    return records


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tier",
        default="all",
        choices=sorted(TIERS) + ["all"],
        help="instance tier to run (default: all)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="instance + builder seed"
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="write results JSON here",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-builder lines"
    )
    args = parser.parse_args(argv)
    tiers = sorted(TIERS) if args.tier == "all" else [args.tier]
    benchmarks = []
    for tier in tiers:
        if not args.quiet:
            m, n, _ = TIERS[tier]
            print(f"tier {tier}: {m} servers x {n} objects", flush=True)
        benchmarks.extend(run_tier(tier, args.seed, verbose=not args.quiet))
    payload = {
        "format": "rtsp-bench-scale/1",
        "seed": args.seed,
        "benchmarks": benchmarks,
    }
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
