"""Loopback load test for the planning service, with an SLO gate.

Boots an in-process :class:`~repro.serve.server.ServerHandle` and
drives it with closed-loop clients (locust-style: each worker thread
issues its next request the moment the previous response lands), over
real sockets on 127.0.0.1. Standalone — no pytest dependency — so the
CI serve-smoke job and local runs share one entry point::

    PYTHONPATH=src python benchmarks/serve_bench.py --tier small \
        --out benchmarks/results/BENCH_serve_current.json

Each tier plans a pool of paper-shaped instances; every unique
``(instance, pipeline, seed)`` is requested by several clients, so the
run measures both cold plans and topology-hash cache replays. Every
response is schema-checked, and one sampled response per unique key is
compared byte-for-byte against the in-process
``build_pipeline(...).run(...)`` path — the load test doubles as a
differential check of the wire format.

The SLO gate is **blocking** (exit code 1): p99 sync-plan latency and
closed-loop throughput must meet the tier's thresholds. Thresholds are
deliberately generous (~20x local headroom) so only real regressions —
an accidental O(n^2) in the serialisation path, a lock across planning,
a broken cache — trip them, not hosted-runner noise.

Output: ``{"benchmarks": [{"name", "stats": {"mean"}}]}`` (the
``benchmarks/conftest.py`` shape), so ``benchmarks/diff_results.py``
diffs runs against the committed ``BENCH_serve.json`` baseline; the
``slo`` block records the gate verdict alongside.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import threading
import time
from typing import Any, Dict, List, Tuple

from repro.core.pipeline import build_pipeline
from repro.io import instance_to_dict, schedule_to_dict
from repro.serve import ServeClient, ServeConfig, ServerHandle, canonical_json
from repro.serve.schemas import PLAN_RESPONSE_FORMAT, check_response_format
from repro.workloads import paper_instance

#: tier -> workload + closed-loop shape
TIERS: Dict[str, Dict[str, Any]] = {
    # 4 clients x 10 requests over 4 unique keys on 20x100 instances:
    # every key is planned cold once and replayed ~9x from cache.
    "small": dict(
        servers=20, objects=100, unique=4, clients=4, requests=10, workers=2
    ),
    # 6 clients x 12 requests over 6 unique keys on 50x500 instances.
    "medium": dict(
        servers=50, objects=500, unique=6, clients=6, requests=12, workers=3
    ),
}

#: tier -> SLO thresholds (the blocking gate)
SLOS: Dict[str, Dict[str, float]] = {
    "small": {"p99_seconds": 2.0, "min_rps": 4.0},
    "medium": {"p99_seconds": 8.0, "min_rps": 1.0},
}

PIPELINE = "GOLCF+H1"


def percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 1]) of a non-empty sample."""
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[index]


def build_pool(tier: str, seed: int) -> List[Tuple[Dict[str, Any], int]]:
    """The tier's unique request keys: (serialised instance, seed)."""
    spec = TIERS[tier]
    pool = []
    for index in range(spec["unique"]):
        instance = paper_instance(
            replicas=2,
            num_servers=spec["servers"],
            num_objects=spec["objects"],
            rng=seed + index,
        )
        pool.append((instance_to_dict(instance), index))
    return pool


class ClosedLoopClient(threading.Thread):
    """One closed-loop worker: request, record, repeat."""

    def __init__(
        self,
        worker_id: int,
        url: str,
        pool: List[Tuple[Dict[str, Any], int]],
        requests: int,
        start_gate: threading.Event,
    ) -> None:
        super().__init__(name=f"bench-client-{worker_id}", daemon=True)
        self.worker_id = worker_id
        self.client = ServeClient(url, timeout=120.0)
        self.pool = pool
        self.requests = requests
        self.start_gate = start_gate
        self.latencies: List[Tuple[bool, float]] = []  # (cache_hit, seconds)
        self.errors: List[str] = []

    def run(self) -> None:
        self.start_gate.wait()
        for i in range(self.requests):
            instance_dict, seed = self.pool[
                (self.worker_id + i) % len(self.pool)
            ]
            t0 = time.perf_counter()
            try:
                status, payload = self.client.plan(
                    instance_dict=instance_dict,
                    pipeline=PIPELINE,
                    seed=seed,
                )
            except Exception as exc:  # noqa: BLE001 - recorded, not fatal
                self.errors.append(f"transport error: {exc}")
                continue
            elapsed = time.perf_counter() - t0
            if status != 200:
                self.errors.append(f"status {status}: {payload}")
                continue
            try:
                check_response_format(payload, PLAN_RESPONSE_FORMAT)
            except Exception as exc:  # noqa: BLE001 - recorded, not fatal
                self.errors.append(f"schema violation: {exc}")
                continue
            self.latencies.append((bool(payload["cache_hit"]), elapsed))


def differential_check(
    url: str, pool: List[Tuple[Dict[str, Any], int]]
) -> None:
    """Served schedules must be byte-identical to the library path."""
    from repro.io import instance_from_dict

    client = ServeClient(url, timeout=120.0)
    instance_dict, seed = pool[0]
    status, payload = client.plan(
        instance_dict=instance_dict, pipeline=PIPELINE, seed=seed
    )
    if status != 200:
        raise AssertionError(f"differential plan failed: {status} {payload}")
    instance = instance_from_dict(instance_dict)
    reference = schedule_to_dict(
        build_pipeline(PIPELINE).run(instance, rng=seed)
    )
    if canonical_json(payload["schedule"]) != canonical_json(reference):
        raise AssertionError(
            "served schedule differs from the library path "
            f"(pipeline={PIPELINE}, seed={seed})"
        )


def run_tier(tier: str, seed: int, verbose: bool = True) -> Dict[str, Any]:
    spec = TIERS[tier]
    slo = SLOS[tier]
    pool = build_pool(tier, seed)
    config = ServeConfig(workers=spec["workers"], max_pending=256)
    with ServerHandle.start(config=config) as handle:
        # Warm nothing: the first request per key measures a cold plan.
        differential_errors: List[str] = []
        start_gate = threading.Event()
        clients = [
            ClosedLoopClient(i, handle.url, pool, spec["requests"], start_gate)
            for i in range(spec["clients"])
        ]
        for client in clients:
            client.start()
        wall_start = time.perf_counter()
        start_gate.set()
        for client in clients:
            client.join()
        wall = time.perf_counter() - wall_start
        try:
            differential_check(handle.url, pool)
        except AssertionError as exc:
            differential_errors.append(str(exc))
        health = ServeClient(handle.url).healthz()

    errors = [e for c in clients for e in c.errors] + differential_errors
    all_lat = [sec for c in clients for (_, sec) in c.latencies]
    cold = [sec for c in clients for (hit, sec) in c.latencies if not hit]
    hits = [sec for c in clients for (hit, sec) in c.latencies if hit]
    completed = len(all_lat)
    if not all_lat:
        raise AssertionError(f"no successful requests; errors: {errors[:5]}")
    rps = completed / wall if wall > 0 else 0.0
    p50 = percentile(all_lat, 0.50)
    p99 = percentile(all_lat, 0.99)

    benchmarks = [
        {"name": f"serve[{tier}].plan.p50", "stats": {"mean": p50}},
        {"name": f"serve[{tier}].plan.p99", "stats": {"mean": p99}},
        {
            "name": f"serve[{tier}].plan.throughput_rps",
            "stats": {"mean": rps},
        },
    ]
    if cold:
        benchmarks.append(
            {
                "name": f"serve[{tier}].plan_cold.p50",
                "stats": {"mean": percentile(cold, 0.50)},
            }
        )
    if hits:
        benchmarks.append(
            {
                "name": f"serve[{tier}].plan_cached.p50",
                "stats": {"mean": percentile(hits, 0.50)},
            }
        )

    slo_failures: List[str] = []
    if errors:
        slo_failures.append(f"{len(errors)} failed requests: {errors[:3]}")
    if p99 > slo["p99_seconds"]:
        slo_failures.append(
            f"p99 {p99:.3f}s exceeds the {slo['p99_seconds']:g}s SLO"
        )
    if rps < slo["min_rps"]:
        slo_failures.append(
            f"throughput {rps:.2f} req/s below the {slo['min_rps']:g} req/s SLO"
        )

    result = {
        "benchmarks": benchmarks,
        "meta": {
            "tier": tier,
            "pipeline": PIPELINE,
            "seed": seed,
            "clients": spec["clients"],
            "requests_per_client": spec["requests"],
            "unique_keys": spec["unique"],
            "completed": completed,
            "cold_plans": len(cold),
            "cache_replays": len(hits),
            "wall_seconds": wall,
            "health_status": health[0],
        },
        "slo": {
            "p99_seconds": slo["p99_seconds"],
            "min_rps": slo["min_rps"],
            "observed_p99_seconds": p99,
            "observed_rps": rps,
            "passed": not slo_failures,
            "failures": slo_failures,
        },
    }
    if verbose:
        print(
            f"[{tier}] {completed} requests ({len(cold)} cold, "
            f"{len(hits)} cached) in {wall:.2f}s -> {rps:.1f} req/s, "
            f"p50 {p50 * 1e3:.1f} ms, p99 {p99 * 1e3:.1f} ms"
        )
        for failure in slo_failures:
            print(f"[{tier}] SLO FAIL: {failure}")
        if not slo_failures:
            print(
                f"[{tier}] SLO OK: p99 <= {slo['p99_seconds']:g}s, "
                f"throughput >= {slo['min_rps']:g} req/s, "
                "schema + byte-identity checks passed"
            )
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tier", choices=sorted(TIERS), default="small",
        help="workload size (default: small)",
    )
    parser.add_argument("--seed", type=int, default=0, help="instance seed")
    parser.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="write benchmark JSON here (diff_results.py shape)",
    )
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    result = run_tier(args.tier, args.seed, verbose=not args.quiet)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
        if not args.quiet:
            print(f"wrote {args.out}")
    if not result["slo"]["passed"]:
        print("serve_bench: SLO gate FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
