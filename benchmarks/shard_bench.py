"""Sharded-planning benchmark: unsharded vs component shards vs pool.

Standalone (no pytest-benchmark dependency) so CI's shard-smoke job and
local runs share one entry point::

    PYTHONPATH=src python benchmarks/shard_bench.py --tier small \
        --out benchmarks/results/BENCH_shard_current.json

Each tier composes ``blocks`` disconnected synthetic instances (the
scale benchmark's generator) into one multi-component instance, then
times three planning paths over the same composed instance:

* ``unsharded`` — one global ``Pipeline.run``;
* ``sharded-serial`` — ``plan_sharded(workers=1)``: partition, plan each
  component with its derived seed, stitch, invariant-check;
* ``sharded-pool`` — the same with a fork pool, so the delta against
  ``sharded-serial`` is pure pool win/overhead.

The two sharded runs are asserted byte-identical (the worker-count
invariance contract), and the stitched schedule is invariant-checked by
``plan_sharded`` itself, so the benchmark doubles as a differential
check at sizes the unit suites never touch.

Output follows the ``benchmarks/conftest.py`` JSON shape so
``benchmarks/diff_results.py`` can diff runs against the committed
``benchmarks/results/BENCH_shard.json`` baseline.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from scale_bench import synth_instance

from repro.core.pipeline import build_pipeline
from repro.shard import compose_instances, plan_sharded

#: tier name -> (blocks, servers per block, objects per block, rounds)
TIERS = {
    "small": (4, 10, 50, 5),
    "medium": (8, 25, 250, 3),
    "large": (16, 60, 600, 2),
}

PIPELINE = "GOLCF+H1"
POOL_WORKERS = 4


def _time(fn, rounds: int):
    best, result = None, None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        dt = time.perf_counter() - t0
        best = dt if best is None or dt < best else best
    return best, result


def run_tier(tier: str, seed: int, verbose: bool = True):
    """Benchmark the three planning paths for one tier."""
    blocks, m, n, rounds = TIERS[tier]
    composed = compose_instances(
        [
            synth_instance(m, n, seed=seed * 1000 + block)
            for block in range(blocks)
        ]
    )
    pipeline = build_pipeline(PIPELINE)
    # Timed runs skip the stitched invariant check (pure-Python, serial:
    # it would swamp the planning deltas the benchmark exists to show);
    # one validated run below keeps the differential guarantee.
    t_plain, _ = _time(lambda: pipeline.run(composed, rng=seed), rounds)
    t_serial, serial = _time(
        lambda: plan_sharded(
            composed, pipeline, workers=1, rng=seed, validate=False
        ),
        rounds,
    )
    t_pool, pooled = _time(
        lambda: plan_sharded(
            composed, pipeline, shards=POOL_WORKERS, workers=POOL_WORKERS,
            rng=seed, validate=False,
        ),
        rounds,
    )
    if list(serial.schedule) != list(pooled.schedule):
        raise AssertionError(
            f"worker-count divergence: tier={tier} pipeline={PIPELINE}"
        )
    checked = plan_sharded(
        composed, pipeline, shards=POOL_WORKERS, workers=POOL_WORKERS,
        rng=seed,
    )
    if list(checked.schedule) != list(pooled.schedule):
        raise AssertionError(f"validated-run divergence: tier={tier}")
    records = []
    for path, mean in (
        ("unsharded", t_plain),
        ("sharded-serial", t_serial),
        ("sharded-pool", t_pool),
    ):
        records.append(
            {
                "name": f"shard[{tier}]/{PIPELINE}/{path}",
                "stats": {"mean": mean},
                "tier": tier,
                "path": path,
                "blocks": blocks,
                "num_servers": composed.num_servers,
                "num_objects": composed.num_objects,
                "actions": pooled.num_actions,
                "rounds": rounds,
            }
        )
    if verbose:
        print(
            f"  {tier:6s} plain {t_plain:7.3f}s  serial {t_serial:7.3f}s  "
            f"pool({POOL_WORKERS}) {t_pool:7.3f}s  "
            f"({blocks} blocks, {pooled.num_actions} actions)",
            flush=True,
        )
    return records


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tier",
        default="all",
        choices=sorted(TIERS) + ["all"],
        help="composed-instance tier to run (default: all)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="instance + planning seed"
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="write results JSON here",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-tier lines"
    )
    args = parser.parse_args(argv)
    tiers = sorted(TIERS) if args.tier == "all" else [args.tier]
    benchmarks = []
    for tier in tiers:
        if not args.quiet:
            blocks, m, n, _ = TIERS[tier]
            print(
                f"tier {tier}: {blocks} blocks x ({m} servers, {n} objects)",
                flush=True,
            )
        benchmarks.extend(run_tier(tier, args.seed, verbose=not args.quiet))
    payload = {
        "format": "rtsp-bench-shard/1",
        "seed": args.seed,
        "pipeline": PIPELINE,
        "benchmarks": benchmarks,
    }
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
