"""Ablation: builder strategies head to head (incl. the GMC extension).

Compares all five builders (paper's four plus GMC) bare and under the
full optimizer stack, on the r=2 zero-slack workload. Tests the paper's
§4.2 rationale for GOLCF's object-at-a-time order against the global
greedy alternative.
"""

import numpy as np
import pytest

from figure_bench import write_result
from repro.core import build_pipeline
from repro.workloads.regular import paper_instance

BUILDERS = ["RDF", "GSDF", "AR", "GOLCF", "GMC"]
REPS = 3


def test_builder_comparison(benchmark, bench_scale, results_dir):
    instance = paper_instance(
        replicas=2,
        num_servers=bench_scale.num_servers,
        num_objects=bench_scale.num_objects,
        rng=bench_scale.base_seed,
    )

    def run_all():
        rows = []
        for name in BUILDERS:
            bare_costs, bare_dums, full_costs, full_dums = [], [], [], []
            for seed in range(REPS):
                bare = build_pipeline(name).run(instance, rng=seed)
                full = build_pipeline(f"{name}+H1+H2+OP1").run(instance, rng=seed)
                bare_costs.append(bare.cost(instance))
                bare_dums.append(bare.count_dummy_transfers(instance))
                full_costs.append(full.cost(instance))
                full_dums.append(full.count_dummy_transfers(instance))
            rows.append(
                (
                    name,
                    float(np.mean(bare_costs)),
                    float(np.mean(bare_dums)),
                    float(np.mean(full_costs)),
                    float(np.mean(full_dums)),
                )
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = [
        "builder comparison (bare vs +H1+H2+OP1)",
        f"{'builder':<8} {'bare cost':>14} {'bare dum':>9} "
        f"{'full cost':>14} {'full dum':>9}",
    ]
    for name, bc, bd, fc, fd in rows:
        lines.append(f"{name:<8} {bc:>14,.0f} {bd:>9.1f} {fc:>14,.0f} {fd:>9.1f}")
    write_result(
        results_dir,
        f"builder_comparison_{bench_scale.name}",
        "\n".join(lines) + "\n",
    )
    by_name = {name: (bc, bd, fc, fd) for name, bc, bd, fc, fd in rows}
    # cost-aware greedies beat the random baselines
    assert by_name["GOLCF"][0] < by_name["RDF"][0]
    assert by_name["GMC"][0] < by_name["AR"][0]
    # the optimizer stack helps every builder
    for name in BUILDERS:
        assert by_name[name][2] <= by_name[name][0] + 1e-9
