"""Ablation: sensitivity to the dummy-cost constant ``a`` (DESIGN.md 4).

The paper fixes ``a = 1`` (§5.1). Sweeping ``a`` shows (i) the dummy
count of dummy-minimising pipelines is insensitive to ``a`` — they
count, not weigh, dummies — and (ii) the *cost* penalty of the remaining
dummies scales linearly, which is exactly why H1+H2's savings grow with
``a``.
"""

import pytest

from figure_bench import write_result
from repro.core import build_pipeline
from repro.workloads.regular import paper_instance

A_VALUES = [0.5, 1.0, 2.0, 4.0]


def test_dummy_constant_sweep(benchmark, bench_scale, results_dir):
    def sweep():
        rows = []
        for a in A_VALUES:
            inst = paper_instance(
                replicas=2,
                num_servers=bench_scale.num_servers,
                num_objects=bench_scale.num_objects,
                dummy_constant=a,
                rng=bench_scale.base_seed,
            )
            golcf = build_pipeline("GOLCF").run(inst, rng=0)
            winner = build_pipeline("GOLCF+H1+H2+OP1").run(inst, rng=0)
            rows.append(
                (
                    a,
                    golcf.count_dummy_transfers(inst),
                    golcf.cost(inst),
                    winner.count_dummy_transfers(inst),
                    winner.cost(inst),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "dummy-cost constant sweep (GOLCF vs GOLCF+H1+H2+OP1)",
        f"{'a':>5} {'golcf_dum':>10} {'golcf_cost':>14} "
        f"{'winner_dum':>11} {'winner_cost':>14} {'saving':>8}",
    ]
    for a, gd, gc, wd, wc in rows:
        lines.append(
            f"{a:>5g} {gd:>10d} {gc:>14,.0f} {wd:>11d} {wc:>14,.0f} "
            f"{1 - wc / gc:>7.1%}"
        )
    write_result(
        results_dir, f"dummy_constant_{bench_scale.name}", "\n".join(lines) + "\n"
    )
    # winner never has more dummies, and its saving grows with a
    savings = [1 - wc / gc for _, _, gc, _, wc in rows]
    assert all(wd <= gd for _, gd, _, wd, _ in rows)
    assert savings[-1] >= savings[0] - 1e-9
