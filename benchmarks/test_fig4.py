"""Benchmark: regenerate paper Figure 4.

Dummy transfers vs. replicas per object (equal sizes), series AR,
AR+H1+H2, GOLCF, GOLCF+H1+H2. Expected shape: dummies fall with
replicas; H1+H2 nearly nullify them from two replicas on.
"""

from figure_bench import regenerate


def check_shape(result) -> None:
    for base in ("AR", "GOLCF"):
        series = result.series(base)
        improved = result.series(f"{base}+H1+H2")
        # H1+H2 never worse, and dummies shrink as replicas grow
        assert all(i <= b + 1e-9 for i, b in zip(improved, series))
        assert series[0] >= series[-1]
    r2 = result.spec.x_values.index(2)
    assert result.series("GOLCF+H1+H2")[r2] <= 2.0


def test_fig4_regenerate(benchmark, bench_scale, results_dir):
    regenerate(benchmark, bench_scale, results_dir, "fig4", check_shape)
