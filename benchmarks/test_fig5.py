"""Benchmark: regenerate paper Figure 5.

Implementation cost vs. replicas per object (equal sizes), series AR,
GOLCF, GOLCF+OP1, GOLCF+H1+H2+OP1. Expected shape: the winner pipeline
is cheapest at every x; GOLCF undercuts AR.
"""

import numpy as np

from figure_bench import regenerate


def check_shape(result) -> None:
    winner = np.array(result.series("GOLCF+H1+H2+OP1"))
    for other in ("AR", "GOLCF", "GOLCF+OP1"):
        assert (winner <= np.array(result.series(other)) + 1e-9).all()
    assert np.mean(result.series("GOLCF")) < np.mean(result.series("AR"))


def test_fig5_regenerate(benchmark, bench_scale, results_dir):
    regenerate(benchmark, bench_scale, results_dir, "fig5", check_shape)
