"""Benchmark: regenerate paper Figure 6.

Dummy transfers vs. replicas per object (uniform sizes in [1000, 5000]),
GOLCF variants only. Expected shape: H1+H2 jointly give the largest
dummy reduction; dummies fall as replicas grow.
"""

from figure_bench import regenerate


def check_shape(result) -> None:
    golcf = result.series("GOLCF")
    h1h2 = result.series("GOLCF+H1+H2")
    assert all(o <= b + 1e-9 for o, b in zip(h1h2, golcf))
    assert golcf[0] >= golcf[-1]
    # the joint pass is at least as strong as either alone
    for single in ("GOLCF+H1", "GOLCF+H2"):
        assert sum(h1h2) <= sum(result.series(single)) + 1e-9


def test_fig6_regenerate(benchmark, bench_scale, results_dir):
    regenerate(benchmark, bench_scale, results_dir, "fig6", check_shape)
