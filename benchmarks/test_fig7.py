"""Benchmark: regenerate paper Figure 7.

Implementation cost vs. replicas per object (uniform sizes). Expected
shape: GOLCF+H1+H2+OP1 saves substantially over GOLCF+OP1, driven by the
removed dummy transfers.
"""

import numpy as np

from figure_bench import regenerate


def check_shape(result) -> None:
    winner = np.array(result.series("GOLCF+H1+H2+OP1"))
    for other in ("GOLCF", "GOLCF+OP1"):
        assert (winner <= np.array(result.series(other)) + 1e-9).all()


def test_fig7_regenerate(benchmark, bench_scale, results_dir):
    regenerate(benchmark, bench_scale, results_dir, "fig7", check_shape)
