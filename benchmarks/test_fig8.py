"""Benchmark: regenerate paper Figure 8.

Dummy transfers vs. number of servers with one extra object of storage
(r = 2, equal sizes). Expected shape: standalone GOLCF is nearly flat;
GOLCF+H1+H2 exploits the slack and its dummy count falls toward zero.
"""

from figure_bench import regenerate


def check_shape(result) -> None:
    golcf = result.series("GOLCF")
    h1h2 = result.series("GOLCF+H1+H2")
    assert all(o <= b + 1e-9 for o, b in zip(h1h2, golcf))
    # slack helps the H1+H2 pipeline
    assert h1h2[-1] <= h1h2[0]
    assert h1h2[-1] <= 1.0
    # ... far more than it helps plain GOLCF (whose curve stays high)
    assert min(golcf) >= max(h1h2) - 1e-9


def test_fig8_regenerate(benchmark, bench_scale, results_dir):
    regenerate(benchmark, bench_scale, results_dir, "fig8", check_shape)
