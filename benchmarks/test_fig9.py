"""Benchmark: regenerate paper Figure 9.

Implementation cost vs. servers with extra capacity (r = 2). Expected
shape: GOLCF+H1+H2+OP1 under GOLCF+OP1 at every slack level.
"""

import numpy as np

from figure_bench import regenerate


def check_shape(result) -> None:
    base = np.array(result.series("GOLCF+OP1"))
    winner = np.array(result.series("GOLCF+H1+H2+OP1"))
    assert (winner <= base + 1e-9).all()
    assert (winner < base - 1e-9).any()


def test_fig9_regenerate(benchmark, bench_scale, results_dir):
    regenerate(benchmark, bench_scale, results_dir, "fig9", check_shape)
