"""Extension benchmark: makespan across pipelines (timing substrate).

The paper's pipelines optimise cost, not completion time. This bench
simulates each pipeline's schedule on cost-derived bandwidths with one
incoming/outgoing transfer slot per server, recording makespan, critical
path and achieved parallelism — the groundwork for the paper's
deadline-constrained future work.
"""

import pytest

from figure_bench import write_result
from repro.core import build_pipeline
from repro.timing import bandwidths_from_costs, simulate_parallel
from repro.workloads.regular import paper_instance

PIPELINES = ["RDF", "GSDF", "GOLCF", "GOLCF+H1+H2+OP1"]


def test_makespan_by_pipeline(benchmark, bench_scale, results_dir):
    instance = paper_instance(
        replicas=2,
        num_servers=bench_scale.num_servers,
        num_objects=bench_scale.num_objects,
        rng=bench_scale.base_seed,
    )
    bandwidths = bandwidths_from_costs(instance.costs, scale=50_000.0)

    def run_all():
        rows = []
        for spec in PIPELINES:
            schedule = build_pipeline(spec).run(instance, rng=1)
            result = simulate_parallel(schedule, instance, bandwidths)
            rows.append(
                (
                    spec,
                    schedule.cost(instance),
                    result.makespan,
                    result.critical_path,
                    result.speedup,
                )
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = [
        "makespan by pipeline (1 in / 1 out slot per server)",
        f"{'pipeline':<18} {'cost':>14} {'makespan':>12} "
        f"{'critical':>12} {'speedup':>8}",
    ]
    for spec, cost, makespan, critical, speedup in rows:
        lines.append(
            f"{spec:<18} {cost:>14,.0f} {makespan:>12,.1f} "
            f"{critical:>12,.1f} {speedup:>7.2f}x"
        )
    write_result(
        results_dir, f"makespan_{bench_scale.name}", "\n".join(lines) + "\n"
    )
    # sanity: simulation invariants hold for every pipeline
    for _, _, makespan, critical, speedup in rows:
        assert critical <= makespan + 1e-6
        assert speedup >= 1.0
