"""Ablation: OP1's restart policy (DESIGN.md ablation 2).

The paper restarts the scan from position 0 after every accepted change;
continuing in place is asymptotically cheaper. This bench times both on
the same AR schedule and records the cost each policy reaches — the
written table shows the quality/time trade-off.
"""

import pytest

from figure_bench import write_result
from repro.core import get_builder
from repro.core.optimizers.op1 import OP1ReorderTransfers
from repro.workloads.regular import paper_instance


@pytest.fixture(scope="module")
def instance(bench_scale):
    return paper_instance(
        replicas=3,
        num_servers=bench_scale.num_servers,
        num_objects=bench_scale.num_objects,
        rng=bench_scale.base_seed,
    )


@pytest.fixture(scope="module")
def ar_schedule(instance):
    return get_builder("AR").build(instance, rng=3)


@pytest.mark.parametrize("restart", [True, False], ids=["restart", "continue"])
def test_op1_restart_policy(
    benchmark, restart, instance, ar_schedule, results_dir, bench_scale
):
    optimizer = OP1ReorderTransfers(restart=restart)
    out = benchmark.pedantic(
        optimizer.optimize, args=(instance, ar_schedule), rounds=1, iterations=1
    )
    assert out.validate(instance).ok
    base_cost = ar_schedule.cost(instance)
    cost = out.cost(instance)
    assert cost <= base_cost + 1e-9
    write_result(
        results_dir,
        f"op1_{'restart' if restart else 'continue'}_{bench_scale.name}",
        (
            f"OP1 restart={restart} [scale={bench_scale.name}]\n"
            f"AR base cost : {base_cost:,.0f}\n"
            f"OP1 cost     : {cost:,.0f}\n"
            f"saving       : {1 - cost / base_cost:.2%}\n"
        ),
    )
