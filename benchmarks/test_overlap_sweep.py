"""Extension benchmark: sensitivity to placement overlap (DESIGN.md 5).

The paper evaluates only the hardest setting — 0% overlap between
``X_old`` and ``X_new``. Production placement churn is usually partial;
this sweep shows the cost and dummy counts of the winner pipeline shrink
roughly linearly as overlap rises (fewer outstanding replicas to move).
"""

import pytest

from figure_bench import write_result
from repro.core import build_pipeline
from repro.workloads.regular import paper_instance

OVERLAPS = [0.0, 0.25, 0.5, 0.75]


def test_overlap_sweep(benchmark, bench_scale, results_dir):
    def sweep():
        rows = []
        for overlap in OVERLAPS:
            inst = paper_instance(
                replicas=2,
                num_servers=bench_scale.num_servers,
                num_objects=bench_scale.num_objects,
                overlap=overlap,
                rng=bench_scale.base_seed,
            )
            schedule = build_pipeline("GOLCF+H1+H2+OP1").run(inst, rng=0)
            outstanding, _ = inst.diff_counts()
            rows.append(
                (
                    overlap,
                    outstanding,
                    schedule.count_dummy_transfers(inst),
                    schedule.cost(inst),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "overlap sweep (GOLCF+H1+H2+OP1)",
        f"{'overlap':>8} {'outstanding':>12} {'dummies':>8} {'cost':>14}",
    ]
    for overlap, outstanding, dummies, cost in rows:
        lines.append(
            f"{overlap:>8.2f} {outstanding:>12d} {dummies:>8d} {cost:>14,.0f}"
        )
    write_result(
        results_dir, f"overlap_sweep_{bench_scale.name}", "\n".join(lines) + "\n"
    )
    # more overlap => less churn => lower cost
    costs = [cost for *_, cost in rows]
    assert costs == sorted(costs, reverse=True)
