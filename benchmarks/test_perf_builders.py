"""Performance micro-benchmarks: schedule builders.

Times each builder on one shared instance at the selected scale. These
set the baseline against which the optimizer passes are judged (the
paper's pipelines re-run the builders once per experiment cell).
"""

import pytest

from repro.core import get_builder
from repro.workloads.regular import paper_instance

BUILDERS = ["RDF", "GSDF", "AR", "GOLCF"]


@pytest.fixture(scope="module")
def instance(bench_scale):
    return paper_instance(
        replicas=2,
        num_servers=bench_scale.num_servers,
        num_objects=bench_scale.num_objects,
        rng=bench_scale.base_seed,
    )


@pytest.mark.parametrize("name", BUILDERS)
def test_builder_speed(benchmark, name, instance):
    builder = get_builder(name)
    schedule = benchmark(builder.build, instance, rng=0)
    assert schedule.validate(instance).ok
