"""Performance micro-benchmarks: state machine, validator, network.

Ablation 1 of DESIGN.md: the schedule validator is the optimizers' inner
loop — ``test_full_validation`` vs. ``test_window_validation`` quantifies
what the window-replay shortcut buys. Ablation 3: nearest-source queries
under the two state representations.
"""

import numpy as np
import pytest

from repro.core import get_builder
from repro.core.optimizers.common import ArrayState, capture_states, window_valid
from repro.model.state import SystemState
from repro.network.brite import brite_paper_topology
from repro.network.paths import all_pairs_shortest_paths
from repro.workloads.regular import paper_instance


@pytest.fixture(scope="module")
def instance(bench_scale):
    return paper_instance(
        replicas=2,
        num_servers=bench_scale.num_servers,
        num_objects=bench_scale.num_objects,
        rng=bench_scale.base_seed,
    )


@pytest.fixture(scope="module")
def schedule(instance):
    return get_builder("GOLCF").build(instance, rng=2)


def test_full_validation(benchmark, instance, schedule):
    """Full-schedule replay (the optimizers' pre-rewrite baseline)."""
    report = benchmark(schedule.validate, instance)
    assert report.ok


def test_window_validation(benchmark, instance, schedule):
    """Window replay of the last 32 actions from a captured prefix —
    the per-candidate cost inside H1/H2/OP1 after the rewrite."""
    actions = schedule.actions()
    start = max(0, len(actions) - 32)
    snapshot = capture_states(instance, actions, [start])[start]
    window = actions[start:]
    ok = benchmark(window_valid, snapshot, window)
    assert ok


def test_state_apply_throughput(benchmark, instance, schedule):
    actions = schedule.actions()

    def replay():
        state = SystemState(instance)
        for a in actions:
            state.apply(a)
        return state

    state = benchmark(replay)
    assert state.matches(instance.x_new)


def test_array_state_apply_throughput(benchmark, instance, schedule):
    actions = schedule.actions()

    def replay():
        state = ArrayState(instance)
        for a in actions:
            state.apply(a)
        return state

    state = benchmark(replay)
    assert (state.placement == instance.x_new).all()


def test_nearest_query_system_state(benchmark, instance):
    state = SystemState(instance)
    targets = [(i, k) for i in range(instance.num_servers) for k in range(8)]

    def queries():
        return sum(state.nearest(i, k) for i, k in targets)

    benchmark(queries)


def test_nearest_query_array_state(benchmark, instance):
    state = ArrayState(instance)
    targets = [(i, k) for i in range(instance.num_servers) for k in range(8)]

    def queries():
        return sum(state.nearest(i, k) for i, k in targets)

    benchmark(queries)


def test_brite_topology_generation(benchmark, bench_scale):
    topo = benchmark(brite_paper_topology, n=bench_scale.num_servers, rng=0)
    assert topo.is_tree()


def test_all_pairs_shortest_paths(benchmark, bench_scale):
    topo = brite_paper_topology(n=bench_scale.num_servers, rng=0)
    costs = benchmark(all_pairs_shortest_paths, topo)
    assert np.isfinite(costs).all()
