"""Performance micro-benchmarks: H1, H2 and OP1.

Each optimizer runs over pre-built schedules. H1/H2 are measured on an
RDF schedule (many dummies: their worst case); OP1 on an AR schedule
(random transfer order: its best case for finding reorderings).
"""

import pytest

from repro.core import get_builder, get_optimizer
from repro.workloads.regular import paper_instance


@pytest.fixture(scope="module")
def instance(bench_scale):
    return paper_instance(
        replicas=2,
        num_servers=bench_scale.num_servers,
        num_objects=bench_scale.num_objects,
        rng=bench_scale.base_seed,
    )


@pytest.fixture(scope="module")
def rdf_schedule(instance):
    return get_builder("RDF").build(instance, rng=1)


@pytest.fixture(scope="module")
def ar_schedule(instance):
    return get_builder("AR").build(instance, rng=1)


@pytest.mark.parametrize("name", ["H1", "H2"])
def test_dummy_minimizer_speed(benchmark, name, instance, rdf_schedule):
    optimizer = get_optimizer(name)
    out = benchmark.pedantic(
        optimizer.optimize, args=(instance, rdf_schedule), rounds=3, iterations=1
    )
    assert out.count_dummy_transfers(instance) <= rdf_schedule.count_dummy_transfers(
        instance
    )


def test_op1_speed(benchmark, instance, ar_schedule):
    optimizer = get_optimizer("OP1")
    out = benchmark.pedantic(
        optimizer.optimize, args=(instance, ar_schedule), rounds=3, iterations=1
    )
    assert out.cost(instance) <= ar_schedule.cost(instance) + 1e-9


def test_full_winner_pipeline_speed(benchmark, instance):
    from repro.core import build_pipeline

    pipeline = build_pipeline("GOLCF+H1+H2+OP1")
    out = benchmark.pedantic(
        pipeline.run, args=(instance,), kwargs={"rng": 0}, rounds=3, iterations=1
    )
    assert out.validate(instance).ok
