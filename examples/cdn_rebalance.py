#!/usr/bin/env python
"""CDN rebalance: placement churn on a Waxman internet-like topology.

Content distribution networks re-place replicas when regional demand
shifts. This demo builds a 30-PoP Waxman topology, computes a greedy
placement under one demand pattern, shifts the demand (a regional "flash
crowd"), recomputes the placement, and schedules the transition with
several pipelines — reporting cost against the universal lower bound.

Run:  python examples/cdn_rebalance.py
"""

import numpy as np

from repro import RtspInstance, build_pipeline
from repro.analysis.bounds import optimality_gap, universal_lower_bound
from repro.network import cost_matrix_from_topology, waxman_topology
from repro.placement import greedy_placement
from repro.workloads import zipf_weights
from repro.workloads.zipf import sample_requests

NUM_POPS = 30
NUM_OBJECTS = 120
OBJECT_SIZE = 1000.0
CAPACITY_OBJECTS = 12


def flash_crowd(demand: np.ndarray, region, factor: float, rng) -> np.ndarray:
    """Scale a region's demand up and re-shuffle its object preferences."""
    out = demand.astype(np.float64).copy()
    for pop in region:
        out[pop] = out[pop][rng.permutation(out.shape[1])] * factor
    return out


def main() -> None:
    rng = np.random.default_rng(11)
    topo = waxman_topology(NUM_POPS, alpha=0.6, beta=0.3, rng=rng)
    costs = cost_matrix_from_topology(topo)
    sizes = np.full(NUM_OBJECTS, OBJECT_SIZE)
    capacities = np.full(NUM_POPS, CAPACITY_OBJECTS * OBJECT_SIZE)

    weights = zipf_weights(NUM_OBJECTS, exponent=0.9)
    demand_old = sample_requests(weights, 50_000, NUM_POPS, rng=rng).astype(float)
    x_old = greedy_placement(costs, sizes, capacities, demand_old, rng=rng)

    region = list(rng.choice(NUM_POPS, size=6, replace=False))
    demand_new = flash_crowd(demand_old, region, factor=8.0, rng=rng)
    x_new = greedy_placement(costs, sizes, capacities, demand_new, rng=rng)

    instance = RtspInstance.create(sizes, capacities, costs, x_old, x_new)
    outstanding, superfluous = instance.diff_counts()
    print(f"flash crowd in PoPs {sorted(int(p) for p in region)}")
    print(f"placement churn: {outstanding} new replicas, "
          f"{superfluous} deletions")
    lb = universal_lower_bound(instance)
    print(f"universal lower bound: {lb:,.0f}\n")

    print(f"{'pipeline':<18} {'cost':>12} {'gap over LB':>12} {'dummies':>8}")
    print("-" * 54)
    for spec in ("RDF", "AR", "GOLCF", "GOLCF+H1+H2+OP1"):
        schedule = build_pipeline(spec).run(instance, rng=3)
        report = schedule.validate(instance)
        assert report.ok, report.message
        gap = optimality_gap(instance, report.cost)
        print(f"{spec:<18} {report.cost:>12,.0f} {gap:>11.1%} "
              f"{report.dummy_transfers:>8}")


if __name__ == "__main__":
    main()
