#!/usr/bin/env python
"""Deadline planning: cost vs. completion time of RTSP schedules.

The paper minimises transfer cost and leaves time budgets as future work
(§2.2). This demo uses the timing substrate to ask the operational
question: *the nightly maintenance window is T time units — which
pipeline's schedule fits, and what does fitting cost?*

Bandwidths are derived from the cost matrix (expensive paths are slow
paths); each server moves one replica in and one out at a time.

Run:  python examples/deadline_planning.py
"""

from repro import build_pipeline, paper_instance
from repro.timing import bandwidths_from_costs, simulate_parallel
from repro.timing.gantt import render_gantt

PIPELINES = ["RDF", "GSDF", "GOLCF", "GOLCF+H1+H2+OP1"]


def main() -> None:
    instance = paper_instance(replicas=2, num_servers=12, num_objects=36, rng=9)
    bandwidths = bandwidths_from_costs(instance.costs, scale=50_000.0)

    print(f"instance: {instance}\n")
    print(f"{'pipeline':<18} {'cost':>12} {'makespan':>10} {'critical':>10} "
          f"{'speedup':>8}")
    print("-" * 64)
    results = {}
    for spec in PIPELINES:
        schedule = build_pipeline(spec).run(instance, rng=1)
        report = schedule.validate(instance)
        assert report.ok, report.message
        result = simulate_parallel(schedule, instance, bandwidths)
        results[spec] = (schedule, result)
        print(
            f"{spec:<18} {report.cost:>12,.0f} {result.makespan:>10,.1f} "
            f"{result.critical_path:>10,.1f} {result.speedup:>7.2f}x"
        )

    # pick a deadline between the best and worst makespan and report fit
    spans = [r.makespan for _, r in results.values()]
    deadline = (min(spans) + max(spans)) / 2
    print(f"\nmaintenance window: {deadline:,.1f} time units")
    for spec, (schedule, result) in results.items():
        verdict = "fits" if result.makespan <= deadline else "misses"
        print(f"  {spec:<18} {verdict} "
              f"({result.makespan:,.1f} vs {deadline:,.1f})")

    winner = "GOLCF+H1+H2+OP1"
    print(f"\nexecution plan for {winner}:")
    print(render_gantt(results[winner][1], instance.num_servers))


if __name__ == "__main__":
    main()
