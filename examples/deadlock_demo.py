#!/usr/bin/env python
"""The paper's Figure-1 deadlock, analysed and resolved.

Four servers with capacity for exactly one object each; the new placement
cyclically shifts the four objects. No server can receive before
deleting, and every deletion destroys the sole source of another pending
transfer: a deadlock. The demo shows

1. the transfer graph and its cycle (paper Fig. 1b),
2. the feasibility analysis flagging the deadlock,
3. how the dummy server breaks it — and that the exact optimum needs
   exactly one dummy transfer,
4. that H1+H2 recover that optimum from a naive schedule.

Run:  python examples/deadlock_demo.py
"""

from repro import build_pipeline, solve_exact
from repro.analysis import (
    analyze_feasibility,
    build_transfer_graph,
    fig1_deadlock_instance,
    transfer_graph_cycles,
)


def main() -> None:
    instance = fig1_deadlock_instance()
    print("instance:", instance)

    graph = build_transfer_graph(instance)
    print(f"\ntransfer graph: {graph.number_of_nodes()} nodes, "
          f"{graph.number_of_edges()} arcs")
    for u, v, data in graph.edges(data=True):
        print(f"  S_{u + 1} --O_{data['obj']}--> S_{v + 1}")
    cycles = transfer_graph_cycles(instance)
    print(f"cycles: {[[f'S_{u + 1}' for u in c] for c in cycles]}")

    summary = analyze_feasibility(instance)
    print(f"\nfeasibility: storage_feasible={summary.storage_feasible}, "
          f"trivially_sequenceable={summary.trivially_sequenceable}")
    print(f"deadlock possible: {summary.deadlock_possible} "
          f"(zero-slack servers: {summary.zero_slack_servers})")

    print("\nresolving with the dummy server:")
    naive = build_pipeline("RDF").run(instance, rng=0)
    print(f"  RDF:          {naive.summary(instance)}")
    improved = build_pipeline("RDF+H1+H2").run(instance, rng=0)
    print(f"  RDF+H1+H2:    {improved.summary(instance)}")

    result = solve_exact(instance)
    print(f"  exact optimum: cost={result.cost:g}, "
          f"dummy transfers={result.schedule.count_dummy_transfers(instance)} "
          f"(searched {result.nodes} nodes, complete={result.complete})")
    print("\n  optimal schedule:")
    for action in result.schedule:
        print(f"    {action}")


if __name__ == "__main__":
    main()
