#!/usr/bin/env python
"""The NP-completeness proof of §3.4, executed.

Builds the paper's Knapsack→RTSP reduction for a small Knapsack
instance, solves the Knapsack by dynamic programming and the RTSP
instance by branch and bound, and shows the two optima encode each other:
the cheapest transfer schedule smuggles exactly the optimal knapsack
subset through the hub's spare storage.

Run:  python examples/npc_reduction_demo.py
"""

from repro.core import solve_exact
from repro.npc import (
    KnapsackInstance,
    canonical_schedule,
    decision_threshold,
    decode_schedule,
    reduce_knapsack_to_rtsp,
    solve_knapsack,
)
from repro.npc.reduction import canonical_cost


def main() -> None:
    knap = KnapsackInstance.create(
        benefits=[6, 5, 4, 3], sizes=[5, 4, 3, 2], capacity=9
    )
    print(f"knapsack: benefits={knap.benefits} sizes={knap.sizes} "
          f"capacity={knap.capacity}")
    dp = solve_knapsack(knap)
    print(f"DP optimum: subset={set(dp.chosen)} value={dp.value} "
          f"weight={dp.weight}")

    reduction = reduce_knapsack_to_rtsp(knap)
    rtsp = reduction.rtsp
    print(f"\nreduced RTSP instance: {rtsp.num_servers} servers, "
          f"{rtsp.num_objects} objects (P = {reduction.size_product})")

    seed = canonical_schedule(reduction, dp.chosen)
    print(f"canonical schedule for the DP subset: "
          f"cost={seed.cost(rtsp):,.0f} "
          f"(closed form {canonical_cost(reduction, dp.chosen):,.0f})")

    result = solve_exact(rtsp, initial=seed, allow_staging=False)
    print(f"exact RTSP optimum: cost={result.cost:,.0f} "
          f"({result.nodes} nodes, complete={result.complete})")

    subset, value = decode_schedule(reduction, result.schedule)
    print(f"decoded from the optimal schedule: subset={subset} value={value}")
    assert value == dp.value, "reduction round-trip failed!"

    k = dp.value
    print(f"\ndecision view: a schedule of cost <= "
          f"{decision_threshold(knap, k):,.0f} exists "
          f"<=> a subset of value >= {k} exists")
    print("round-trip OK: RTSP optimum encodes the Knapsack optimum")


if __name__ == "__main__":
    main()
