#!/usr/bin/env python
"""Quickstart: build an RTSP instance and schedule it with every pipeline.

Creates a paper-style instance (BRITE-like 20-server tree, 100 objects,
2 replicas each, fully reshuffled placements, zero storage slack), runs
the paper's pipelines on it, and prints a comparison table: the winner
GOLCF+H1+H2+OP1 should show the lowest cost and (near-)zero dummy
transfers.

Run:  python examples/quickstart.py
"""

from repro import build_pipeline, paper_instance, schedule_stats
from repro.analysis.bounds import universal_lower_bound, worst_case_upper_bound

PIPELINES = [
    "RDF",
    "GSDF",
    "AR",
    "GOLCF",
    "AR+H1+H2",
    "GOLCF+H1+H2",
    "GOLCF+OP1",
    "GOLCF+H1+H2+OP1",
]


def main() -> None:
    instance = paper_instance(
        replicas=2, num_servers=20, num_objects=100, rng=2007
    )
    print(f"instance: {instance}")
    print(f"cost lower bound : {universal_lower_bound(instance):,.0f}")
    print(f"worst-case bound : {worst_case_upper_bound(instance):,.0f}")
    print()
    print(f"{'pipeline':<18} {'cost':>14} {'dummies':>8} {'actions':>8}")
    print("-" * 52)
    for spec in PIPELINES:
        schedule = build_pipeline(spec).run(instance, rng=42)
        report = schedule.validate(instance)
        assert report.ok, f"{spec} produced an invalid schedule: {report.message}"
        stats = schedule_stats(schedule, instance)
        print(
            f"{spec:<18} {stats.cost:>14,.0f} "
            f"{stats.num_dummy_transfers:>8} {stats.num_actions:>8}"
        )


if __name__ == "__main__":
    main()
