#!/usr/bin/env python
"""The paper's motivating scenario: a distributed video server (§2.1).

Movie popularity follows a Zipf law and drifts daily (old hits fade, new
releases arrive). Each day the greedy placement algorithm recomputes
where replicas should live, and the system must *implement* the
transition — the Replica Transfer Scheduling Problem. The demo simulates
a week and compares the naive schedule (RDF) against the paper's winner
(GOLCF+H1+H2+OP1) on every daily transition.

Run:  python examples/video_server_rotation.py
"""

from repro import build_pipeline
from repro.workloads import VideoRotationModel

DAYS = 7


def main() -> None:
    model = VideoRotationModel(
        num_servers=16,
        num_movies=80,
        capacity_movies=10,
        drift=0.15,
        releases_per_day=3,
        rng=7,
    )
    naive = build_pipeline("RDF")
    winner = build_pipeline("GOLCF+H1+H2+OP1")

    print(f"{'day':>4} {'churn':>6} {'RDF cost':>14} {'winner cost':>14} "
          f"{'saved':>7} {'RDF dummies':>12} {'winner dummies':>15}")
    print("-" * 80)
    totals = [0.0, 0.0]
    for day, instance in enumerate(model.days(DAYS), start=1):
        outstanding, _ = instance.diff_counts()
        rows = []
        for idx, pipeline in enumerate((naive, winner)):
            schedule = pipeline.run(instance, rng=day)
            report = schedule.validate(instance)
            assert report.ok, report.message
            rows.append(report)
            totals[idx] += report.cost
        saved = 1.0 - rows[1].cost / rows[0].cost if rows[0].cost else 0.0
        print(
            f"{day:>4} {outstanding:>6} {rows[0].cost:>14,.0f} "
            f"{rows[1].cost:>14,.0f} {saved:>6.1%} "
            f"{rows[0].dummy_transfers:>12} {rows[1].dummy_transfers:>15}"
        )
    print("-" * 80)
    total_saved = 1.0 - totals[1] / totals[0] if totals[0] else 0.0
    print(f"week totals: RDF={totals[0]:,.0f}  winner={totals[1]:,.0f}  "
          f"saved={total_saved:.1%}")


if __name__ == "__main__":
    main()
