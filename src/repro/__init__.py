"""repro — the Replica Transfer Scheduling Problem (RTSP) library.

A faithful, production-quality reproduction of *"Implementing Replica
Placements: Feasibility and Cost Minimization"* (Loukopoulos, Tziritas,
Lampsas, Lalis — IPPS 2007), including every substrate the paper's
evaluation depends on.

Quickstart
----------
>>> from repro import paper_instance, build_pipeline
>>> instance = paper_instance(replicas=2, num_objects=100,
...                           num_servers=20, rng=0)
>>> schedule = build_pipeline("GOLCF+H1+H2+OP1").run(instance, rng=0)
>>> report = schedule.validate(instance)
>>> assert report.ok

Package map
-----------
* :mod:`repro.model` — instances, actions, schedules, simulation state
* :mod:`repro.network` — topologies and cost matrices (BRITE-like BA tree)
* :mod:`repro.core` — the paper's heuristics (builders + optimizers) and
  an exact branch-and-bound solver
* :mod:`repro.analysis` — transfer graphs, feasibility, bounds, metrics
* :mod:`repro.workloads` — experiment workloads and the video scenario
* :mod:`repro.placement` — greedy replica placement (the upstream producer
  of ``X_new``)
* :mod:`repro.npc` — the Knapsack→RTSP reduction of §3.4
* :mod:`repro.experiments` — the figure-reproduction harness
* :mod:`repro.robust` — fault injection and online schedule repair
* :mod:`repro.exact` — proved-optimal solving, the strict invariant
  oracle, and the golden differential corpus
"""

from repro.model import (
    Action,
    Delete,
    RtspInstance,
    Schedule,
    SystemState,
    Transfer,
    ValidationReport,
)
from repro.core import (
    AllRandom,
    ExactSolver,
    GreedyObjectLowestCostFirst,
    GroupedServerDeletionsFirst,
    H1MoveDummyTransfers,
    H2CreateSuperfluousReplicas,
    OP1ReorderTransfers,
    Pipeline,
    RandomDeletionsFirst,
    available_builders,
    available_optimizers,
    build_pipeline,
    get_builder,
    get_optimizer,
    solve_exact,
)
from repro.analysis import (
    analyze_feasibility,
    count_dummy_transfers,
    implementation_cost,
    schedule_stats,
)
from repro.network import (
    Topology,
    barabasi_albert_topology,
    brite_paper_topology,
    cost_matrix_from_topology,
    extend_with_dummy,
)
from repro.workloads import paper_instance, regular_placement_pair
from repro.exact import (
    BEST_FOUND,
    PROVED_OPTIMAL,
    BranchAndBoundSolver,
    SolveResult,
    SolverBudget,
    assert_invariants,
    check_invariants,
    solve_optimal,
)
from repro.robust import (
    FaultPlan,
    RepairEngine,
    RepairPolicy,
    RepairReport,
    execute_with_repair,
)
from repro.util.errors import (
    CapacityError,
    ConfigurationError,
    InfeasibleInstanceError,
    InvalidActionError,
    InvalidScheduleError,
    RepairExhaustedError,
    RtspError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # model
    "Action",
    "Delete",
    "Transfer",
    "RtspInstance",
    "Schedule",
    "SystemState",
    "ValidationReport",
    # core
    "AllRandom",
    "ExactSolver",
    "GreedyObjectLowestCostFirst",
    "GroupedServerDeletionsFirst",
    "H1MoveDummyTransfers",
    "H2CreateSuperfluousReplicas",
    "OP1ReorderTransfers",
    "Pipeline",
    "RandomDeletionsFirst",
    "available_builders",
    "available_optimizers",
    "build_pipeline",
    "get_builder",
    "get_optimizer",
    "solve_exact",
    # analysis
    "analyze_feasibility",
    "count_dummy_transfers",
    "implementation_cost",
    "schedule_stats",
    # network
    "Topology",
    "barabasi_albert_topology",
    "brite_paper_topology",
    "cost_matrix_from_topology",
    "extend_with_dummy",
    # workloads
    "paper_instance",
    "regular_placement_pair",
    # exact
    "BEST_FOUND",
    "PROVED_OPTIMAL",
    "BranchAndBoundSolver",
    "SolveResult",
    "SolverBudget",
    "assert_invariants",
    "check_invariants",
    "solve_optimal",
    # robust
    "FaultPlan",
    "RepairEngine",
    "RepairPolicy",
    "RepairReport",
    "execute_with_repair",
    # errors
    "RtspError",
    "ConfigurationError",
    "InvalidActionError",
    "InvalidScheduleError",
    "InfeasibleInstanceError",
    "RepairExhaustedError",
    "CapacityError",
]
