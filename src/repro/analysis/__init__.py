"""Feasibility analysis, transfer graphs, bounds and schedule metrics.

* :mod:`repro.analysis.transfer_graph` — the directed transfer graph of
  paper Fig. 1(b) and its cycle structure,
* :mod:`repro.analysis.feasibility` — deadlock indicators and sufficient
  feasibility conditions,
* :mod:`repro.analysis.bounds` — lower/upper bounds on implementation cost,
* :mod:`repro.analysis.metrics` — the two metrics the paper reports plus
  general schedule statistics,
* :mod:`repro.analysis.quality` — normalised plan-quality gauges (cost
  gap vs the residual lower bound, dummy-traffic ratio, shard LPT
  imbalance) published into the observability layer,
* :mod:`repro.analysis.examples` — the paper's worked instances (Fig. 1
  deadlock, Fig. 3 walkthrough network).
"""

from repro.analysis.transfer_graph import (
    build_transfer_graph,
    placement_components,
    transfer_graph_cycles,
    has_transfer_cycle,
)
from repro.analysis.feasibility import (
    FeasibilitySummary,
    analyze_feasibility,
    deadlock_risk_servers,
    is_trivially_sequenceable,
)
from repro.analysis.bounds import (
    universal_lower_bound,
    nearest_source_bound,
    residual_lower_bound,
    triangle_inequality_holds,
    worst_case_upper_bound,
)
from repro.analysis.metrics import (
    RepairStats,
    ScheduleStats,
    repair_stats,
    schedule_stats,
    implementation_cost,
    count_dummy_transfers,
)
from repro.analysis.quality import (
    PlanQuality,
    lpt_imbalance,
    plan_quality,
    record_plan_quality,
)
from repro.analysis.examples import (
    fig1_deadlock_instance,
    fig3_example_instance,
)

__all__ = [
    "build_transfer_graph",
    "placement_components",
    "transfer_graph_cycles",
    "has_transfer_cycle",
    "FeasibilitySummary",
    "analyze_feasibility",
    "deadlock_risk_servers",
    "is_trivially_sequenceable",
    "universal_lower_bound",
    "nearest_source_bound",
    "residual_lower_bound",
    "triangle_inequality_holds",
    "worst_case_upper_bound",
    "RepairStats",
    "repair_stats",
    "ScheduleStats",
    "schedule_stats",
    "implementation_cost",
    "count_dummy_transfers",
    "PlanQuality",
    "plan_quality",
    "lpt_imbalance",
    "record_plan_quality",
    "fig1_deadlock_instance",
    "fig3_example_instance",
]
