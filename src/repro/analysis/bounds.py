"""Implementation-cost bounds.

Used by tests to sandwich heuristic results and by the experiment harness
to report optimality gaps that do not require the (exponential) exact
solver.
"""

from __future__ import annotations

import numpy as np

from repro.model.instance import RtspInstance


def universal_lower_bound(instance: RtspInstance) -> float:
    """Lower bound valid for *every* schedule.

    Each outstanding replica ``(i, k)`` requires at least one transfer onto
    ``S_i``, and whatever the source — an old replicator, a freshly created
    copy, or the dummy — it is some server ``j != i``, so the transfer costs
    at least ``s(O_k) * min_{j != i} l_ij``.
    """
    total = 0.0
    costs = instance.costs[: instance.num_servers + 1, : instance.num_servers + 1]
    outstanding = instance.outstanding()
    for i, k in zip(*np.nonzero(outstanding)):
        row = costs[i].copy()
        row[i] = np.inf
        total += float(instance.sizes[k]) * float(row.min())
    return total


def nearest_source_bound(instance: RtspInstance) -> float:
    """Tighter estimate: cheapest *plausible* source per outstanding replica.

    Sources are restricted to servers that hold the object in ``X_old`` or
    will hold it in ``X_new`` (plus the dummy). This is the exact optimum
    for instances where no intermediate staging helps; schedules that stage
    replicas on third-party servers (H2-style) can in rare cases beat it,
    so treat it as an estimate, not a certified bound. It is, however, a
    certified lower bound for the common case where ``l`` obeys the
    triangle inequality (shortest-path matrices always do): relaying an
    object through a third server can then never be cheaper than the direct
    cheapest plausible source.
    """
    total = 0.0
    outstanding = instance.outstanding()
    either = (instance.x_old | instance.x_new).astype(bool)
    for i, k in zip(*np.nonzero(outstanding)):
        candidates = np.flatnonzero(either[:, k])
        best = instance.costs[i, instance.dummy]
        for j in candidates:
            if j != i:
                best = min(best, instance.costs[i, j])
        total += float(instance.sizes[k]) * float(best)
    return total


def worst_case_upper_bound(instance: RtspInstance) -> float:
    """Cost of the paper's worst-case fallback schedule (§3.3).

    Delete every replica on every real server, then fetch *all* of
    ``X_new`` from the dummy server. Every valid minimal-cost schedule
    costs no more than this.
    """
    dummy_cost = instance.dummy_cost
    new_replicas = instance.x_new.astype(np.float64)
    per_object_units = new_replicas.sum(axis=0) * instance.sizes
    return float(per_object_units.sum() * dummy_cost)


def optimality_gap(instance: RtspInstance, achieved_cost: float) -> float:
    """Relative gap of ``achieved_cost`` over :func:`universal_lower_bound`.

    Returns 0 when the lower bound is zero (nothing to transfer).
    """
    lb = universal_lower_bound(instance)
    if lb <= 0.0:
        return 0.0
    return (achieved_cost - lb) / lb
