"""Implementation-cost bounds.

Used by tests to sandwich heuristic results and by the experiment harness
to report optimality gaps that do not require the (exponential) exact
solver.
"""

from __future__ import annotations

import numpy as np

from repro.model.instance import RtspInstance


def universal_lower_bound(instance: RtspInstance) -> float:
    """Lower bound valid for *every* schedule.

    Each outstanding replica ``(i, k)`` requires at least one transfer onto
    ``S_i``, and whatever the source — an old replicator, a freshly created
    copy, or the dummy — it is some server ``j != i``, so the transfer costs
    at least ``s(O_k) * min_{j != i} l_ij``.
    """
    total = 0.0
    costs = instance.costs[: instance.num_servers + 1, : instance.num_servers + 1]
    outstanding = instance.outstanding()
    for i, k in zip(*np.nonzero(outstanding)):
        row = costs[i].copy()
        row[i] = np.inf
        total += float(instance.sizes[k]) * float(row.min())
    return total


def nearest_source_bound(instance: RtspInstance) -> float:
    """Tighter estimate: cheapest *plausible* source per outstanding replica.

    Sources are restricted to servers that hold the object in ``X_old`` or
    will hold it in ``X_new`` (plus the dummy). This is the exact optimum
    for instances where no intermediate staging helps; schedules that stage
    replicas on third-party servers (H2-style) can beat it, so treat it as
    an estimate, not a certified bound — even on triangle-closed matrices:
    when one staging relay serves several outstanding replicas, the relay's
    feed-in hop is shared, while this estimate charges each replica its
    full plausible-source distance (use :func:`residual_lower_bound` or
    :func:`universal_lower_bound` when admissibility matters).
    """
    total = 0.0
    outstanding = instance.outstanding()
    either = (instance.x_old | instance.x_new).astype(bool)
    for i, k in zip(*np.nonzero(outstanding)):
        candidates = np.flatnonzero(either[:, k])
        best = instance.costs[i, instance.dummy]
        for j in candidates:
            if j != i:
                best = min(best, instance.costs[i, j])
        total += float(instance.sizes[k]) * float(best)
    return total


def worst_case_upper_bound(instance: RtspInstance) -> float:
    """Cost of the paper's worst-case fallback schedule (§3.3).

    Delete every replica on every real server, then fetch *all* of
    ``X_new`` from the dummy server. Every valid minimal-cost schedule
    costs no more than this.
    """
    dummy_cost = instance.dummy_cost
    new_replicas = instance.x_new.astype(np.float64)
    per_object_units = new_replicas.sum(axis=0) * instance.sizes
    return float(per_object_units.sum() * dummy_cost)


def triangle_inequality_holds(costs: np.ndarray, eps: float = 1e-9) -> bool:
    """Whether ``l_ij <= l_iw + l_wj`` for every triple of servers.

    Shortest-path cost matrices (everything :mod:`repro.network` builds)
    always satisfy this; hand-crafted matrices may not. The exact solver
    uses the answer to pick between the tight nearest-holder bound and
    the always-admissible static bound.
    """
    c = np.asarray(costs, dtype=np.float64)
    # min over w of c[i, w] + c[w, j] equals the one-step Floyd-Warshall
    # relaxation; the matrix is triangle-closed iff relaxing changes nothing.
    relaxed = np.min(c[:, :, None] + c[None, :, :], axis=1)
    return bool(np.all(c <= relaxed + eps))


def residual_lower_bound(
    instance: RtspInstance, placement: np.ndarray
) -> float:
    """Admissible lower bound on the remaining cost from ``placement``.

    Generalises :func:`universal_lower_bound` to an arbitrary mid-flight
    replication matrix: every replica still missing w.r.t. ``X_new``
    needs one final transfer onto its target from *some* server, so it
    costs at least ``s(O_k) * min_{j != i} l_ij``. Restricting the
    source candidates any further (say, to current holders) is **not**
    admissible once relaying through staging servers is allowed — two
    missing replicas may share one delivery chain, so per-replica
    nearest-holder distances double-count the shared hops.

    This is the bound :class:`repro.exact.BranchAndBoundSolver` charges
    at every search node, exposed here so tests can cross-check the
    solver's pruning against an independent implementation.
    """
    placement = np.asarray(placement)
    m, n = instance.num_servers, instance.num_objects
    if placement.shape != (m, n):
        raise ValueError(f"placement must be {m}x{n}, got {placement.shape}")
    costs, sizes = instance.costs, instance.sizes
    total = 0.0
    missing = (instance.x_new == 1) & (placement == 0)
    for i, k in zip(*np.nonzero(missing)):
        row = costs[i, : m + 1].copy()
        row[i] = np.inf
        total += float(sizes[k]) * float(row.min())
    return total


def optimality_gap(instance: RtspInstance, achieved_cost: float) -> float:
    """Relative gap of ``achieved_cost`` over :func:`universal_lower_bound`.

    Returns 0 when the lower bound is zero (nothing to transfer).
    """
    lb = universal_lower_bound(instance)
    if lb <= 0.0:
        return 0.0
    return (achieved_cost - lb) / lb
