"""The paper's worked example instances.

* :func:`fig1_deadlock_instance` — Fig. 1: four single-slot servers whose
  outstanding transfers form a directed cycle; no dummy-free schedule
  exists.
* :func:`fig3_example_instance` — Fig. 3: the four-server, four-object
  network used to walk through RDF, GSDF, H1 and H2 in §4.1.

Objects are indexed A=0, B=1, C=2, D=3 and servers S1..S4 map to 0..3.
Fig. 3 prints only two link costs explicitly (``l_34 = 1 < l_14 = 2``);
the remaining entries here are chosen to be consistent with every
source-selection decision the paper's walkthroughs make (see the module
tests, which re-derive those decisions).
"""

from __future__ import annotations

import numpy as np

from repro.model.instance import RtspInstance

#: Object name to index mapping used by the examples and their tests.
OBJECTS = {"A": 0, "B": 1, "C": 2, "D": 3}


def fig1_deadlock_instance(dummy_constant: float = 1.0) -> RtspInstance:
    """Paper Fig. 1: the canonical infeasible (deadlocked) RTSP statement.

    Four servers, four unit-size objects, every server has capacity for
    exactly one object. ``X_old`` places A,B,C,D on S1..S4; ``X_new``
    cyclically shifts them (S1 wants D, S2 wants A, S3 wants B, S4 wants
    C). The transfer graph is a 4-cycle and no server can receive before
    deleting, so without the dummy server no valid schedule exists.
    """
    sizes = np.ones(4)
    capacities = np.ones(4)
    costs = np.ones((4, 4)) - np.eye(4)
    x_old = np.eye(4, dtype=np.int8)  # S_i holds object i
    # S1<-D, S2<-A, S3<-B, S4<-C : a cyclic shift of the identity.
    x_new = np.roll(np.eye(4, dtype=np.int8), shift=-1, axis=1)
    return RtspInstance.create(
        sizes, capacities, costs, x_old, x_new, dummy_constant=dummy_constant
    )


def fig3_example_instance(dummy_constant: float = 1.0) -> RtspInstance:
    """Paper Fig. 3: the worked four-server example of §4.1.

    Placement (derived from the schedules printed in the paper):

    ========  ==========  ==========
    server    X_old       X_new
    ========  ==========  ==========
    S1        {A, B}      {B, D}
    S2        {C, D}      {A, B}
    S3        {B, C}      {C, D}
    S4        {A, B}      {C, D}
    ========  ==========  ==========

    All objects have unit size; every server stores exactly two objects in
    both schemes and has capacity 2 (zero slack). Link costs: the paper
    states ``l_34 = 1`` and ``l_14 = 2``; the others are reconstructed so
    that every nearest-source choice in the paper's RDF/GSDF walkthroughs
    is reproduced (S2 pulls A and B from S1; S4 pulls C from S3 and D from
    S3 over S1).
    """
    sizes = np.ones(4)
    capacities = np.full(4, 2.0)
    #       S1   S2   S3   S4
    costs = np.array(
        [
            [0.0, 1.0, 3.0, 2.0],
            [1.0, 0.0, 2.0, 3.0],
            [3.0, 2.0, 0.0, 1.0],
            [2.0, 3.0, 1.0, 0.0],
        ]
    )
    A, B, C, D = OBJECTS["A"], OBJECTS["B"], OBJECTS["C"], OBJECTS["D"]
    x_old = np.zeros((4, 4), dtype=np.int8)
    x_new = np.zeros((4, 4), dtype=np.int8)
    for server, objs in enumerate(([A, B], [C, D], [B, C], [A, B])):
        for k in objs:
            x_old[server, k] = 1
    for server, objs in enumerate(([B, D], [A, B], [C, D], [C, D])):
        for k in objs:
            x_new[server, k] = 1
    return RtspInstance.create(
        sizes, capacities, costs, x_old, x_new, dummy_constant=dummy_constant
    )
