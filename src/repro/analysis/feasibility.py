"""Feasibility indicators for RTSP instances (paper §3.3).

Deciding whether a schedule *without any dummy transfer* exists is as hard
as RTSP itself, so this module provides:

* a cheap *sufficient* condition (:func:`is_trivially_sequenceable`) under
  which a dummy-free schedule certainly exists, and
* structural *risk* indicators (:func:`deadlock_risk_servers`,
  :func:`analyze_feasibility`) that flag the cyclic tight-storage pattern
  of the paper's Fig. 1.

With the dummy server the extended problem is always solvable as long as
``X_old``/``X_new`` fit their capacities; ``RtspInstance.check_feasible``
enforces that invariant at construction time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

import numpy as np

from repro.analysis.transfer_graph import (
    has_transfer_cycle,
    objects_without_source,
    sole_source_arcs,
)
from repro.model.instance import RtspInstance
from repro.util.errors import InfeasibleInstanceError


@dataclass(frozen=True)
class FeasibilitySummary:
    """Structural feasibility report for an instance.

    Attributes
    ----------
    storage_feasible:
        Both schemes fit server capacities (hard requirement).
    trivially_sequenceable:
        A dummy-free schedule provably exists (sufficient condition:
        every server can stage its incoming replicas without deleting,
        or no transfer ever depends on a deleted sole source).
    transfer_cycle:
        The transfer graph contains a directed cycle.
    zero_slack_servers:
        Servers whose capacity equals their ``X_old`` load exactly and
        which must both receive and delete — the deadlock-prone set.
    forced_dummy_objects:
        Outstanding objects with no old replicator at all: each costs at
        least one unavoidable dummy transfer.
    """

    storage_feasible: bool
    trivially_sequenceable: bool
    transfer_cycle: bool
    zero_slack_servers: List[int]
    forced_dummy_objects: Set[int]

    @property
    def deadlock_possible(self) -> bool:
        """Whether the Fig.-1 pattern (cycle + tight storage) is present."""
        return self.transfer_cycle and bool(self.zero_slack_servers)


def is_trivially_sequenceable(instance: RtspInstance, eps: float = 1e-9) -> bool:
    """Sufficient condition for a dummy-free schedule to exist.

    True when transfers can be globally ordered "receive before delete":
    every server has enough *slack* (capacity minus ``X_old`` load) to hold
    all its outstanding replicas on top of its old load. Then all transfers
    can run first (each from an intact old source) and all deletions last.
    Also requires every outstanding object to have at least one old
    replicator.
    """
    if objects_without_source(instance):
        return False
    slack = instance.capacities - instance.old_loads()
    incoming = instance.outstanding().astype(np.float64) @ instance.sizes
    return bool((incoming <= slack + eps).all())


def deadlock_risk_servers(instance: RtspInstance, eps: float = 1e-9) -> List[int]:
    """Servers that must delete before they can receive.

    A server is at risk when its slack under ``X_old`` is smaller than the
    size of some outstanding replica it must receive — it cannot accept
    that replica without deleting first, which is the precondition for the
    paper's deadlock.
    """
    slack = instance.capacities - instance.old_loads()
    outstanding = instance.outstanding()
    risky: List[int] = []
    for i in range(instance.num_servers):
        objs = np.flatnonzero(outstanding[i])
        if objs.size and float(instance.sizes[objs].min()) > slack[i] + eps:
            risky.append(i)
    return risky


def analyze_feasibility(instance: RtspInstance) -> FeasibilitySummary:
    """Produce a :class:`FeasibilitySummary` for ``instance``."""
    try:
        instance.check_feasible()
        storage_ok = True
    except InfeasibleInstanceError:
        # Only genuine storage violations mean "infeasible"; programming
        # errors (typos, shape mismatches) must propagate, not be
        # misreported as an infeasible instance.
        storage_ok = False
    slack = instance.capacities - instance.old_loads()
    outstanding = instance.outstanding()
    superfluous = instance.superfluous()
    zero_slack = [
        int(i)
        for i in range(instance.num_servers)
        if slack[i] <= 1e-9 and outstanding[i].any() and superfluous[i].any()
    ]
    return FeasibilitySummary(
        storage_feasible=storage_ok,
        trivially_sequenceable=is_trivially_sequenceable(instance),
        transfer_cycle=has_transfer_cycle(instance),
        zero_slack_servers=zero_slack,
        forced_dummy_objects=objects_without_source(instance),
    )


def minimum_dummy_transfers(instance: RtspInstance) -> int:
    """A lower bound on dummy transfers any valid schedule must contain.

    Each outstanding object with no replicator anywhere in ``X_old`` needs
    its first copy from the dummy server; everything else can in principle
    be served from real sources.
    """
    return len(objects_without_source(instance))
