"""Schedule metrics.

The paper reports two quantities per experiment cell: the number of dummy
transfers left in the schedule and the implementation cost. This module
computes those plus auxiliary statistics the extended harness records,
including repair-overhead metrics for fault-injected executions
(:func:`repair_stats`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.model.actions import Delete, Transfer
from repro.model.instance import RtspInstance
from repro.model.schedule import Schedule


@dataclass(frozen=True)
class ScheduleStats:
    """Aggregate statistics of one schedule against its instance."""

    num_actions: int
    num_transfers: int
    num_deletions: int
    num_dummy_transfers: int
    cost: float
    dummy_cost_share: float
    max_position_dummy: int

    def as_dict(self) -> Dict[str, float]:
        """Flat dict view for CSV/report writers."""
        return {
            "num_actions": self.num_actions,
            "num_transfers": self.num_transfers,
            "num_deletions": self.num_deletions,
            "num_dummy_transfers": self.num_dummy_transfers,
            "cost": self.cost,
            "dummy_cost_share": self.dummy_cost_share,
            "max_position_dummy": self.max_position_dummy,
        }


def implementation_cost(schedule: Schedule, instance: RtspInstance) -> float:
    """Implementation cost of ``schedule`` (paper eq. 1)."""
    return schedule.cost(instance)


def count_dummy_transfers(schedule: Schedule, instance: RtspInstance) -> int:
    """Number of transfers sourced from the dummy server."""
    return schedule.count_dummy_transfers(instance)


def schedule_stats(schedule: Schedule, instance: RtspInstance) -> ScheduleStats:
    """Compute :class:`ScheduleStats` in one pass over the schedule."""
    num_transfers = 0
    num_deletions = 0
    num_dummy = 0
    cost = 0.0
    dummy_cost = 0.0
    last_dummy_pos = -1
    dummy = instance.dummy
    for idx, action in enumerate(schedule):
        if isinstance(action, Transfer):
            num_transfers += 1
            c = instance.transfer_cost(action.target, action.obj, action.source)
            cost += c
            if action.source == dummy:
                num_dummy += 1
                dummy_cost += c
                last_dummy_pos = idx
        elif isinstance(action, Delete):
            num_deletions += 1
    return ScheduleStats(
        num_actions=len(schedule),
        num_transfers=num_transfers,
        num_deletions=num_deletions,
        num_dummy_transfers=num_dummy,
        cost=cost,
        dummy_cost_share=(dummy_cost / cost) if cost > 0 else 0.0,
        max_position_dummy=last_dummy_pos,
    )


@dataclass(frozen=True)
class RepairStats:
    """Overhead of a fault-injected, repaired execution vs fault-free.

    Attributes
    ----------
    cost_overhead:
        ``(applied + wasted cost) / fault_free_cost - 1`` — the extra
        communication paid for the same transition (0 when no faults
        fired; 0 by convention when the fault-free cost is zero).
    wasted_cost:
        Cost burnt on failed attempts and aborted in-flight transfers.
    repair_rounds:
        Number of re-planning rounds the engine ran.
    dummy_fallbacks:
        Dummy transfers beyond the fault-free schedule's count — the
        graceful-degradation paths taken because real sources were gone.
    makespan_stretch:
        Repaired wall-clock over fault-free makespan (1.0 when unhurt;
        1.0 by convention when the fault-free makespan is zero).
    replans:
        Re-planning invocations the engine performed (can diverge from
        ``repair_rounds`` under retry policies that skip re-planning).
    backoff_total:
        Total simulated backoff downtime charged before re-plans.
    """

    cost_overhead: float
    wasted_cost: float
    repair_rounds: int
    dummy_fallbacks: int
    makespan_stretch: float
    replans: int = 0
    backoff_total: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        """Flat dict view for CSV/JSON writers."""
        return {
            "cost_overhead": self.cost_overhead,
            "wasted_cost": self.wasted_cost,
            "repair_rounds": self.repair_rounds,
            "dummy_fallbacks": self.dummy_fallbacks,
            "makespan_stretch": self.makespan_stretch,
            "replans": self.replans,
            "backoff_total": self.backoff_total,
        }


def repair_stats(report) -> RepairStats:
    """Summarise a :class:`repro.robust.RepairReport` as overhead metrics.

    Accepts the report duck-typed (only its numeric fields are read), so
    :mod:`repro.analysis` does not import :mod:`repro.robust`.
    """
    spent = report.total_cost + report.wasted_cost
    overhead = (
        spent / report.fault_free_cost - 1.0
        if report.fault_free_cost > 0
        else 0.0
    )
    stretch = (
        report.makespan / report.fault_free_makespan
        if report.fault_free_makespan > 0
        else 1.0
    )
    return RepairStats(
        cost_overhead=overhead,
        wasted_cost=report.wasted_cost,
        repair_rounds=report.rounds,
        dummy_fallbacks=max(
            0, report.dummy_transfers - report.fault_free_dummy_transfers
        ),
        makespan_stretch=stretch,
        # getattr keeps duck-type compatibility with reports predating
        # the retry/backoff counters.
        replans=int(getattr(report, "replans", report.rounds)),
        backoff_total=float(getattr(report, "backoff_total", 0.0)),
    )
