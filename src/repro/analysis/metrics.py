"""Schedule metrics.

The paper reports two quantities per experiment cell: the number of dummy
transfers left in the schedule and the implementation cost. This module
computes those plus auxiliary statistics the extended harness records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.model.actions import Delete, Transfer
from repro.model.instance import RtspInstance
from repro.model.schedule import Schedule


@dataclass(frozen=True)
class ScheduleStats:
    """Aggregate statistics of one schedule against its instance."""

    num_actions: int
    num_transfers: int
    num_deletions: int
    num_dummy_transfers: int
    cost: float
    dummy_cost_share: float
    max_position_dummy: int

    def as_dict(self) -> Dict[str, float]:
        """Flat dict view for CSV/report writers."""
        return {
            "num_actions": self.num_actions,
            "num_transfers": self.num_transfers,
            "num_deletions": self.num_deletions,
            "num_dummy_transfers": self.num_dummy_transfers,
            "cost": self.cost,
            "dummy_cost_share": self.dummy_cost_share,
            "max_position_dummy": self.max_position_dummy,
        }


def implementation_cost(schedule: Schedule, instance: RtspInstance) -> float:
    """Implementation cost of ``schedule`` (paper eq. 1)."""
    return schedule.cost(instance)


def count_dummy_transfers(schedule: Schedule, instance: RtspInstance) -> int:
    """Number of transfers sourced from the dummy server."""
    return schedule.count_dummy_transfers(instance)


def schedule_stats(schedule: Schedule, instance: RtspInstance) -> ScheduleStats:
    """Compute :class:`ScheduleStats` in one pass over the schedule."""
    num_transfers = 0
    num_deletions = 0
    num_dummy = 0
    cost = 0.0
    dummy_cost = 0.0
    last_dummy_pos = -1
    dummy = instance.dummy
    for idx, action in enumerate(schedule):
        if isinstance(action, Transfer):
            num_transfers += 1
            c = instance.transfer_cost(action.target, action.obj, action.source)
            cost += c
            if action.source == dummy:
                num_dummy += 1
                dummy_cost += c
                last_dummy_pos = idx
        elif isinstance(action, Delete):
            num_deletions += 1
    return ScheduleStats(
        num_actions=len(schedule),
        num_transfers=num_transfers,
        num_deletions=num_deletions,
        num_dummy_transfers=num_dummy,
        cost=cost,
        dummy_cost_share=(dummy_cost / cost) if cost > 0 else 0.0,
        max_position_dummy=last_dummy_pos,
    )
