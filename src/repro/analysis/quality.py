"""Plan-quality metrics: how good is a schedule, in gauge form.

Condenses a finished plan into three normalised quality figures the
observability layer can track across runs and fleets:

* ``cost_gap`` — relative gap between the schedule's implementation
  cost and the admissible :func:`repro.analysis.bounds.
  residual_lower_bound` from the old placement (0.0 means the plan
  meets the bound; the bound itself can be loose, so a positive gap is
  an upper estimate of suboptimality);
* ``dummy_traffic_ratio`` — fraction of transferred bytes sourced from
  the dummy server (paper section IV: dummy transfers are the
  infeasibility surcharge, so this is "how much of the traffic is
  penalty traffic");
* ``lpt_imbalance`` — max/mean bin load of the LPT shard packing
  (1.0 = perfectly balanced; only meaningful for sharded plans).

:func:`record_plan_quality` publishes them as gauges on a
:class:`~repro.obs.metrics.MetricsRegistry`, from where the Prometheus
and OTLP exporters (:mod:`repro.obs.export`) and ``rtsp-tool
trace-summary`` pick them up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.bounds import residual_lower_bound
from repro.model.actions import Transfer
from repro.model.instance import RtspInstance
from repro.model.schedule import Schedule
from repro.obs.metrics import MetricsRegistry

__all__ = ["PlanQuality", "plan_quality", "lpt_imbalance", "record_plan_quality"]


@dataclass(frozen=True)
class PlanQuality:
    """Normalised quality figures of one finished plan."""

    cost: float
    lower_bound: float
    cost_gap: float
    total_traffic: float
    dummy_traffic: float
    dummy_traffic_ratio: float
    lpt_imbalance: float

    def as_dict(self) -> Dict[str, float]:
        """Flat dict view for report writers and span attributes."""
        return {
            "cost": self.cost,
            "lower_bound": self.lower_bound,
            "cost_gap": self.cost_gap,
            "total_traffic": self.total_traffic,
            "dummy_traffic": self.dummy_traffic,
            "dummy_traffic_ratio": self.dummy_traffic_ratio,
            "lpt_imbalance": self.lpt_imbalance,
        }


def lpt_imbalance(
    partition: object, bins: Optional[Sequence[Sequence[int]]]
) -> float:
    """Max/mean bin load of an LPT packing (1.0 when trivially balanced).

    ``partition`` must expose ``parts[i].weight`` (a
    :class:`~repro.shard.partition.Partition`); ``bins`` is the output
    of :func:`~repro.shard.partition.pack_parts`. Empty or single-bin
    packings are perfectly "balanced" by definition.
    """
    if bins is None or len(bins) <= 1:
        return 1.0
    parts = getattr(partition, "parts", None)
    if parts is None:
        return 1.0
    loads: List[float] = []
    for bin_indices in bins:
        loads.append(
            float(sum(parts[index].weight for index in bin_indices))
        )
    mean = sum(loads) / len(loads)
    if mean <= 0.0:
        return 1.0
    return max(loads) / mean


def plan_quality(
    instance: RtspInstance,
    schedule: Schedule,
    cost: Optional[float] = None,
    partition: object = None,
    bins: Optional[Sequence[Sequence[int]]] = None,
) -> PlanQuality:
    """Compute :class:`PlanQuality` for ``schedule`` against ``instance``.

    ``cost`` short-circuits the cost recomputation when the caller
    already has it (e.g. :class:`~repro.shard.planner.ShardedPlan`).
    ``partition``/``bins`` feed :func:`lpt_imbalance`; omit them for
    unsharded plans.
    """
    if cost is None:
        cost = schedule.cost(instance)
    bound = residual_lower_bound(instance, instance.x_old)
    if bound > 0.0:
        gap = (cost - bound) / bound
    else:
        gap = 0.0 if cost <= 0.0 else float("inf")
    dummy = instance.dummy
    sizes = instance.sizes
    total_traffic = 0.0
    dummy_traffic = 0.0
    for action in schedule:
        if isinstance(action, Transfer):
            size = float(sizes[action.obj])
            total_traffic += size
            if action.source == dummy:
                dummy_traffic += size
    ratio = dummy_traffic / total_traffic if total_traffic > 0.0 else 0.0
    return PlanQuality(
        cost=float(cost),
        lower_bound=bound,
        cost_gap=gap,
        total_traffic=total_traffic,
        dummy_traffic=dummy_traffic,
        dummy_traffic_ratio=ratio,
        lpt_imbalance=lpt_imbalance(partition, bins),
    )


def record_plan_quality(
    quality: PlanQuality, registry: Optional[MetricsRegistry]
) -> None:
    """Publish ``quality`` as ``plan.*`` gauges on ``registry``.

    No-op when ``registry`` is ``None`` (metrics off), so callers can
    pass :func:`repro.obs.context.current_metrics` straight through.
    The infinite gap of a zero lower bound is not a useful gauge value
    and is skipped.
    """
    if registry is None:
        return
    if quality.cost_gap != float("inf"):
        registry.gauge("plan.cost_gap").set(quality.cost_gap)
    registry.gauge("plan.dummy_traffic_ratio").set(
        quality.dummy_traffic_ratio
    )
    registry.gauge("plan.lpt_imbalance").set(quality.lpt_imbalance)
    registry.gauge("plan.cost").set(quality.cost)
    registry.gauge("plan.lower_bound").set(quality.lower_bound)
