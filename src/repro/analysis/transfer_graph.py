"""The transfer graph of paper §3.3 (Fig. 1b).

Nodes are servers; for each *outstanding* replica (one that must be created
to reach ``X_new``) there is an arc from every potential source — every
server replicating the object in ``X_old`` — to the destination, labelled
with the object. Cyclic structure in this graph combined with tight
storage is the paper's deadlock mechanism: to receive, a server must first
delete, which may destroy the only source of another pending transfer.
"""

from __future__ import annotations

from typing import List, Set, Tuple

import networkx as nx
import numpy as np

from repro.model.instance import RtspInstance


def build_transfer_graph(instance: RtspInstance) -> nx.MultiDiGraph:
    """Build the transfer multigraph for ``instance``.

    Each arc carries an ``obj`` attribute naming the outstanding object.
    Arcs are only drawn from *real* sources (the dummy server is omitted:
    it exists precisely to break the structure this graph exposes).
    """
    g = nx.MultiDiGraph()
    g.add_nodes_from(range(instance.num_servers))
    outstanding = instance.outstanding()
    x_old = instance.x_old
    for target, obj in zip(*np.nonzero(outstanding)):
        sources = np.flatnonzero(x_old[:, obj])
        for src in sources:
            g.add_edge(int(src), int(target), obj=int(obj))
    return g


def transfer_graph_cycles(
    instance: RtspInstance, limit: int = 1000
) -> List[List[int]]:
    """Enumerate (up to ``limit``) simple cycles of the transfer graph.

    Cycles are returned as node lists. The count is capped because cycle
    enumeration is exponential in the worst case; callers that only need a
    yes/no answer should use :func:`has_transfer_cycle`.
    """
    cycles: List[List[int]] = []
    if limit <= 0:
        return cycles
    g = build_transfer_graph(instance)
    for cyc in nx.simple_cycles(g):
        cycles.append([int(u) for u in cyc])
        if len(cycles) >= limit:
            break
    return cycles


def has_transfer_cycle(instance: RtspInstance) -> bool:
    """Whether the transfer graph contains any directed cycle."""
    g = build_transfer_graph(instance)
    try:
        nx.find_cycle(g)
        return True
    except nx.NetworkXNoCycle:
        return False


def sole_source_arcs(instance: RtspInstance) -> List[Tuple[int, int, int]]:
    """Arcs ``(source, target, obj)`` where ``source`` is the *only* old
    replicator of ``obj``.

    Deleting such a source before serving its arc forces a dummy transfer,
    so these arcs are the fragile part of the transfer graph.
    """
    out: List[Tuple[int, int, int]] = []
    outstanding = instance.outstanding()
    x_old = instance.x_old
    for target, obj in zip(*np.nonzero(outstanding)):
        sources = np.flatnonzero(x_old[:, obj])
        if len(sources) == 1:
            out.append((int(sources[0]), int(target), int(obj)))
    return out


def placement_components(instance: RtspInstance) -> List[List[int]]:
    """Server groups closed under every possible schedule interaction.

    Two servers interact when some object has a replica (old or new) on
    both: a transfer arc of the transfer graph connects an old holder to
    a target, and a deletion at a co-holder can destroy a source another
    server still needs. The undirected closure of those relations —
    union-by-object-footprint — partitions the servers into groups no
    valid action can cross, so each group, together with its objects, is
    an independently plannable sub-instance (the shard boundary used by
    :mod:`repro.shard`).

    Every connected component of :func:`build_transfer_graph` is
    contained in exactly one group (arcs never cross a footprint
    boundary). Components are returned as sorted server-index lists,
    ordered by their smallest server; servers that touch no object form
    singleton components.

    Implemented as a union-find sweep over the placement columns rather
    than through networkx: at fleet scale the explicit multigraph (one
    arc per source x target pair) is quadratically larger than the
    footprint relation.
    """
    m = instance.num_servers
    parent = list(range(m))

    def find(i: int) -> int:
        root = i
        while parent[root] != root:
            root = parent[root]
        while parent[i] != root:  # path compression
            parent[i], i = root, parent[i]
        return root

    footprint = (instance.x_old | instance.x_new).astype(bool)
    for col in range(instance.num_objects):
        holders = np.flatnonzero(footprint[:, col])
        if holders.size < 2:
            continue
        first = find(int(holders[0]))
        for other in holders[1:].tolist():
            root = find(other)
            if root != first:
                parent[root] = first
    groups: dict = {}
    for server in range(m):
        groups.setdefault(find(server), []).append(server)
    return sorted(groups.values(), key=lambda servers: servers[0])


def objects_without_source(instance: RtspInstance) -> Set[int]:
    """Outstanding objects with *no* replicator at all in ``X_old``.

    Every such object necessarily costs one dummy transfer (its first copy
    can only come from the archival/dummy server) — this is the floor any
    dummy-minimising heuristic can reach.
    """
    outstanding = instance.outstanding()
    needs = np.flatnonzero(outstanding.any(axis=0))
    have = instance.x_old.any(axis=0)
    return {int(k) for k in needs if not have[k]}
