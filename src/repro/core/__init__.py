"""RTSP scheduling heuristics — the paper's primary contribution.

Builders construct a valid schedule from scratch:

* :class:`~repro.core.builders.rdf.RandomDeletionsFirst` (RDF, §4.1)
* :class:`~repro.core.builders.gsdf.GroupedServerDeletionsFirst` (GSDF, §4.1)
* :class:`~repro.core.builders.ar.AllRandom` (AR, §4.2)
* :class:`~repro.core.builders.golcf.GreedyObjectLowestCostFirst` (GOLCF, §4.2)

Optimizers rewrite an existing valid schedule:

* :class:`~repro.core.optimizers.h1.H1MoveDummyTransfers` (H1, §4.1)
* :class:`~repro.core.optimizers.h2.H2CreateSuperfluousReplicas` (H2, §4.1)
* :class:`~repro.core.optimizers.op1.OP1ReorderTransfers` (OP1, §4.2)

:mod:`repro.core.pipeline` composes them (``GOLCF+H1+H2+OP1`` is the
paper's winner); :mod:`repro.core.exact` provides a branch-and-bound
optimum for small instances.
"""

from repro.core.base import (
    ScheduleBuilder,
    ScheduleOptimizer,
    available_builders,
    available_optimizers,
    get_builder,
    get_optimizer,
)
from repro.core.builders.rdf import RandomDeletionsFirst
from repro.core.builders.gsdf import GroupedServerDeletionsFirst
from repro.core.builders.ar import AllRandom
from repro.core.builders.golcf import GreedyObjectLowestCostFirst
from repro.core.builders.gmc import GlobalMinimumCostFirst
from repro.core.optimizers.h1 import H1MoveDummyTransfers
from repro.core.optimizers.h2 import H2CreateSuperfluousReplicas
from repro.core.optimizers.op1 import OP1ReorderTransfers
from repro.core.optimizers.nsr import NearestSourceRefinement
from repro.core.pipeline import Pipeline, build_pipeline, PAPER_PIPELINES
from repro.core.exact import ExactSolver, solve_exact, decide_rtsp

__all__ = [
    "ScheduleBuilder",
    "ScheduleOptimizer",
    "available_builders",
    "available_optimizers",
    "get_builder",
    "get_optimizer",
    "RandomDeletionsFirst",
    "GroupedServerDeletionsFirst",
    "AllRandom",
    "GreedyObjectLowestCostFirst",
    "GlobalMinimumCostFirst",
    "H1MoveDummyTransfers",
    "H2CreateSuperfluousReplicas",
    "OP1ReorderTransfers",
    "NearestSourceRefinement",
    "Pipeline",
    "build_pipeline",
    "PAPER_PIPELINES",
    "ExactSolver",
    "solve_exact",
    "decide_rtsp",
]
