"""Builder/optimizer interfaces and the algorithm registry.

Builders and optimizers are small stateless-ish objects: construct once
(possibly with tuning options), call ``build``/``optimize`` many times.
All stochastic choices flow through the ``rng`` argument so experiment
cells are reproducible.

The registry maps the names used in the paper's plots ("GOLCF", "H1", …)
to classes, and :func:`repro.core.pipeline.build_pipeline` parses composed
names like ``"GOLCF+H1+H2+OP1"``.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.model.actions import Delete, Transfer
from repro.model.instance import RtspInstance
from repro.model.schedule import Schedule
from repro.model.state import SystemState
from repro.obs.context import current_metrics
from repro.util.errors import ConfigurationError, InvalidScheduleError
from repro.util.rng import ensure_rng


class ScheduleBuilder(abc.ABC):
    """Builds a valid schedule for an instance from scratch."""

    #: Registry / display name (matches the paper where applicable).
    name: str = "builder"

    @abc.abstractmethod
    def build(self, instance: RtspInstance, rng=None) -> Schedule:
        """Return a schedule valid w.r.t. ``(X_old, X_new)``."""

    def build_checked(
        self, instance: RtspInstance, rng=None, validate="strict"
    ) -> Schedule:
        """:meth:`build`, then validate the result before returning it.

        ``validate`` accepts the same specs as
        :func:`repro.exact.validate.resolve_validator` (default: the
        strict independent invariant oracle). Raises
        :class:`~repro.util.errors.InvalidScheduleError` naming this
        builder when the schedule is rejected.
        """
        schedule = self.build(instance, rng=rng)
        _run_validator(validate, instance, schedule, self.name)
        return schedule

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"


class ScheduleOptimizer(abc.ABC):
    """Rewrites an existing valid schedule, preserving validity."""

    name: str = "optimizer"

    @abc.abstractmethod
    def optimize(
        self, instance: RtspInstance, schedule: Schedule, rng=None
    ) -> Schedule:
        """Return an improved (or unchanged) valid schedule.

        Implementations never mutate the input schedule.
        """

    def optimize_checked(
        self,
        instance: RtspInstance,
        schedule: Schedule,
        rng=None,
        validate="strict",
    ) -> Schedule:
        """:meth:`optimize`, then validate the rewritten schedule.

        Same contract as :meth:`ScheduleBuilder.build_checked`.
        """
        optimized = self.optimize(instance, schedule, rng=rng)
        _run_validator(validate, instance, optimized, self.name)
        return optimized

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"


def _run_validator(spec, instance: RtspInstance, schedule: Schedule, stage: str):
    """Resolve ``spec`` and apply it, prefixing failures with ``stage``."""
    # Lazy import: repro.exact imports repro.core at module level, so the
    # dependency may only run in this direction at call time.
    from repro.exact.validate import resolve_validator

    validator = resolve_validator(spec)
    if validator is None:
        return
    try:
        validator(instance, schedule)
    except InvalidScheduleError as exc:
        raise InvalidScheduleError(
            f"{stage}: {exc}", position=exc.position
        ) from exc


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_BUILDERS: Dict[str, Callable[[], ScheduleBuilder]] = {}
_OPTIMIZERS: Dict[str, Callable[[], ScheduleOptimizer]] = {}


def register_builder(cls):
    """Class decorator adding a builder to the registry under ``cls.name``."""
    _BUILDERS[cls.name.upper()] = cls
    return cls


def register_optimizer(cls):
    """Class decorator adding an optimizer to the registry under ``cls.name``."""
    _OPTIMIZERS[cls.name.upper()] = cls
    return cls


def get_builder(name: str) -> ScheduleBuilder:
    """Instantiate the registered builder called ``name`` (case-insensitive)."""
    if not isinstance(name, str):
        raise ConfigurationError(
            f"builder name must be a string, got {type(name).__name__};"
            f" available: {sorted(_BUILDERS)}"
        )
    try:
        return _BUILDERS[name.upper()]()
    except KeyError:
        raise ConfigurationError(
            f"unknown builder {name!r}; available: {sorted(_BUILDERS)}"
        ) from None


def get_optimizer(name: str) -> ScheduleOptimizer:
    """Instantiate the registered optimizer called ``name``."""
    if not isinstance(name, str):
        raise ConfigurationError(
            f"optimizer name must be a string, got {type(name).__name__};"
            f" available: {sorted(_OPTIMIZERS)}"
        )
    try:
        return _OPTIMIZERS[name.upper()]()
    except KeyError:
        raise ConfigurationError(
            f"unknown optimizer {name!r}; available: {sorted(_OPTIMIZERS)}"
        ) from None


def available_builders() -> List[str]:
    """Registered builder names."""
    return sorted(_BUILDERS)


def available_optimizers() -> List[str]:
    """Registered optimizer names."""
    return sorted(_OPTIMIZERS)


# ----------------------------------------------------------------------
# shared building blocks
# ----------------------------------------------------------------------
def shuffled_pairs(mask: np.ndarray, rng) -> List[Tuple[int, int]]:
    """All ``(server, obj)`` coordinates with ``mask == 1``, shuffled.

    ``tolist()`` converts whole index columns to Python ints at C speed
    (per-element ``int()`` casts dominated builder setup at fleet
    scale); the pair order and the shuffle's RNG stream are unchanged.
    """
    rows, cols = np.nonzero(mask)
    pairs = list(zip(rows.tolist(), cols.tolist()))
    gen = ensure_rng(rng)
    gen.shuffle(pairs)
    return pairs


def append_transfer_from_nearest(
    schedule: Schedule, state: SystemState, target: int, obj: int
) -> Transfer:
    """Append (and apply) a transfer of ``obj`` to ``target`` from the
    currently nearest source — the dummy server when no real source exists.
    """
    source = state.nearest(target, obj)
    action = Transfer(target, obj, source)
    state.apply(action)
    schedule.append(action)
    registry = current_metrics()
    if registry is not None:
        registry.counter("builder.transfers").inc()
        if source == state.dummy:
            registry.counter("builder.dummy_transfers").inc()
    return action


def append_deletions(
    schedule: Schedule, state: SystemState, pairs
) -> None:
    """Append (and apply) a ``Delete`` for every ``(server, obj)`` pair."""
    for i, k in pairs:
        action = Delete(i, k)
        state.apply(action)
        schedule.append(action)


def remaining_superfluous(
    instance: RtspInstance, state: SystemState
) -> List[Tuple[int, int]]:
    """Superfluous replicas (``X_new = 0``) still present in ``state``."""
    current = state.placement()
    mask = (current == 1) & (instance.x_new == 0)
    return [(int(i), int(k)) for i, k in zip(*np.nonzero(mask))]


def golcf_benefit(
    instance: RtspInstance,
    state: SystemState,
    server: int,
    obj: int,
    pending_targets: Dict[int, set],
) -> float:
    """GOLCF deletion benefit ``B_ik`` (paper eq. 4).

    The benefit of *keeping* the (superfluous) replica of ``obj`` at
    ``server``: for every server ``j`` that still awaits an outstanding
    replica of ``obj`` and whose nearest current source is ``server``, the
    extra cost it would pay by falling back to its second-nearest source.
    Low benefit ⇒ cheap to delete.
    """
    waiting = pending_targets.get(obj)
    if not waiting:
        return 0.0
    return state.index.keep_benefit(server, obj, waiting)
