"""Schedule builders — the paper's §4 heuristics plus the GMC extension.

Every builder subclasses :class:`repro.core.base.ScheduleBuilder`,
registers itself under its paper name via
:func:`repro.core.base.register_builder`, and emits exactly one transfer
per outstanding cell and one deletion per superfluous cell of
``(X_old, X_new)``:

* :class:`~repro.core.builders.rdf.RandomDeletionsFirst` (``RDF``, §4.1)
  — all deletions first, then transfers from the then-nearest source;
* :class:`~repro.core.builders.gsdf.GroupedServerDeletionsFirst`
  (``GSDF``, §4.1) — contiguous per-server groups, deletions before
  transfers within each group;
* :class:`~repro.core.builders.ar.AllRandom` (``AR``, §4.2) — uniformly
  random interleaving of valid deletions and transfers;
* :class:`~repro.core.builders.golcf.GreedyObjectLowestCostFirst`
  (``GOLCF``, §4.2) — cheapest object served whole, benefit-ordered
  evictions (eq. 4);
* :class:`~repro.core.builders.gmc.GlobalMinimumCostFirst` (``GMC``,
  extension) — globally cheapest pending transfer each step.

Determinism contract: all randomness flows through
:func:`repro.util.rng.ensure_rng`, so ``build(instance, rng=seed)`` with
an ``int`` seed returns an identical schedule on every call, and dummy
transfers appear only when no real source (or no evictable space) exists.
"""

from repro.core.builders.ar import AllRandom
from repro.core.builders.gmc import GlobalMinimumCostFirst
from repro.core.builders.golcf import GreedyObjectLowestCostFirst
from repro.core.builders.gsdf import GroupedServerDeletionsFirst
from repro.core.builders.rdf import RandomDeletionsFirst

__all__ = [
    "AllRandom",
    "GlobalMinimumCostFirst",
    "GreedyObjectLowestCostFirst",
    "GroupedServerDeletionsFirst",
    "RandomDeletionsFirst",
]
