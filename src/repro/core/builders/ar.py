"""AR — All Random (paper §4.2).

The unbiased baseline for the cost-aware greedies: at every step AR draws
uniformly at random from the currently valid pending actions — every
not-yet-performed superfluous deletion (deletions are always valid) plus
every outstanding transfer whose target currently has room (the source is
the nearest replicator at that moment, degrading to the dummy server when
the object has no live copy). The draw is repeated until both work lists
are empty.

No deadlock is possible: while deletions remain they are valid choices,
and once the last deletion is done every server's holdings are a subset
of its ``X_new`` row, so each remaining transfer fits. Any deletions left
after the final transfer simply drain out through later draws, so the
schedule ends with a random-order flush.
"""

from __future__ import annotations

from repro.core.base import (
    ScheduleBuilder,
    append_transfer_from_nearest,
    register_builder,
    shuffled_pairs,
)
from repro.core.builders.common import has_space
from repro.model.actions import Delete
from repro.model.instance import RtspInstance
from repro.model.schedule import Schedule
from repro.model.state import SystemState
from repro.util.rng import ensure_rng


@register_builder
class AllRandom(ScheduleBuilder):
    """Uniformly random interleaving of valid deletions and transfers."""

    name = "AR"

    def build(self, instance: RtspInstance, rng=None) -> Schedule:
        gen = ensure_rng(rng)
        state = SystemState(instance)
        schedule = Schedule()
        deletions = shuffled_pairs(instance.superfluous(), gen)
        transfers = shuffled_pairs(instance.outstanding(), gen)
        while deletions or transfers:
            ready = [
                pos
                for pos, (target, obj) in enumerate(transfers)
                if has_space(state, target, obj)
            ]
            total = len(deletions) + len(ready)
            assert total, (
                "AR is stuck: transfers pending without space and no "
                "deletion left; X_new would violate a capacity"
            )
            draw = int(gen.integers(total))
            if draw < len(deletions):
                server, obj = deletions.pop(draw)
                action = Delete(server, obj)
                state.apply(action)
                schedule.append(action)
            else:
                target, obj = transfers.pop(ready[draw - len(deletions)])
                append_transfer_from_nearest(schedule, state, target, obj)
        return schedule
