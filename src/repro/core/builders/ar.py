"""AR — All Random (paper §4.2).

The unbiased baseline for the cost-aware greedies: at every step AR draws
uniformly at random from the currently valid pending actions — every
not-yet-performed superfluous deletion (deletions are always valid) plus
every outstanding transfer whose target currently has room (the source is
the nearest replicator at that moment, degrading to the dummy server when
the object has no live copy). The draw is repeated until both work lists
are empty.

No deadlock is possible: while deletions remain they are valid choices,
and once the last deletion is done every server's holdings are a subset
of its ``X_new`` row, so each remaining transfer fits. Any deletions left
after the final transfer simply drain out through later draws, so the
schedule ends with a random-order flush.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import (
    ScheduleBuilder,
    append_transfer_from_nearest,
    register_builder,
    shuffled_pairs,
)
from repro.model.actions import Delete
from repro.model.instance import RtspInstance
from repro.model.schedule import Schedule
from repro.model.state import CAPACITY_EPS, SystemState
from repro.util.rng import ensure_rng


@register_builder
class AllRandom(ScheduleBuilder):
    """Uniformly random interleaving of valid deletions and transfers."""

    name = "AR"

    def build(self, instance: RtspInstance, rng=None) -> Schedule:
        # Lazy import: repro.flat builds on repro.core, not vice versa.
        from repro.flat import flat_build, use_flat

        if use_flat(instance):
            return flat_build(self.name, instance, rng=rng)
        gen = ensure_rng(rng)
        state = SystemState(instance)
        schedule = Schedule()
        deletions = shuffled_pairs(instance.superfluous(), gen)
        transfers = shuffled_pairs(instance.outstanding(), gen)
        # The per-step "which transfers currently fit" scan, vectorized:
        # pending transfers live in fixed (shuffled) positions with an
        # alive mask, so the ready positions come from one masked
        # comparison of free space against object sizes — in the same
        # order the scalar list scan produced, keeping the draw sequence
        # (and therefore the schedule) identical per seed.
        t_target = np.fromiter(
            (t for t, _ in transfers), dtype=np.intp, count=len(transfers)
        )
        t_obj = np.fromiter(
            (k for _, k in transfers), dtype=np.intp, count=len(transfers)
        )
        t_size = instance.sizes[t_obj]
        alive = np.ones(len(transfers), dtype=bool)
        n_alive = len(transfers)
        free = state.free_array()
        while deletions or n_alive:
            ready = np.flatnonzero(
                alive & (free[t_target] + CAPACITY_EPS >= t_size)
            )
            total = len(deletions) + ready.size
            assert total, (
                "AR is stuck: transfers pending without space and no "
                "deletion left; X_new would violate a capacity"
            )
            draw = int(gen.integers(total))
            if draw < len(deletions):
                server, obj = deletions.pop(draw)
                action = Delete(server, obj)
                state.apply(action)
                schedule.append(action)
            else:
                pos = int(ready[draw - len(deletions)])
                alive[pos] = False
                n_alive -= 1
                append_transfer_from_nearest(
                    schedule, state, int(t_target[pos]), int(t_obj[pos])
                )
        return schedule
