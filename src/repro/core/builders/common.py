"""Shared bookkeeping for the schedule builders.

Builders drive a single :class:`~repro.model.state.SystemState` forward
and never replay their own prefix: every decision (nearest source, free
space, eviction benefit) is answered incrementally by the state. The
helpers here maintain the two work lists all builders share — pending
transfers (one per outstanding cell) and pending deletions (one per
superfluous cell) — plus the benefit-ordered eviction used by the greedy
builders (GOLCF, GMC) to make room at a transfer target.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.model.actions import Delete
from repro.model.instance import RtspInstance
from repro.model.schedule import Schedule
from repro.model.state import CAPACITY_EPS, SystemState

from repro.core.base import golcf_benefit, shuffled_pairs


def pending_transfer_map(
    instance: RtspInstance, gen
) -> Tuple[Dict[int, List[int]], Dict[int, Set[int]]]:
    """Outstanding cells as ``obj -> [targets]`` plus a set-valued mirror.

    The list order is shuffled once so that every tie-break taken by a
    first-minimum scan is seed-dependent; the set mirror feeds
    :func:`repro.core.base.golcf_benefit` (which expects ``obj -> set``)
    and must be kept in sync by the caller as transfers complete.
    """
    targets: Dict[int, List[int]] = {}
    for i, k in shuffled_pairs(instance.outstanding(), gen):
        targets.setdefault(k, []).append(i)
    waiting = {k: set(v) for k, v in targets.items()}
    return targets, waiting


def pending_deletion_map(instance: RtspInstance, gen) -> Dict[int, List[int]]:
    """Superfluous cells as ``server -> [objects]``, shuffled per server."""
    dels: Dict[int, List[int]] = {}
    for i, k in shuffled_pairs(instance.superfluous(), gen):
        dels.setdefault(i, []).append(k)
    return dels


def has_space(state: SystemState, server: int, obj: int) -> bool:
    """Whether ``server`` can currently receive a copy of ``obj``."""
    return (
        state.free_space(server) + CAPACITY_EPS
        >= float(state.instance.sizes[obj])
    )


def evict_for(
    schedule: Schedule,
    state: SystemState,
    target: int,
    obj: int,
    deletions: Dict[int, List[int]],
    waiting: Dict[int, Set[int]],
) -> None:
    """Delete superfluous replicas at ``target`` until ``obj`` fits.

    Victims are chosen by lowest deletion benefit (paper eq. 4): the
    replica whose disappearance hurts the still-waiting targets least goes
    first. Ties fall to the earliest entry of the (pre-shuffled) per-server
    deletion list, so tie-breaking is seed-dependent but deterministic.

    A victim always exists while space is short: every replica held at
    ``target`` is either part of ``X_old ∩ X_new``, was delivered by an
    earlier transfer (both within the ``X_new`` row, which fits), or is a
    not-yet-deleted superfluous replica.
    """
    instance = state.instance
    candidates = deletions.get(target)
    while not has_space(state, target, obj):
        assert candidates, (
            f"no superfluous replica left at S_{target} while O_{obj} "
            "does not fit; X_new would violate its capacity"
        )
        best_pos, best_benefit = 0, None
        for pos, k in enumerate(candidates):
            benefit = golcf_benefit(instance, state, target, k, waiting)
            if best_benefit is None or benefit < best_benefit:
                best_pos, best_benefit = pos, benefit
        victim = candidates.pop(best_pos)
        action = Delete(target, victim)
        state.apply(action)
        schedule.append(action)


def flush_deletions(
    schedule: Schedule,
    state: SystemState,
    deletions: Dict[int, List[int]],
    gen,
) -> None:
    """Append every still-pending deletion, in a shuffled global order."""
    leftovers = [
        (server, obj) for server, objs in deletions.items() for obj in objs
    ]
    gen.shuffle(leftovers)
    for server, obj in leftovers:
        action = Delete(server, obj)
        state.apply(action)
        schedule.append(action)
    deletions.clear()
