"""Shared bookkeeping for the schedule builders.

Builders drive a single :class:`~repro.model.state.SystemState` forward
and never replay their own prefix: every decision (nearest source, free
space, eviction benefit) is answered incrementally by the state. The
helpers here maintain the two work lists all builders share — pending
transfers (one per outstanding cell) and pending deletions (one per
superfluous cell) — plus the benefit-ordered eviction used by the greedy
builders (GOLCF, GMC) to make room at a transfer target.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.model.actions import Delete
from repro.model.instance import RtspInstance
from repro.model.schedule import Schedule
from repro.model.state import CAPACITY_EPS, SystemState
from repro.obs.context import current_metrics

from repro.core.base import golcf_benefit, shuffled_pairs


def pending_transfer_map(
    instance: RtspInstance, gen
) -> Tuple[Dict[int, List[int]], Dict[int, Set[int]]]:
    """Outstanding cells as ``obj -> [targets]`` plus a set-valued mirror.

    The list order is shuffled once so that every tie-break taken by a
    first-minimum scan is seed-dependent; the set mirror feeds
    :func:`repro.core.base.golcf_benefit` (which expects ``obj -> set``)
    and must be kept in sync by the caller as transfers complete.
    """
    targets: Dict[int, List[int]] = {}
    for i, k in shuffled_pairs(instance.outstanding(), gen):
        targets.setdefault(k, []).append(i)
    waiting = {k: set(v) for k, v in targets.items()}
    return targets, waiting


def pending_deletion_map(instance: RtspInstance, gen) -> Dict[int, List[int]]:
    """Superfluous cells as ``server -> [objects]``, shuffled per server."""
    dels: Dict[int, List[int]] = {}
    for i, k in shuffled_pairs(instance.superfluous(), gen):
        dels.setdefault(i, []).append(k)
    return dels


class PendingTransferSelector:
    """Incremental argmin over every pending transfer's current cost.

    GOLCF and GMC repeatedly need the globally cheapest pending transfer
    — ``size(O_k) * l_{i,N(i,k,X)}`` over all outstanding ``(i, k)`` —
    against the *current* state. The original scan recomputed O(pending)
    nearest queries per step; this selector keeps one flat cost array
    with a contiguous slice per object and refreshes only the slices of
    objects whose replicator set actually changed since the last query
    (the builder reports those through :meth:`mark_dirty`: the delivered
    transfer's object plus any eviction victims). The global choice is
    then a single first-minimum ``np.argmin`` over the flat array.

    Slice refreshes are adaptive, mirroring the nearest-source index: a
    scalar scan over the live holder set when the ``pending x holders``
    block is tiny (the common case at the paper's replica counts, where
    NumPy per-call overhead dominates), one masked gather + row-min when
    it is large.

    Tie-breaking is unchanged: the flat array is ordered by work-list
    (insertion) order of objects, then per-object pending order, and
    ``np.argmin`` returns the first minimum — exactly the element the
    scalar ``cost < best`` scan would have kept.

    Path-identity contract: the scalar and gather refreshes must write
    bit-identical costs so schedules never depend on which side of
    ``_SCALAR_BLOCK`` an instance lands on. Both compute
    ``size * min(row[dummy], row[j] for j in holders)`` — a single
    gathered minimum times one float64 multiply, no summation — so the
    values agree exactly as long as the cost matrix is NaN-free
    (enforced by :meth:`repro.model.instance.RtspInstance.create`; a NaN
    entry is skipped by the scalar ``<`` scan but *selected* by the
    gather's ``argmin``) and pending targets never hold their own
    object (guaranteed by construction: a target leaves the pending
    list before its replica is recorded, and eq. 4 evictions only ever
    remove superfluous replicas, never an ``X_new`` cell).
    ``tests/core/test_selector_paths.py`` pins both paths to the same
    instances and asserts byte-identical schedules.
    """

    #: Below this ``pending x candidates`` block size a Python scan beats
    #: the NumPy gather (per-call overhead ~10-20us vs ~0.1us/compare).
    _SCALAR_BLOCK = 128

    def __init__(
        self, state: SystemState, targets: Dict[int, List[int]]
    ) -> None:
        instance = state.instance
        self._index = state.index
        self._costs = instance.costs
        self._dummy = instance.dummy
        self._sizes = instance.sizes
        self._objs = list(targets)
        self._slot = {k: s for s, k in enumerate(self._objs)}
        self._pend = {k: list(v) for k, v in targets.items()}
        starts: List[int] = []
        total = 0
        for k in self._objs:
            starts.append(total)
            total += len(self._pend[k])
        self._starts = starts
        self._cost = np.full(total, np.inf)
        self._dirty = set(self._objs)
        registry = current_metrics()
        if registry is None:
            self._c_scanned = self._c_refreshes = self._c_queries = None
        else:
            self._c_scanned = registry.counter("builder.candidates_scanned")
            self._c_refreshes = registry.counter("builder.selector_refreshes")
            self._c_queries = registry.counter("builder.selector_queries")

    def _refresh_obj(self, obj: int) -> None:
        pend = self._pend[obj]
        base = self._starts[self._slot[obj]]
        size = float(self._sizes[obj])
        holders = self._index.holders(obj)
        if self._c_scanned is not None:
            self._c_refreshes.value += 1
            self._c_scanned.value += len(pend) * (len(holders) + 1)
        costs = self._costs
        dummy = self._dummy
        flat = self._cost
        if len(pend) * (len(holders) + 1) <= self._SCALAR_BLOCK:
            for off, t in enumerate(pend):
                row = costs[t]
                best = row[dummy]
                for j in holders:
                    c = row[j]
                    if c < best:
                        best = c
                flat[base + off] = size * best
        else:
            # Large block: read the index's cached per-server cost row
            # (``l_{i,N(i,k,X)}`` — the exact quantity this slice holds;
            # pending targets never hold ``obj``, so self-exclusion is
            # vacuous) instead of re-gathering the holder columns.
            pend_arr = np.asarray(pend, dtype=np.intp)
            units = self._index.nearest_cost_row(obj)[pend_arr]
            flat[base : base + len(pend)] = size * units

    def mark_dirty(self, obj: int) -> None:
        """Note that ``obj``'s replicator set changed; refreshed lazily."""
        if obj in self._pend:
            self._dirty.add(obj)

    def best(self) -> Tuple[int, int, int]:
        """``(obj, position, target)`` of the cheapest pending transfer."""
        if self._c_queries is not None:
            self._c_queries.value += 1
        if self._dirty:
            for obj in self._dirty:
                self._refresh_obj(obj)
            self._dirty.clear()
        idx = int(np.argmin(self._cost))
        slot = bisect_right(self._starts, idx) - 1
        obj = self._objs[slot]
        pos = idx - self._starts[slot]
        return obj, pos, self._pend[obj][pos]

    def pop_object(self, obj: int) -> None:
        """Remove ``obj`` entirely (GOLCF serves it whole)."""
        base = self._starts[self._slot[obj]]
        self._cost[base : base + len(self._pend[obj])] = np.inf
        del self._pend[obj]
        self._dirty.discard(obj)

    def pop_target(self, obj: int, pos: int) -> None:
        """Remove one pending target of ``obj`` (GMC serves singly)."""
        pend = self._pend[obj]
        pend.pop(pos)
        base = self._starts[self._slot[obj]]
        self._cost[base + len(pend)] = np.inf
        if pend:
            # Remaining entries shifted left; recompute at next query.
            self._dirty.add(obj)
        else:
            del self._pend[obj]
            self._dirty.discard(obj)

    @property
    def exhausted(self) -> bool:
        """Whether no pending transfer remains."""
        return not self._pend


class EvictionBenefitCache:
    """Memoized eq. 4 benefits, invalidated by observable state changes.

    ``B(target, k)`` depends only on ``k``'s replicator set, ``k``'s
    still-waiting target set, and the (immutable) cost matrix. The
    former is captured by the nearest-source index's per-object version
    counter; the latter only ever *shrinks* during a build, so its size
    uniquely identifies it along the trajectory. A cached value is
    therefore exact while both stamps match — no eviction ordering can
    change it — and recomputed (through
    :meth:`~repro.model.nearest.NearestSourceIndex.keep_benefit`)
    otherwise.

    Invalidation contract (holds for single-step *and* wave-batched
    callers such as the :mod:`repro.flat` builders, where several
    deliveries land between queries):

    1. every mutation of ``obj``'s replicator set must flow through the
       owning state (so ``index.versions[obj]`` bumps) *before* the next
       :meth:`get` — the trusted fast mutators preserve this;
    2. ``waiting[obj]`` must only ever shrink, and each removal must
       happen before the next :meth:`get`. Because the version counter
       is monotone, a batch of ``d`` deliveries advances the stamp by at
       least ``d`` on both components — a stamp can never repeat with
       different underlying sets, so stale hits are impossible no matter
       how many actions land between queries. Re-adding a target to
       ``waiting`` (which no builder does) would violate the contract:
       the set size could return to a previously-stamped value.

    ``tests/core/test_benefit_cache_contract.py`` exercises both the
    batched-delivery recompute and the stamp-match fast path.
    """

    __slots__ = ("_index", "_waiting", "_store", "_c_hits", "_c_misses")

    def __init__(self, state: SystemState, waiting: Dict[int, Set[int]]) -> None:
        self._index = state.index
        self._waiting = waiting
        self._store: Dict[Tuple[int, int], Tuple[Tuple[int, int], float]] = {}
        registry = current_metrics()
        if registry is None:
            self._c_hits = self._c_misses = None
        else:
            self._c_hits = registry.counter("builder.benefit_cache_hits")
            self._c_misses = registry.counter("builder.benefit_cache_misses")

    def get(self, target: int, obj: int) -> float:
        pending = self._waiting.get(obj)
        if not pending:
            return 0.0
        key = (target, obj)
        stamp = (self._index.versions[obj], len(pending))
        hit = self._store.get(key)
        if hit is not None and hit[0] == stamp:
            if self._c_hits is not None:
                self._c_hits.value += 1
            return hit[1]
        if self._c_misses is not None:
            self._c_misses.value += 1
        value = self._index.keep_benefit(target, obj, pending)
        self._store[key] = (stamp, value)
        return value


def has_space(state: SystemState, server: int, obj: int) -> bool:
    """Whether ``server`` can currently receive a copy of ``obj``."""
    return (
        state.free_space(server) + CAPACITY_EPS
        >= float(state.instance.sizes[obj])
    )


def evict_for(
    schedule: Schedule,
    state: SystemState,
    target: int,
    obj: int,
    deletions: Dict[int, List[int]],
    waiting: Dict[int, Set[int]],
    benefit_cache: Optional[EvictionBenefitCache] = None,
) -> List[int]:
    """Delete superfluous replicas at ``target`` until ``obj`` fits.

    Victims are chosen by lowest deletion benefit (paper eq. 4): the
    replica whose disappearance hurts the still-waiting targets least goes
    first. Ties fall to the earliest entry of the (pre-shuffled) per-server
    deletion list, so tie-breaking is seed-dependent but deterministic.
    Returns the evicted objects so callers can invalidate derived caches
    (:meth:`PendingTransferSelector.mark_dirty`).

    A victim always exists while space is short: every replica held at
    ``target`` is either part of ``X_old ∩ X_new``, was delivered by an
    earlier transfer (both within the ``X_new`` row, which fits), or is a
    not-yet-deleted superfluous replica.
    """
    instance = state.instance
    candidates = deletions.get(target)
    victims: List[int] = []
    index = state.index
    free = state.free_array()  # live view; tracks the deletions below
    size = float(instance.sizes[obj])
    benefits: List[float] = []
    while free[target] + CAPACITY_EPS < size:
        assert candidates, (
            f"no superfluous replica left at S_{target} while O_{obj} "
            "does not fit; X_new would violate its capacity"
        )
        if not victims:
            # Inlined golcf_benefit: eq. 4 against the still-waiting
            # sets. Computed once per call — deleting a victim at
            # ``target`` changes neither the other candidates' replicator
            # sets nor any waiting set, so the remaining benefits are
            # unchanged between the evictions of one call.
            if benefit_cache is not None:
                benefits = [
                    benefit_cache.get(target, k) for k in candidates
                ]
            else:
                benefits = [
                    index.keep_benefit(target, k, waiting.get(k) or ())
                    for k in candidates
                ]
        best_pos, best_benefit = 0, None
        for pos, benefit in enumerate(benefits):
            if best_benefit is None or benefit < best_benefit:
                best_pos, best_benefit = pos, benefit
        victim = candidates.pop(best_pos)
        benefits.pop(best_pos)
        action = Delete(target, victim)
        state.apply(action)
        schedule.append(action)
        victims.append(victim)
    if victims:
        registry = current_metrics()
        if registry is not None:
            registry.counter("builder.evictions").inc(len(victims))
    return victims


def flush_deletions(
    schedule: Schedule,
    state: SystemState,
    deletions: Dict[int, List[int]],
    gen,
) -> None:
    """Append every still-pending deletion, in a shuffled global order."""
    leftovers = [
        (server, obj) for server, objs in deletions.items() for obj in objs
    ]
    gen.shuffle(leftovers)
    for server, obj in leftovers:
        action = Delete(server, obj)
        state.apply(action)
        schedule.append(action)
    deletions.clear()
