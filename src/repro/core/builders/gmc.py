"""GMC — Global Minimum Cost First (extension; not in the paper).

An ablation of GOLCF's object-at-a-time rule: GMC drops the contiguity
constraint and, at every step, performs the globally cheapest pending
transfer — over *all* objects — given the current state (size times
nearest-replicator cost). Everything else matches GOLCF: room at the
chosen target is made by evicting superfluous replicas in increasing
benefit order (paper eq. 4), and untouched superfluous replicas are
flushed in random order at the end.

Because eviction only ever happens at the transfer's own target, the
chosen transfer's cost cannot change between selection and execution,
and other pending transfers can only get more expensive (a deletion never
adds a source) — so each executed transfer is provably the cheapest
pending one at its position in the schedule.
"""

from __future__ import annotations

from repro.core.base import (
    ScheduleBuilder,
    append_transfer_from_nearest,
    register_builder,
)
from repro.core.builders.common import (
    EvictionBenefitCache,
    PendingTransferSelector,
    evict_for,
    flush_deletions,
    pending_deletion_map,
    pending_transfer_map,
)
from repro.model.instance import RtspInstance
from repro.model.schedule import Schedule
from repro.model.state import SystemState
from repro.util.rng import ensure_rng


@register_builder
class GlobalMinimumCostFirst(ScheduleBuilder):
    """Globally cheapest pending transfer each step (GOLCF ablation)."""

    name = "GMC"

    def build(self, instance: RtspInstance, rng=None) -> Schedule:
        # Lazy import: repro.flat builds on repro.core, not vice versa.
        from repro.flat import flat_build, use_flat

        if use_flat(instance):
            return flat_build(self.name, instance, rng=rng)
        gen = ensure_rng(rng)
        state = SystemState(instance)
        schedule = Schedule()
        targets, waiting = pending_transfer_map(instance, gen)
        deletions = pending_deletion_map(instance, gen)
        selector = PendingTransferSelector(state, targets)
        benefits = EvictionBenefitCache(state, waiting)
        while not selector.exhausted:
            best_obj, best_pos, target = selector.best()
            selector.pop_target(best_obj, best_pos)
            victims = evict_for(
                schedule,
                state,
                target,
                best_obj,
                deletions,
                waiting,
                benefit_cache=benefits,
            )
            for victim in victims:
                selector.mark_dirty(victim)
            append_transfer_from_nearest(schedule, state, target, best_obj)
            # The delivered copy is a new source for the object's
            # remaining pending targets.
            selector.mark_dirty(best_obj)
            waiting[best_obj].discard(target)
        flush_deletions(schedule, state, deletions, gen)
        return schedule
