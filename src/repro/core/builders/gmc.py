"""GMC — Global Minimum Cost First (extension; not in the paper).

An ablation of GOLCF's object-at-a-time rule: GMC drops the contiguity
constraint and, at every step, performs the globally cheapest pending
transfer — over *all* objects — given the current state (size times
nearest-replicator cost). Everything else matches GOLCF: room at the
chosen target is made by evicting superfluous replicas in increasing
benefit order (paper eq. 4), and untouched superfluous replicas are
flushed in random order at the end.

Because eviction only ever happens at the transfer's own target, the
chosen transfer's cost cannot change between selection and execution,
and other pending transfers can only get more expensive (a deletion never
adds a source) — so each executed transfer is provably the cheapest
pending one at its position in the schedule.
"""

from __future__ import annotations

from repro.core.base import (
    ScheduleBuilder,
    append_transfer_from_nearest,
    register_builder,
)
from repro.core.builders.common import (
    evict_for,
    flush_deletions,
    pending_deletion_map,
    pending_transfer_map,
)
from repro.model.instance import RtspInstance
from repro.model.schedule import Schedule
from repro.model.state import SystemState
from repro.util.rng import ensure_rng


@register_builder
class GlobalMinimumCostFirst(ScheduleBuilder):
    """Globally cheapest pending transfer each step (GOLCF ablation)."""

    name = "GMC"

    def build(self, instance: RtspInstance, rng=None) -> Schedule:
        gen = ensure_rng(rng)
        state = SystemState(instance)
        schedule = Schedule()
        targets, waiting = pending_transfer_map(instance, gen)
        deletions = pending_deletion_map(instance, gen)
        sizes = instance.sizes
        remaining = sum(len(pend) for pend in targets.values())
        while remaining:
            best_obj, best_pos, best_cost = -1, 0, float("inf")
            for obj, pend in targets.items():
                size = float(sizes[obj])
                for pos, target in enumerate(pend):
                    cost = size * state.nearest_cost(target, obj)
                    if cost < best_cost:
                        best_obj, best_pos, best_cost = obj, pos, cost
            pend = targets[best_obj]
            target = pend.pop(best_pos)
            if not pend:
                del targets[best_obj]
            evict_for(schedule, state, target, best_obj, deletions, waiting)
            append_transfer_from_nearest(schedule, state, target, best_obj)
            waiting[best_obj].discard(target)
            remaining -= 1
        flush_deletions(schedule, state, deletions, gen)
        return schedule
