"""GOLCF — Greedy Object Lowest Cost First (paper §4.2).

The paper's cost-aware builder serves objects one at a time. The next
object is the owner of the globally cheapest pending transfer (size times
nearest-replicator cost, evaluated against the *current* state); once an
object is selected, all of its outstanding targets are served before
moving on, each step picking the target whose nearest source is cheapest
at that moment. Serving an object contiguously is the point: the first
copies delivered immediately become nearby sources for the remaining
targets of the same object.

Deletions are interleaved on demand. When the chosen target lacks room,
superfluous replicas at that target are evicted in increasing order of the
deletion benefit ``B_ik`` (paper eq. 4) — the replica whose loss hurts
still-waiting targets least goes first. Superfluous replicas nobody
needed to evict are flushed, in random order, after the last transfer.

All tie-breaks (object selection, target selection, eviction victim) fall
to the first minimum of a per-seed shuffled work list, so runs are
deterministic per seed and vary across seeds.
"""

from __future__ import annotations

from repro.core.base import (
    ScheduleBuilder,
    append_transfer_from_nearest,
    register_builder,
)
from repro.core.builders.common import (
    EvictionBenefitCache,
    PendingTransferSelector,
    evict_for,
    flush_deletions,
    pending_deletion_map,
    pending_transfer_map,
)
from repro.model.instance import RtspInstance
from repro.model.schedule import Schedule
from repro.model.state import SystemState
from repro.util.rng import ensure_rng


@register_builder
class GreedyObjectLowestCostFirst(ScheduleBuilder):
    """Cheapest object first, served whole; benefit-ordered evictions."""

    name = "GOLCF"

    def build(self, instance: RtspInstance, rng=None) -> Schedule:
        # Lazy import: repro.flat builds on repro.core, not vice versa.
        from repro.flat import flat_build, use_flat

        if use_flat(instance):
            return flat_build(self.name, instance, rng=rng)
        gen = ensure_rng(rng)
        state = SystemState(instance)
        schedule = Schedule()
        targets, waiting = pending_transfer_map(instance, gen)
        deletions = pending_deletion_map(instance, gen)
        selector = PendingTransferSelector(state, targets)
        benefits = EvictionBenefitCache(state, waiting)
        while not selector.exhausted:
            best_obj, _, _ = selector.best()
            pend = targets.pop(best_obj)
            selector.pop_object(best_obj)
            while pend:
                # Cheapest target of the chosen object at this moment.
                best_pos, best_unit = 0, None
                for pos, t in enumerate(pend):
                    unit = state.nearest_cost(t, best_obj)
                    if best_unit is None or unit < best_unit:
                        best_pos, best_unit = pos, unit
                target = pend.pop(best_pos)
                victims = evict_for(
                    schedule,
                    state,
                    target,
                    best_obj,
                    deletions,
                    waiting,
                    benefit_cache=benefits,
                )
                for victim in victims:
                    selector.mark_dirty(victim)
                append_transfer_from_nearest(schedule, state, target, best_obj)
                waiting[best_obj].discard(target)
        flush_deletions(schedule, state, deletions, gen)
        return schedule
