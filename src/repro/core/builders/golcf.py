"""GOLCF — Greedy Object Lowest Cost First (paper §4.2).

The paper's cost-aware builder serves objects one at a time. The next
object is the owner of the globally cheapest pending transfer (size times
nearest-replicator cost, evaluated against the *current* state); once an
object is selected, all of its outstanding targets are served before
moving on, each step picking the target whose nearest source is cheapest
at that moment. Serving an object contiguously is the point: the first
copies delivered immediately become nearby sources for the remaining
targets of the same object.

Deletions are interleaved on demand. When the chosen target lacks room,
superfluous replicas at that target are evicted in increasing order of the
deletion benefit ``B_ik`` (paper eq. 4) — the replica whose loss hurts
still-waiting targets least goes first. Superfluous replicas nobody
needed to evict are flushed, in random order, after the last transfer.

All tie-breaks (object selection, target selection, eviction victim) fall
to the first minimum of a per-seed shuffled work list, so runs are
deterministic per seed and vary across seeds.
"""

from __future__ import annotations

from repro.core.base import (
    ScheduleBuilder,
    append_transfer_from_nearest,
    register_builder,
)
from repro.core.builders.common import (
    evict_for,
    flush_deletions,
    pending_deletion_map,
    pending_transfer_map,
)
from repro.model.instance import RtspInstance
from repro.model.schedule import Schedule
from repro.model.state import SystemState
from repro.util.rng import ensure_rng


@register_builder
class GreedyObjectLowestCostFirst(ScheduleBuilder):
    """Cheapest object first, served whole; benefit-ordered evictions."""

    name = "GOLCF"

    def build(self, instance: RtspInstance, rng=None) -> Schedule:
        gen = ensure_rng(rng)
        state = SystemState(instance)
        schedule = Schedule()
        targets, waiting = pending_transfer_map(instance, gen)
        deletions = pending_deletion_map(instance, gen)
        sizes = instance.sizes
        while targets:
            best_obj, best_cost = -1, float("inf")
            for obj, pend in targets.items():
                size = float(sizes[obj])
                for target in pend:
                    cost = size * state.nearest_cost(target, obj)
                    if cost < best_cost:
                        best_obj, best_cost = obj, cost
            pend = targets.pop(best_obj)
            while pend:
                best_pos, best_unit = 0, float("inf")
                for pos, target in enumerate(pend):
                    unit = state.nearest_cost(target, best_obj)
                    if unit < best_unit:
                        best_pos, best_unit = pos, unit
                target = pend.pop(best_pos)
                evict_for(
                    schedule, state, target, best_obj, deletions, waiting
                )
                append_transfer_from_nearest(schedule, state, target, best_obj)
                waiting[best_obj].discard(target)
        flush_deletions(schedule, state, deletions, gen)
        return schedule
