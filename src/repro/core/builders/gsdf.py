"""GSDF — Grouped Server Deletions First (paper §4.1).

RDF's global deletion phase destroys sources long before anyone needs the
space. GSDF localises the damage: servers are visited one at a time (in
random order) and each visit is a contiguous group — first every
superfluous deletion at that server, then every transfer *into* it, each
from the then-nearest source. Servers visited later still hold their full
``X_old`` rows and therefore remain available as sources; only the
already-visited prefix has been reshaped to ``X_new``. Within a group the
deletions always free enough room for the group's transfers, because the
server's post-group load is exactly its ``X_new`` row.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import (
    ScheduleBuilder,
    append_deletions,
    append_transfer_from_nearest,
    register_builder,
)
from repro.model.instance import RtspInstance
from repro.model.schedule import Schedule
from repro.model.state import SystemState
from repro.util.rng import ensure_rng


@register_builder
class GroupedServerDeletionsFirst(ScheduleBuilder):
    """Per-server groups: delete the server's superfluous replicas, then
    fetch its outstanding ones, then move to the next server."""

    name = "GSDF"

    def build(self, instance: RtspInstance, rng=None) -> Schedule:
        # Lazy import: repro.flat builds on repro.core, not vice versa.
        from repro.flat import flat_build, use_flat

        if use_flat(instance):
            return flat_build(self.name, instance, rng=rng)
        gen = ensure_rng(rng)
        state = SystemState(instance)
        schedule = Schedule()
        superfluous = instance.superfluous()
        outstanding = instance.outstanding()
        order = list(range(instance.num_servers))
        gen.shuffle(order)
        for server in order:
            deletions = [
                (server, int(k)) for k in np.flatnonzero(superfluous[server])
            ]
            gen.shuffle(deletions)
            append_deletions(schedule, state, deletions)
            incoming = [int(k) for k in np.flatnonzero(outstanding[server])]
            gen.shuffle(incoming)
            for obj in incoming:
                append_transfer_from_nearest(schedule, state, server, obj)
        return schedule
