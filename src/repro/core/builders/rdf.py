"""RDF — Random Deletions First (paper §4.1).

The simplest dummy-tolerant builder: perform *every* superfluous deletion
up front in random order, then satisfy each outstanding replica with a
transfer from the then-nearest source. Deleting everything first
guarantees storage can never block a transfer (each server's remaining
load is a subset of its ``X_new`` row), so the only failure mode left is
a destroyed source — in which case the transfer falls back to the dummy
server. RDF is maximally deadlock-proof and maximally wasteful: at zero
replica overlap it destroys every old source before any copy is made,
which is exactly the pathology H1/H2 were designed to repair.
"""

from __future__ import annotations

from repro.core.base import (
    ScheduleBuilder,
    append_deletions,
    append_transfer_from_nearest,
    register_builder,
    shuffled_pairs,
)
from repro.model.instance import RtspInstance
from repro.model.schedule import Schedule
from repro.model.state import SystemState
from repro.util.rng import ensure_rng


@register_builder
class RandomDeletionsFirst(ScheduleBuilder):
    """All deletions (random order), then all transfers (random order)."""

    name = "RDF"

    def build(self, instance: RtspInstance, rng=None) -> Schedule:
        # Lazy import: repro.flat builds on repro.core, not vice versa.
        from repro.flat import flat_build, use_flat

        if use_flat(instance):
            return flat_build(self.name, instance, rng=rng)
        gen = ensure_rng(rng)
        state = SystemState(instance)
        schedule = Schedule()
        append_deletions(
            schedule, state, shuffled_pairs(instance.superfluous(), gen)
        )
        for target, obj in shuffled_pairs(instance.outstanding(), gen):
            append_transfer_from_nearest(schedule, state, target, obj)
        return schedule
