"""Exact RTSP solver (branch and bound) for small instances.

RTSP-decision is NP-complete (paper §3.4), so exhaustive search is only
viable at toy scale — which is exactly what the test suite needs: a ground
truth to sandwich the heuristics. The solver searches over action
sequences with three standard reductions:

1. **Deletion canonicalisation** — any valid schedule can be rewritten,
   without changing its cost, so that each deletion happens either
   immediately before a transfer *to the same server* (to free space) or
   at the very end. Postponing a deletion never invalidates a transfer
   (it only keeps a source alive longer and space is per-server), so the
   search branches on deletions only at servers that still await incoming
   transfers, and flushes all remaining superfluous deletions when every
   outstanding replica is in place.
2. **Dominance memoisation** — the search state is fully captured by the
   placement matrix; a state revisited at equal or higher cost is pruned.
3. **Admissible lower bound** — every still-missing replica ``(i, k)``
   costs at least ``s(O_k) * min_{j != i} l_ij`` regardless of source.

Staging transfers (copies placed on servers outside ``X_new``, the
paper's "arbitrary intermediate nodes") are explored when
``allow_staging=True`` (default), bounded by ``max_nodes``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.model.actions import Action, Delete, Transfer
from repro.model.instance import RtspInstance
from repro.model.schedule import Schedule
from repro.model.state import SystemState


@dataclass
class ExactResult:
    """Outcome of an exact search.

    ``complete`` is True when the search space was exhausted within the
    node budget, i.e. ``cost`` is the proven optimum.
    """

    schedule: Schedule
    cost: float
    nodes: int
    complete: bool


class ExactSolver:
    """Branch-and-bound search for the minimum-cost valid schedule.

    Parameters
    ----------
    allow_staging:
        Explore transfers onto servers outside ``X_new`` (temporary
        replicas later deleted). Required for instances where relaying
        through a third server is optimal; increases the search space.
    max_nodes:
        Node expansion budget. When exceeded, the best schedule found so
        far is returned with ``complete=False``.
    """

    def __init__(self, allow_staging: bool = True, max_nodes: int = 2_000_000):
        self.allow_staging = allow_staging
        self.max_nodes = max_nodes

    # ------------------------------------------------------------------
    def solve(
        self,
        instance: RtspInstance,
        initial: Optional[Schedule] = None,
        cost_cap: Optional[float] = None,
    ) -> ExactResult:
        """Search for the optimum; ``initial`` seeds the incumbent bound.

        ``cost_cap`` prunes every branch whose cost would reach the cap,
        turning the search into the paper's *RTSP-decision*: a complete
        run with ``cost < cost_cap`` found answers "yes", a complete run
        finding nothing answers "no".
        """
        self._instance = instance
        self._memo: Dict[bytes, float] = {}
        self._nodes = 0
        self._budget_exceeded = False
        # Per-target floor used by the admissible bound.
        costs = np.array(instance.costs[: instance.num_servers], dtype=np.float64)
        masked = costs[:, : instance.num_servers + 1].copy()
        for i in range(instance.num_servers):
            masked[i, i] = np.inf
        self._min_row = masked.min(axis=1)

        self._best_cost = np.inf if cost_cap is None else float(cost_cap)
        self._best_actions: Optional[List[Action]] = None
        if initial is not None:
            report = initial.validate(instance)
            if report.ok and report.cost < self._best_cost:
                self._best_cost = report.cost
                self._best_actions = initial.actions()

        state = SystemState(instance)
        self._dfs(state, 0.0, [])
        if self._best_actions is None:
            # Without a cost cap this only happens when the node budget
            # died before any leaf (the dummy server guarantees a
            # solution exists); with a cap, an exhausted search is a
            # certified "no schedule under the cap".
            return ExactResult(
                Schedule(), np.inf, self._nodes, not self._budget_exceeded
            )
        return ExactResult(
            Schedule(self._best_actions),
            float(self._best_cost),
            self._nodes,
            not self._budget_exceeded,
        )

    # ------------------------------------------------------------------
    def _pending(self, state: SystemState) -> List[Tuple[int, int]]:
        inst = self._instance
        out = []
        for i in range(inst.num_servers):
            for k in range(inst.num_objects):
                if inst.x_new[i, k] and not state.holds(i, k):
                    out.append((i, k))
        return out

    def _lower_bound(self, pending: List[Tuple[int, int]]) -> float:
        sizes = self._instance.sizes
        return float(sum(sizes[k] * self._min_row[i] for i, k in pending))

    def _dfs(self, state: SystemState, cost: float, trail: List[Action]) -> None:
        if self._nodes >= self.max_nodes:
            self._budget_exceeded = True
            return
        self._nodes += 1
        inst = self._instance

        pending = self._pending(state)
        if cost + self._lower_bound(pending) >= self._best_cost:
            return
        if not pending:
            # Flush remaining non-X_new replicas (free) and record the leaf.
            closing: List[Action] = []
            placement = state.placement()
            for i in range(inst.num_servers):
                for k in range(inst.num_objects):
                    if placement[i, k] and not inst.x_new[i, k]:
                        closing.append(Delete(i, k))
            if cost < self._best_cost:
                self._best_cost = cost
                self._best_actions = list(trail) + closing
            return

        key = state.placement().tobytes()
        seen = self._memo.get(key)
        if seen is not None and seen <= cost:
            return
        self._memo[key] = cost

        for action, action_cost in self._candidates(state, pending):
            state.apply(action)
            trail.append(action)
            self._dfs(state, cost + action_cost, trail)
            trail.pop()
            state.undo(action)

    # ------------------------------------------------------------------
    def _candidates(
        self, state: SystemState, pending: List[Tuple[int, int]]
    ) -> List[Tuple[Action, float]]:
        """Candidate actions at a node, deletions first, cheap transfers next."""
        inst = self._instance
        dummy = inst.dummy
        pending_servers = {i for i, _ in pending}
        pending_objs = {k for _, k in pending}
        out: List[Tuple[Action, float]] = []

        # Deletions: only at servers still awaiting an incoming replica
        # (deletion canonicalisation), only of replicas outside X_new.
        placement = state.placement()
        for i in pending_servers:
            for k in range(inst.num_objects):
                if placement[i, k] and not inst.x_new[i, k]:
                    out.append((Delete(i, k), 0.0))

        transfers: List[Tuple[Action, float]] = []
        for i, k in pending:
            sources = set(state.replicators(k))
            sources.discard(i)
            sources.add(dummy)
            for j in sources:
                t = Transfer(i, k, j)
                if state.is_valid(t):
                    transfers.append((t, inst.transfer_cost(i, k, j)))

        if self.allow_staging:
            for k in pending_objs:
                sources = set(state.replicators(k))
                sources.add(dummy)
                for i in range(inst.num_servers):
                    if inst.x_new[i, k] or state.holds(i, k):
                        continue
                    for j in sources:
                        if j == i:
                            continue
                        t = Transfer(i, k, j)
                        if state.is_valid(t):
                            transfers.append((t, inst.transfer_cost(i, k, j)))
                # Staged copies must also be deletable to restore X_new.
                for i in range(inst.num_servers):
                    if placement[i, k] and not inst.x_new[i, k] and i not in pending_servers:
                        out.append((Delete(i, k), 0.0))

        transfers.sort(key=lambda pair: pair[1])
        out.extend(transfers)
        return out


def solve_exact(
    instance: RtspInstance,
    initial: Optional[Schedule] = None,
    allow_staging: bool = True,
    max_nodes: int = 2_000_000,
) -> ExactResult:
    """Convenience wrapper around :class:`ExactSolver`."""
    solver = ExactSolver(allow_staging=allow_staging, max_nodes=max_nodes)
    return solver.solve(instance, initial=initial)


def decide_rtsp(
    instance: RtspInstance,
    budget: float,
    allow_staging: bool = True,
    max_nodes: int = 2_000_000,
) -> Optional[bool]:
    """RTSP-decision (paper §3.4): does a valid schedule with
    implementation cost at most ``budget`` exist?

    Returns ``True``/``False`` when the search certifies the answer, or
    ``None`` when the node budget ran out before certification. Solving
    the decision problem is NP-complete, so expect exponential behaviour
    beyond toy sizes — the test suite pairs this with the Knapsack
    reduction to exercise the paper's hardness construction end to end.
    """
    # The cap prunes at >= cap, so nudge it just above the budget to
    # accept schedules that hit the budget exactly.
    cap = float(budget) + max(1e-9, abs(float(budget)) * 1e-12)
    solver = ExactSolver(allow_staging=allow_staging, max_nodes=max_nodes)
    result = solver.solve(instance, cost_cap=cap)
    if result.cost <= cap:
        return True
    if result.complete:
        return False
    return None
