"""Schedule optimizers (rewrite an existing valid schedule)."""

from repro.core.optimizers.h1 import H1MoveDummyTransfers
from repro.core.optimizers.h2 import H2CreateSuperfluousReplicas
from repro.core.optimizers.op1 import OP1ReorderTransfers
from repro.core.optimizers.nsr import NearestSourceRefinement

__all__ = [
    "H1MoveDummyTransfers",
    "H2CreateSuperfluousReplicas",
    "OP1ReorderTransfers",
    "NearestSourceRefinement",
]
