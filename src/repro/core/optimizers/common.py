"""Shared machinery for the schedule optimizers.

Every optimizer follows the same pattern: construct a candidate rewrite,
then *prove* it by replay before acceptance.

A crucial performance property makes the proof cheap: the replication
state trajectory depends only on each action's (server, object) effect —
never on transfer *sources*. All rewrites performed by H1/H2/OP1 permute
or inject actions inside a contiguous window and preserve the multiset of
per-cell effects, so the state at the window's end (and therefore the
validity of the untouched suffix) is unchanged. A candidate is valid iff
its *window* replays validly from the state at the window's start, which
turns an O(schedule) proof into an O(window) one.

:class:`ArrayState` is a slim replication state (placement + free-space
arrays, no per-object replicator sets) used for those window replays;
:func:`capture_states` snapshots it at chosen positions in one pass.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.model.actions import Action, Delete, Transfer
from repro.model.instance import RtspInstance
from repro.model.schedule import Schedule
from repro.model.state import CAPACITY_EPS


class ArrayState:
    """Lightweight replication state for fast window replays.

    Mirrors the action semantics of :class:`repro.model.state.SystemState`
    but keeps only the placement matrix and per-server free space, making
    ``copy`` a pair of numpy copies.
    """

    __slots__ = ("instance", "placement", "free")

    def __init__(
        self,
        instance: RtspInstance,
        placement: Optional[np.ndarray] = None,
        free: Optional[np.ndarray] = None,
    ) -> None:
        self.instance = instance
        if placement is None:
            self.placement = np.array(instance.x_old, dtype=np.int8, copy=True)
            self.free = instance.capacities - (
                self.placement.astype(np.float64) @ instance.sizes
            )
        else:
            self.placement = placement
            self.free = free

    def copy(self) -> "ArrayState":
        """Independent copy (two numpy copies; the instance is shared)."""
        return ArrayState(self.instance, self.placement.copy(), self.free.copy())

    # ------------------------------------------------------------------
    def holds(self, server: int, obj: int) -> bool:
        """Whether ``server`` replicates ``obj`` (dummy holds everything)."""
        if server == self.instance.dummy:
            return True
        return bool(self.placement[server, obj])

    def is_valid(self, action: Action) -> bool:
        """Whether ``action`` may be applied (same semantics as
        :meth:`repro.model.state.SystemState.is_valid`)."""
        if isinstance(action, Transfer):
            i, k, j = action.target, action.obj, action.source
            return (
                i != self.instance.dummy
                and i != j
                and self.holds(j, k)
                and not self.placement[i, k]
                and self.free[i] + CAPACITY_EPS >= self.instance.sizes[k]
            )
        if isinstance(action, Delete):
            i = action.server
            return i != self.instance.dummy and bool(self.placement[i, action.obj])
        return False

    def apply(self, action: Action) -> None:
        """Apply without validity checking (caller checked already)."""
        if isinstance(action, Transfer):
            i, k = action.target, action.obj
            self.placement[i, k] = 1
            self.free[i] -= self.instance.sizes[k]
        else:
            i, k = action.server, action.obj
            self.placement[i, k] = 0
            self.free[i] += self.instance.sizes[k]

    def try_apply(self, action: Action) -> bool:
        """Apply if valid; returns whether it was applied."""
        if not self.is_valid(action):
            return False
        self.apply(action)
        return True

    def nearest(self, target: int, obj: int, exclude: int = -1) -> int:
        """Cheapest current source of ``obj`` for ``target`` (dummy fallback).

        Adaptive like :class:`repro.model.nearest.NearestSourceIndex`: a
        scalar scan of the holder column for the typical handful of
        replicas, one masked gather + first-minimum argmin when the
        column is dense. Both branches implement the same contract as
        :meth:`repro.model.state.SystemState.nearest` — ties break to the
        lowest server index and a real holder beats an equal-cost dummy
        (``np.flatnonzero`` yields holders in ascending index order, so
        the first minimum is already the lowest-index tie-winner).
        """
        inst = self.instance
        holders = np.flatnonzero(self.placement[:, obj])
        if holders.size <= 16:
            row = inst.costs[target]
            best, best_cost = inst.dummy, row[inst.dummy]
            for j in holders:
                if j == target or j == exclude:
                    continue
                c = row[j]
                if c < best_cost or (c == best_cost and j < best):
                    best, best_cost = int(j), c
            return best
        holders = holders[(holders != target) & (holders != exclude)]
        if holders.size == 0:
            return inst.dummy
        costs = inst.costs[target, holders]
        pos = int(np.argmin(costs))
        if float(costs[pos]) <= float(inst.costs[target, inst.dummy]):
            return int(holders[pos])
        return inst.dummy


def capture_states(
    instance: RtspInstance,
    actions: Sequence[Action],
    positions: Iterable[int],
) -> Dict[int, ArrayState]:
    """Snapshot the state *before* each requested position, in one pass.

    Assumes ``actions`` is a valid prefix-executable sequence (optimizer
    inputs always are).
    """
    wanted = sorted(set(positions))
    out: Dict[int, ArrayState] = {}
    state = ArrayState(instance)
    cursor = 0
    for pos in wanted:
        while cursor < pos:
            state.apply(actions[cursor])
            cursor += 1
        out[pos] = state.copy()
    return out


def window_valid(start_state: ArrayState, window: Sequence[Action]) -> bool:
    """Whether ``window`` replays validly from a copy of ``start_state``."""
    state = start_state.copy()
    for action in window:
        if not state.try_apply(action):
            return False
    return True


def window_replay_with_repairs(
    start_state: ArrayState,
    window: Sequence[Action],
    max_repairs: int = 64,
) -> Optional[List[Action]]:
    """Replay ``window``, re-pointing transfers whose source disappeared.

    Returns the (possibly repaired) window or ``None`` when unrepairable.
    Used by OP1 case (iii): hoisted deletions can strand transfers that
    sourced from the hoist's server; those are re-pointed to the nearest
    replicator at their position (possibly the dummy, at dummy price).
    """
    state = start_state.copy()
    out: List[Action] = []
    repairs = 0
    for action in window:
        if not state.is_valid(action):
            if (
                isinstance(action, Transfer)
                and repairs < max_repairs
                and not state.holds(action.source, action.obj)
                and not state.holds(action.target, action.obj)
            ):
                repaired = action.with_source(
                    state.nearest(action.target, action.obj)
                )
                if not state.is_valid(repaired):
                    return None
                action = repaired
                repairs += 1
            else:
                return None
        state.apply(action)
        out.append(action)
    return out


def actions_cost(instance: RtspInstance, actions: Iterable[Action]) -> float:
    """Implementation cost of an action sequence."""
    total = 0.0
    sizes, costs = instance.sizes, instance.costs
    for a in actions:
        if isinstance(a, Transfer):
            total += float(sizes[a.obj] * costs[a.target, a.source])
    return total


def count_dummies(instance: RtspInstance, actions: Iterable[Action]) -> int:
    """Number of dummy-sourced transfers in an action sequence."""
    dummy = instance.dummy
    return sum(
        1 for a in actions if isinstance(a, Transfer) and a.source == dummy
    )


# ----------------------------------------------------------------------
# schedule-structure queries shared by H1/H2
# ----------------------------------------------------------------------
def deletion_positions_before(
    actions: Sequence[Action], position: int, obj: int
) -> List[int]:
    """Positions ``< position`` holding a deletion of ``obj``, nearest first."""
    return [
        idx
        for idx in range(position - 1, -1, -1)
        if isinstance(actions[idx], Delete) and actions[idx].obj == obj
    ]


def server_deletions_between(
    actions: Sequence[Action], lo: int, hi: int, server: int
) -> List[int]:
    """Positions in ``(lo, hi)`` holding deletions at ``server``, in order."""
    return [
        idx
        for idx in range(lo + 1, hi)
        if isinstance(actions[idx], Delete) and actions[idx].server == server
    ]


def is_standalone_deletion(
    actions: Sequence[Action], window_start: int, del_pos: int
) -> bool:
    """Whether the deletion at ``del_pos`` can be hoisted to ``window_start``.

    Per paper H1 case (ii), a deletion ``D_ik'`` is *standalone* within the
    separating sub-schedule when no transfer between the hoist destination
    and the deletion either uses ``S_i`` as a source of ``O_k'`` (hoisting
    would destroy that source) or creates ``O_k'`` on ``S_i`` (the replica
    would not exist yet at the destination).
    """
    deletion = actions[del_pos]
    assert isinstance(deletion, Delete)
    for idx in range(window_start, del_pos):
        a = actions[idx]
        if isinstance(a, Transfer) and a.obj == deletion.obj:
            if a.source == deletion.server or a.target == deletion.server:
                return False
    return True


def blocking_transfer(
    actions: Sequence[Action], window_start: int, del_pos: int
) -> Optional[int]:
    """Last transfer in the window using the deletion's replica as source.

    This is the ``T_i''k'i`` of paper H1 case (iii): the transfer that
    re-homes the replica before it is deleted. Returns its position, or
    ``None`` when no such transfer exists.
    """
    deletion = actions[del_pos]
    assert isinstance(deletion, Delete)
    for idx in range(del_pos - 1, window_start - 1, -1):
        a = actions[idx]
        if (
            isinstance(a, Transfer)
            and a.obj == deletion.obj
            and a.source == deletion.server
        ):
            return idx
    return None
