"""H1 — move dummy transfers before deletions (paper §4.1).

H1 scans an existing schedule left to right; whenever it finds a dummy
transfer ``T_ikd`` it tries to move it back in time, to just before a
deletion ``D_jk`` of the same object, turning it into a proper transfer
``T_ikj``. Moving a transfer earlier can violate the target's storage
constraint, which H1 repairs in three escalating ways (paper cases i–iii):

(i)   nothing at the target happens in between — the plain move is valid;
(ii)  hoist *standalone* deletions of the target (deletions not fed by, or
      feeding, any transfer in the separating window) before the moved
      transfer to make room;
(iii) move a deletion *together with* the transfer that re-homes its
      replica; if that transfer's own target now lacks space, recursively
      treat it as a dummy transfer and restore it the same way, over an
      ever-shrinking window. Failing that, backtrack and leave the
      original dummy transfer in place.

Every candidate is proven by replaying its rewrite window (see
:mod:`repro.core.optimizers.common` for why window validity implies
whole-schedule validity), and every accepted rewrite converts exactly one
dummy transfer into a real one, so the optimizer terminates with a valid
schedule whose dummy count never increases.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from repro.core.base import ScheduleOptimizer, register_optimizer
from repro.core.optimizers.common import (
    ArrayState,
    blocking_transfer,
    capture_states,
    count_dummies,
    deletion_positions_before,
    is_standalone_deletion,
    server_deletions_between,
    window_valid,
)
from repro.model.actions import Action, Delete, Transfer
from repro.model.instance import RtspInstance
from repro.model.schedule import Schedule


@register_optimizer
class H1MoveDummyTransfers(ScheduleOptimizer):
    """Eliminate dummy transfers by moving them before deletions.

    Parameters
    ----------
    max_depth:
        Recursion budget for case (iii) (the paper's recursion terminates
        because the separating window shrinks; the budget is a safety rail).
    max_deletion_candidates:
        How many preceding deletions of the object to try as the move
        destination. The paper uses the nearest one only; trying a few
        more is a strict superset that can only remove more dummies.
    max_passes:
        Number of full left-to-right sweeps (a sweep that changes nothing
        ends the loop early).
    """

    name = "H1"

    def __init__(
        self,
        max_depth: int = 6,
        max_deletion_candidates: int = 4,
        max_passes: int = 4,
    ) -> None:
        self.max_depth = max_depth
        self.max_deletion_candidates = max_deletion_candidates
        self.max_passes = max_passes

    # ------------------------------------------------------------------
    def optimize(
        self, instance: RtspInstance, schedule: Schedule, rng=None
    ) -> Schedule:
        actions = schedule.actions()
        for _ in range(self.max_passes):
            if count_dummies(instance, actions) == 0:
                break
            actions, progressed = self._sweep(instance, actions)
            if not progressed:
                break
        return Schedule(actions)

    def _sweep(
        self, instance: RtspInstance, actions: List[Action]
    ) -> Tuple[List[Action], bool]:
        """One left-to-right pass attempting each dummy transfer once."""
        progressed = False
        attempted: Set[Tuple[int, int]] = set()
        dummy = instance.dummy
        while True:
            target_pos = None
            for idx, a in enumerate(actions):
                if (
                    isinstance(a, Transfer)
                    and a.source == dummy
                    and (a.target, a.obj) not in attempted
                ):
                    attempted.add((a.target, a.obj))
                    target_pos = idx
                    break
            if target_pos is None:
                return actions, progressed
            result = self._restore(instance, actions, target_pos, self.max_depth)
            if result is not None:
                actions = result
                progressed = True

    # ------------------------------------------------------------------
    def _restore(
        self,
        instance: RtspInstance,
        actions: List[Action],
        p: int,
        depth: int,
    ) -> Optional[List[Action]]:
        """Try to eliminate the dummy transfer at ``p``.

        Returns a complete rewritten action list whose dummy count is
        strictly lower than the input's, or ``None``.
        """
        t = actions[p]
        assert isinstance(t, Transfer)
        i, k = t.target, t.obj
        destinations = deletion_positions_before(actions, p, k)[
            : self.max_deletion_candidates
        ]
        if not destinations:
            return None
        states = capture_states(instance, actions, destinations)
        for q in destinations:
            deletion = actions[q]
            assert isinstance(deletion, Delete)
            j = deletion.server
            if j == i:
                continue
            restored = Transfer(i, k, j)
            state_q = states[q]
            # Case (i): plain move right before D_jk.
            window = [restored] + list(actions[q:p])
            if window_valid(state_q, window):
                return list(actions[:q]) + window + list(actions[p + 1 :])
            result = self._hoist_standalone(
                instance, actions, p, q, restored, state_q
            )
            if result is not None:
                return result
            result = self._move_pairs(
                instance, actions, p, q, restored, state_q, depth
            )
            if result is not None:
                return result
        return None

    # ------------------------------------------------------------------
    def _hoist_standalone(
        self,
        instance: RtspInstance,
        actions: List[Action],
        p: int,
        q: int,
        restored: Transfer,
        state_q: ArrayState,
    ) -> Optional[List[Action]]:
        """Case (ii): hoist standalone deletions of the target to make room.

        Standalone deletions are tried in schedule order, accumulating one
        more per attempt until capacity suffices (the replay decides).
        """
        i = restored.target
        dels = server_deletions_between(actions, q, p, i)
        standalone = [r for r in dels if is_standalone_deletion(actions, q, r)]
        chosen: List[int] = []
        for r in standalone:
            chosen.append(r)
            removed = set(chosen)
            window = (
                [actions[x] for x in chosen]
                + [restored]
                + [actions[x] for x in range(q, p) if x not in removed]
            )
            if window_valid(state_q, window):
                return list(actions[:q]) + window + list(actions[p + 1 :])
        return None

    def _move_pairs(
        self,
        instance: RtspInstance,
        actions: List[Action],
        p: int,
        q: int,
        restored: Transfer,
        state_q: ArrayState,
        depth: int,
    ) -> Optional[List[Action]]:
        """Case (iii): hoist a deletion together with its feeding transfer.

        For a deletion ``D_ik'`` whose replica is re-homed by a preceding
        transfer ``T_i''k'i``, move the pair before the restored transfer.
        If the pair move fails (typically capacity at ``S_i''``), convert
        the feeding transfer into a dummy transfer in place and recursively
        restore *it* — the separating window shrinks at each level, so the
        recursion terminates; on failure everything backtracks.
        """
        i = restored.target
        dels = server_deletions_between(actions, q, p, i)
        for r in dels:
            if is_standalone_deletion(actions, q, r):
                continue  # handled by case (ii)
            b = blocking_transfer(actions, q, r)
            if b is None:
                continue  # blocked by a creation, not a re-homing: unmovable
            feeding = actions[b]
            assert isinstance(feeding, Transfer)
            # Pair move: feeding transfer, then the deletion, then the
            # restored transfer, all placed before D_jk at q.
            removed = {b, r}
            window = [feeding, actions[r], restored] + [
                actions[x] for x in range(q, p) if x not in removed
            ]
            if window_valid(state_q, window):
                return list(actions[:q]) + window + list(actions[p + 1 :])
            if depth <= 0:
                continue
            # Recursive variant (paper's H''): hoist the deletion, restore
            # our transfer, and leave the feeding transfer in place as a
            # *dummy* transfer to be restored recursively.
            converted = Transfer(feeding.target, feeding.obj, instance.dummy)
            window2 = [actions[r], restored] + [
                (converted if x == b else actions[x])
                for x in range(q, p)
                if x != r
            ]
            if not window_valid(state_q, window2):
                continue
            staged = list(actions[:q]) + window2 + list(actions[p + 1 :])
            # Position of the converted transfer: two actions were inserted
            # at q and only positions after b changed (r > b always).
            pos = b + 2
            assert staged[pos] is converted
            deeper = self._restore(instance, staged, pos, depth - 1)
            if deeper is not None:
                return deeper
        return None
