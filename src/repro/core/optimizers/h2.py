"""H2 — create superfluous replicas to source dummy transfers (paper §4.1).

H2 complements H1: instead of moving the dummy transfer itself (which may
be impossible when the target's capacity is violated at any earlier
position), it *stages* a temporary copy of the object on a third server
``S_i`` that has free space:

* inject ``T_iki''`` immediately before the deletion ``D_i''k`` that
  destroyed the (last) source,
* re-point the dummy transfer ``T_i'kd`` to the staged copy (``T_i'ki``),
* delete the staged copy immediately afterwards (it is superfluous).

When no server has free space, H2 tries to *create* space by hoisting
deletions of superfluous replicas scheduled later, provided every object
keeps at least one replica where later transfers need one (enforced by the
window replay: destroying the source of a later transfer invalidates the
candidate and it is rejected).

Each accepted rewrite converts exactly one dummy transfer into a real one
(the injected staging transfer is always real — its source holds the
object by construction), so H2 monotonically decreases the dummy count.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.core.base import ScheduleOptimizer, register_optimizer
from repro.core.optimizers.common import (
    ArrayState,
    capture_states,
    count_dummies,
    deletion_positions_before,
    window_valid,
)
from repro.model.actions import Action, Delete, Transfer
from repro.model.instance import RtspInstance
from repro.model.schedule import Schedule


@register_optimizer
class H2CreateSuperfluousReplicas(ScheduleOptimizer):
    """Stage temporary replicas on spare storage to feed dummy transfers.

    Parameters
    ----------
    max_deletion_candidates:
        How many preceding deletions of the object to consider as staging
        points (nearest first; the paper uses the first one found).
    max_stage_candidates:
        How many staging servers to try per deletion point (cheapest
        relays first).
    max_space_makers:
        Cap on how many later deletions may be hoisted to free space for
        the staged replica on one server.
    max_passes:
        Number of full sweeps over the schedule.
    """

    name = "H2"

    def __init__(
        self,
        max_deletion_candidates: int = 4,
        max_stage_candidates: int = 16,
        max_space_makers: int = 4,
        max_passes: int = 4,
    ) -> None:
        self.max_deletion_candidates = max_deletion_candidates
        self.max_stage_candidates = max_stage_candidates
        self.max_space_makers = max_space_makers
        self.max_passes = max_passes

    # ------------------------------------------------------------------
    def optimize(
        self, instance: RtspInstance, schedule: Schedule, rng=None
    ) -> Schedule:
        actions = schedule.actions()
        for _ in range(self.max_passes):
            if count_dummies(instance, actions) == 0:
                break
            actions, progressed = self._sweep(instance, actions)
            if not progressed:
                break
        return Schedule(actions)

    def _sweep(
        self, instance: RtspInstance, actions: List[Action]
    ) -> Tuple[List[Action], bool]:
        progressed = False
        attempted: Set[Tuple[int, int]] = set()
        dummy = instance.dummy
        while True:
            target_pos = None
            for idx, a in enumerate(actions):
                if (
                    isinstance(a, Transfer)
                    and a.source == dummy
                    and (a.target, a.obj) not in attempted
                ):
                    attempted.add((a.target, a.obj))
                    target_pos = idx
                    break
            if target_pos is None:
                return actions, progressed
            result = self._restore(instance, actions, target_pos)
            if result is not None:
                actions = result
                progressed = True

    # ------------------------------------------------------------------
    def _restore(
        self, instance: RtspInstance, actions: List[Action], p: int
    ) -> Optional[List[Action]]:
        t = actions[p]
        assert isinstance(t, Transfer)
        i_prime, k = t.target, t.obj
        destinations = deletion_positions_before(actions, p, k)[
            : self.max_deletion_candidates
        ]
        if not destinations:
            return None
        states = capture_states(instance, actions, destinations)
        for q in destinations:
            deletion = actions[q]
            assert isinstance(deletion, Delete)
            source = deletion.server  # the paper's S_i''
            state_q = states[q]
            stages = self._stage_candidates(instance, i_prime, k, source, state_q)
            result = self._stage_on_free_server(
                instance, actions, p, q, i_prime, k, source, state_q, stages
            )
            if result is not None:
                return result
            result = self._stage_with_space_making(
                instance, actions, p, q, i_prime, k, source, state_q, stages
            )
            if result is not None:
                return result
        return None

    # ------------------------------------------------------------------
    def _stage_candidates(
        self,
        instance: RtspInstance,
        i_prime: int,
        k: int,
        source: int,
        state_q: ArrayState,
    ) -> List[int]:
        """Servers eligible to hold the staged replica, cheapest first.

        Eligibility: not the deleting server, not the dummy-transfer's own
        target (that case is H1's move), and not already a replicator at
        the staging point. Ordered by the added transfer cost
        ``l[i, source] + l[i_prime, i]`` so the cheapest staging relay is
        tried first (the paper picks any server with space; ordering by
        cost is a pure refinement).
        """
        costs = instance.costs
        eligible = [
            i
            for i in range(instance.num_servers)
            if i != source and i != i_prime and not state_q.holds(i, k)
        ]
        eligible.sort(key=lambda i: (costs[i, source] + costs[i_prime, i], i))
        return eligible[: self.max_stage_candidates]

    def _stage_on_free_server(
        self,
        instance: RtspInstance,
        actions: List[Action],
        p: int,
        q: int,
        i_prime: int,
        k: int,
        source: int,
        state_q: ArrayState,
        stages: List[int],
    ) -> Optional[List[Action]]:
        size = float(instance.sizes[k])
        for i in stages:
            if state_q.free[i] < size:
                continue
            window = (
                [Transfer(i, k, source)]
                + list(actions[q:p])
                + [Transfer(i_prime, k, i), Delete(i, k)]
            )
            if window_valid(state_q, window):
                return list(actions[:q]) + window + list(actions[p + 1 :])
        return None

    def _stage_with_space_making(
        self,
        instance: RtspInstance,
        actions: List[Action],
        p: int,
        q: int,
        i_prime: int,
        k: int,
        source: int,
        state_q: ArrayState,
        stages: List[int],
    ) -> Optional[List[Action]]:
        """Hoist later deletions at a candidate server to make room."""
        size = float(instance.sizes[k])
        sizes = instance.sizes
        n = len(actions)
        for i in stages:
            deficit = size - float(state_q.free[i])
            if deficit <= 0:
                continue  # already tried by _stage_on_free_server
            later_dels = [
                idx
                for idx in range(q + 1, n)
                if isinstance(actions[idx], Delete)
                and actions[idx].server == i
                and actions[idx].obj != k
            ][: self.max_space_makers]
            freed = 0.0
            chosen: List[int] = []
            for idx in later_dels:
                chosen.append(idx)
                freed += float(sizes[actions[idx].obj])
                if freed < deficit:
                    continue
                removed = set(chosen)
                end = max(p, max(chosen)) + 1
                window = (
                    [actions[x] for x in chosen]
                    + [Transfer(i, k, source)]
                    + [actions[x] for x in range(q, p) if x not in removed]
                    + [Transfer(i_prime, k, i), Delete(i, k)]
                    + [actions[x] for x in range(p + 1, end) if x not in removed]
                )
                if window_valid(state_q, window):
                    return list(actions[:q]) + window + list(actions[end:])
        return None
