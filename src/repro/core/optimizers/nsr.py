"""NSR — Nearest-Source Refinement (extension beyond the paper).

A single linear pass that re-points every transfer to the cheapest
source available *at its own position*. The builders already pick
nearest sources at build time, but the H1/H2/OP1 rewrites move actions
around, after which a transfer's recorded source may no longer be the
cheapest replicator at its (new) position. NSR closes those gaps:

* it never changes the action order, only transfer sources;
* each re-point strictly lowers that transfer's cost, so the schedule's
  total cost is non-increasing;
* sources are replicators in the current replay state, so validity is
  preserved by construction (the state trajectory does not depend on
  sources at all).

Cheap enough (one replay) to append to any pipeline, e.g.
``GOLCF+H1+H2+OP1+NSR``.
"""

from __future__ import annotations

from typing import List

from repro.core.base import ScheduleOptimizer, register_optimizer
from repro.core.optimizers.common import ArrayState
from repro.model.actions import Action, Transfer
from repro.model.instance import RtspInstance
from repro.model.schedule import Schedule


@register_optimizer
class NearestSourceRefinement(ScheduleOptimizer):
    """Re-point every transfer to its position's cheapest source."""

    name = "NSR"

    def optimize(
        self, instance: RtspInstance, schedule: Schedule, rng=None
    ) -> Schedule:
        state = ArrayState(instance)
        costs = instance.costs
        out: List[Action] = []
        for action in schedule:
            if isinstance(action, Transfer):
                best = state.nearest(action.target, action.obj)
                if costs[action.target, best] < costs[action.target, action.source]:
                    action = action.with_source(best)
            state.apply(action)
            out.append(action)
        return Schedule(out)
