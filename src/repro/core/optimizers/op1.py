"""OP1 — reorder same-object transfers to cut cost (paper §4.2, from [14]).

OP1 scans the schedule for a pair of transfers of the same object,
``T_i'kj' … T_ikj``, and considers executing the *later* one first: moved
to the earlier position, ``S_i`` obtains the object sooner and can serve
as a cheap source for every subsequent transfer of that object (including
``T_i'kj'`` itself), which are re-pointed to ``S_i`` whenever that is
cheaper. The move happens only when the total benefit outweighs the moved
transfer's own cost change plus any penalties from the validity repairs of
the paper's cases (ii)–(iv):

* deletions on ``S_i`` that enabled the moved transfer are hoisted with it
  (case iv),
* transfers that used ``S_i`` as a source for a replica deleted earlier by
  the hoist are re-pointed to their then-nearest replicator, paying a
  penalty (case iii),
* rewrites that would duplicate replicas or delete not-yet-created ones
  simply fail the window replay and are dropped (case ii).

Acceptance requires the rewrite window to replay validly *and* the total
cost delta to be strictly negative, so the optimizer monotonically
decreases cost and terminates. After each accepted change the scan
restarts from the beginning (the paper's policy); ``restart=False``
continues in place — an ablation measured in
``benchmarks/test_op1_restart.py``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.base import ScheduleOptimizer, register_optimizer
from repro.core.optimizers.common import (
    ArrayState,
    actions_cost,
    window_replay_with_repairs,
)
from repro.model.actions import Action, Delete, Transfer
from repro.model.instance import RtspInstance
from repro.model.schedule import Schedule

#: Minimum cost improvement for a rewrite to be accepted (guards float
#: round-off from producing endless micro-"improvements").
COST_EPS = 1e-9


@register_optimizer
class OP1ReorderTransfers(ScheduleOptimizer):
    """Cost-driven reordering of same-object transfer pairs.

    Parameters
    ----------
    restart:
        Restart the scan from position 0 after each accepted change (the
        paper's behaviour). ``False`` continues scanning in place, which
        is faster and usually within a percent of the same final cost.
    max_rounds:
        Upper bound on accepted changes (safety rail; cost strictly
        decreases each round so the bound is rarely reached in practice).
    """

    name = "OP1"

    def __init__(self, restart: bool = True, max_rounds: int = 100_000) -> None:
        self.restart = restart
        self.max_rounds = max_rounds

    # ------------------------------------------------------------------
    def optimize(
        self, instance: RtspInstance, schedule: Schedule, rng=None
    ) -> Schedule:
        actions = schedule.actions()
        rounds = 0
        while rounds < self.max_rounds:
            result = self._scan(instance, actions)
            if result is None:
                break
            actions = result
            rounds += 1
        return Schedule(actions)

    # ------------------------------------------------------------------
    def _scan(
        self, instance: RtspInstance, actions: List[Action]
    ) -> Optional[List[Action]]:
        """One scan; returns the improved action list or ``None``.

        With ``restart=True`` the scan returns at the first accepted
        change; with ``restart=False`` it applies changes in place and
        returns the accumulated result at the end of the pass (``None``
        if nothing improved).
        """
        transfer_pos = _transfer_positions_by_object(actions)
        cell_deleted = _deleted_cells(actions)
        state = ArrayState(instance)
        p1 = 0
        improved = False
        while p1 < len(actions):
            a1 = actions[p1]
            if isinstance(a1, Transfer):
                p2 = _next_after(transfer_pos.get(a1.obj, ()), p1)
                if p2 is not None:
                    cand = self._consider(
                        instance, actions, state, transfer_pos, cell_deleted, p1, p2
                    )
                    if cand is not None:
                        actions = cand
                        improved = True
                        if self.restart:
                            return actions
                        # Continue in place: the prefix [0, p1) — and thus
                        # `state` — is unchanged; re-examine from p1.
                        transfer_pos = _transfer_positions_by_object(actions)
                        cell_deleted = _deleted_cells(actions)
                        continue
            state.apply(a1)
            p1 += 1
        return actions if improved else None

    # ------------------------------------------------------------------
    def _consider(
        self,
        instance: RtspInstance,
        actions: List[Action],
        state: ArrayState,
        transfer_pos: Dict[int, List[int]],
        cell_deleted: frozenset,
        p1: int,
        p2: int,
    ) -> Optional[List[Action]]:
        """Evaluate moving the transfer at ``p2`` to just before ``p1``.

        ``state`` is the replication state before position ``p1``.
        Returns the complete rewritten action list on acceptance.
        """
        moved = actions[p2]
        assert isinstance(moved, Transfer)
        i, k = moved.target, moved.obj
        costs, size = instance.costs, float(instance.sizes[k])
        positions_k = transfer_pos.get(k, ())

        new_source = state.nearest(i, k)
        # Optimistic bound: the moved transfer's own cost change plus the
        # best-case re-pointing savings for every other transfer of the
        # object at or after p1. Skip candidate construction (the
        # expensive part) when even the optimistic total is non-positive.
        optimistic = size * (costs[i, moved.source] - costs[i, new_source])
        for idx in positions_k:
            if idx < p1 or idx == p2:
                continue
            t = actions[idx]
            if t.target != i:
                optimistic += max(
                    0.0, size * (costs[t.target, t.source] - costs[t.target, i])
                )
        if optimistic <= COST_EPS:
            return None

        # Re-pointing through S_i is only safe while S_i keeps the object;
        # if some later action deletes (i, k), skip tail re-points (window
        # re-points are still checked by the replay).
        i_keeps_obj = (i, k) not in cell_deleted
        replacement = Transfer(i, k, new_source)

        for hoist in (False, True):
            hoisted: List[int] = []
            if hoist:
                hoisted = [
                    idx
                    for idx in range(p1 + 1, p2)
                    if isinstance(actions[idx], Delete)
                    and actions[idx].server == i
                ]
                if not hoisted:
                    break  # identical to the no-hoist variant
            removed = set(hoisted)
            removed.add(p2)

            # --- build the rewrite window [p1, p2] -----------------------
            window: List[Action] = [actions[idx] for idx in hoisted]
            window.append(replacement)
            delta = size * (costs[i, new_source] - costs[i, moved.source])
            for idx in range(p1, p2 + 1):
                if idx in removed:
                    continue
                a = actions[idx]
                if (
                    isinstance(a, Transfer)
                    and a.obj == k
                    and a.target != i
                    and costs[a.target, i] < costs[a.target, a.source]
                ):
                    delta += size * (costs[a.target, i] - costs[a.target, a.source])
                    a = a.with_source(i)
                window.append(a)

            repaired = window_replay_with_repairs(state, window)
            if repaired is None:
                continue
            # Repair penalties (case iii): cost difference of the window
            # after source re-pointing repairs.
            delta += actions_cost(instance, repaired) - actions_cost(
                instance, window
            )

            # --- tail re-points (transfers of k after the window) --------
            tail_repoints: List[int] = []
            if i_keeps_obj:
                for idx in positions_k:
                    if idx <= p2:
                        continue
                    t = actions[idx]
                    if t.target != i and costs[t.target, i] < costs[t.target, t.source]:
                        delta += size * (
                            costs[t.target, i] - costs[t.target, t.source]
                        )
                        tail_repoints.append(idx)

            if delta >= -COST_EPS:
                continue
            out = list(actions[:p1])
            out.extend(repaired)
            for idx in range(p2 + 1, len(actions)):
                a = actions[idx]
                if idx in tail_repoints:
                    a = a.with_source(i)
                out.append(a)
            return out
        return None


def _transfer_positions_by_object(
    actions: Sequence[Action],
) -> Dict[int, List[int]]:
    """Map object id -> sorted positions of its transfers."""
    positions: Dict[int, List[int]] = {}
    for idx, a in enumerate(actions):
        if isinstance(a, Transfer):
            positions.setdefault(a.obj, []).append(idx)
    return positions


def _deleted_cells(actions: Sequence[Action]) -> frozenset:
    """Set of ``(server, obj)`` cells deleted anywhere in the schedule."""
    return frozenset(
        (a.server, a.obj) for a in actions if isinstance(a, Delete)
    )


def _next_after(positions: Sequence[int], p1: int) -> Optional[int]:
    """Smallest position in ``positions`` strictly greater than ``p1``."""
    for idx in positions:
        if idx > p1:
            return idx
    return None
