"""Pipelines: builder + optimizer chains, e.g. ``GOLCF+H1+H2+OP1``.

The paper's plots are all pipelines in this sense — a schedule builder
followed by zero or more optimizers applied in order. The winning
combination (§6) is ``GOLCF+H1+H2+OP1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.base import (
    ScheduleBuilder,
    ScheduleOptimizer,
    get_builder,
    get_optimizer,
)
from repro.model.instance import RtspInstance
from repro.model.residual import is_residual_trivial, residual_instance
from repro.model.schedule import Schedule
from repro.obs.context import current_metrics, current_tracer
from repro.obs.profile import StageProfiler
from repro.util.errors import ConfigurationError, InvalidScheduleError
from repro.util.rng import ensure_rng


@dataclass(frozen=True)
class StageResult:
    """Metrics of the schedule after one pipeline stage.

    ``counters`` holds the observability counters this stage bumped
    (post-stage minus pre-stage registry values) — empty when no
    :class:`~repro.obs.metrics.MetricsRegistry` is active.
    """

    stage: str
    cost: float
    dummy_transfers: int
    num_actions: int
    seconds: float
    counters: Mapping[str, int] = field(default_factory=dict)


class Pipeline:
    """A builder followed by optimizers, applied left to right.

    ``validate`` installs a per-stage check on every schedule the
    pipeline produces: ``"basic"``/``True`` replays through the model
    layer, ``"strict"`` runs the independent invariant oracle from
    :mod:`repro.exact.validate`, and a callable ``(instance, schedule)``
    is used as-is. Validation failures raise
    :class:`~repro.util.errors.InvalidScheduleError` naming the stage.
    """

    def __init__(
        self,
        builder: ScheduleBuilder,
        optimizers: Sequence[ScheduleOptimizer] = (),
        name: Optional[str] = None,
        validate=None,
    ) -> None:
        self.builder = builder
        self.optimizers = list(optimizers)
        self.name = name or "+".join(
            [builder.name] + [o.name for o in self.optimizers]
        )
        # Lazy import: repro.exact depends on repro.core at module level,
        # so core must only reach back into it at call time.
        from repro.exact.validate import resolve_validator

        self.validator = resolve_validator(validate)

    def run(self, instance: RtspInstance, rng=None) -> Schedule:
        """Build and optimize; returns the final schedule."""
        schedule, _ = self.run_with_stats(instance, rng=rng)
        return schedule

    def run_with_stats(
        self, instance: RtspInstance, rng=None, tracer=None
    ) -> Tuple[Schedule, List[StageResult]]:
        """Like :meth:`run` but also records per-stage metrics and timing.

        ``tracer`` defaults to the active one (see
        :func:`repro.obs.context.current_tracer`); each stage runs inside a
        ``"stage"`` span annotated with the schedule metrics, and — when a
        metrics registry is active — its counter deltas land both on the
        returned :class:`StageResult` and in ``stage.<name>.seconds``
        histograms.
        """
        gen = ensure_rng(rng)
        if tracer is None:
            tracer = current_tracer()
        registry = current_metrics()
        watch = StageProfiler()
        stats: List[StageResult] = []
        with tracer.span("pipeline", pipeline=self.name):
            schedule = None
            for stage in [self.builder] + self.optimizers:
                with tracer.span("stage", stage=stage.name):
                    before = (
                        registry.counter_values()
                        if registry is not None
                        else None
                    )
                    with watch.stage(stage.name):
                        if schedule is None:
                            schedule = stage.build(instance, rng=gen)
                        else:
                            schedule = stage.optimize(
                                instance, schedule, rng=gen
                            )
                    self._check(instance, schedule, stage.name)
                    result = self._stage_result(
                        stage.name, schedule, instance, watch, registry, before
                    )
                    tracer.annotate(
                        cost=result.cost,
                        dummy_transfers=result.dummy_transfers,
                        num_actions=result.num_actions,
                    )
                stats.append(result)
        return schedule, stats

    def replan(self, instance: RtspInstance, placement, rng=None) -> Schedule:
        """Re-plan the remainder of a transition from a mid-flight state.

        ``placement`` is the current replication matrix of a partially
        executed (possibly fault-mutated) system. The pipeline runs on the
        residual instance ``placement -> X_new``; the returned schedule is
        valid against that residual, i.e. applying it to the mid-flight
        state reaches ``instance.x_new``. Used by
        :class:`repro.robust.RepairEngine` after every detected failure.

        A trivial residual (``placement`` already equals ``X_new``)
        short-circuits to an empty schedule without invoking any stage:
        builders are entitled to assume there is work to do, and a
        repair round whose fault wiped only already-superfluous replicas
        must not pay (or crash in) a full pipeline run.
        """
        residual = residual_instance(instance, placement)
        if is_residual_trivial(residual):
            return Schedule()
        return self.run(residual, rng=rng)

    def _check(
        self, instance: RtspInstance, schedule: Schedule, stage: str
    ) -> None:
        if self.validator is None:
            return
        try:
            self.validator(instance, schedule)
        except InvalidScheduleError as exc:
            raise InvalidScheduleError(
                f"pipeline {self.name!r}, stage {stage!r}: {exc}",
                position=exc.position,
            ) from exc

    @staticmethod
    def _stage_result(
        stage: str,
        schedule: Schedule,
        instance: RtspInstance,
        watch: StageProfiler,
        registry=None,
        before: Optional[Dict[str, int]] = None,
    ) -> StageResult:
        seconds = watch.laps.get(stage, 0.0)
        counters: Dict[str, int] = {}
        if registry is not None:
            base = before or {}
            counters = {
                name: delta
                for name, value in registry.counter_values().items()
                if (delta := value - base.get(name, 0))
            }
            registry.histogram(f"stage.{stage}.seconds").observe(seconds)
        return StageResult(
            stage=stage,
            cost=schedule.cost(instance),
            dummy_transfers=schedule.count_dummy_transfers(instance),
            num_actions=len(schedule),
            seconds=seconds,
            counters=counters,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Pipeline({self.name!r})"


def build_pipeline(spec: str, validate=None) -> Pipeline:
    """Parse a ``BUILDER+OPT1+OPT2`` spec into a :class:`Pipeline`.

    The first component must name a registered builder, the remaining
    components registered optimizers, e.g. ``"GOLCF+H1+H2+OP1"``.
    ``validate`` is forwarded to :class:`Pipeline` (``"basic"``,
    ``"strict"``, or a callable) to check every stage's output.
    """
    parts = [part.strip() for part in spec.split("+") if part.strip()]
    if not parts:
        raise ConfigurationError("empty pipeline spec")
    builder = get_builder(parts[0])
    optimizers = [get_optimizer(p) for p in parts[1:]]
    return Pipeline(builder, optimizers, name="+".join(parts), validate=validate)


#: The pipeline line-up used across the paper's figures.
PAPER_PIPELINES: Dict[str, str] = {
    "AR": "AR",
    "GOLCF": "GOLCF",
    "RDF": "RDF",
    "GSDF": "GSDF",
    "AR+H1+H2": "AR+H1+H2",
    "GOLCF+H1": "GOLCF+H1",
    "GOLCF+H2": "GOLCF+H2",
    "GOLCF+H1+H2": "GOLCF+H1+H2",
    "GOLCF+OP1": "GOLCF+OP1",
    "GOLCF+H1+H2+OP1": "GOLCF+H1+H2+OP1",
}
