"""Exact reference solving and differential verification (``repro.exact``).

The correctness leg of the reproduction: RTSP-decision is NP-complete
(paper §3.4), so the heuristics the repository ships can only be judged
against a ground truth at small scale. This package provides that
ground truth and the machinery to hold every other layer to it:

* :mod:`repro.exact.solver` — a branch-and-bound optimal solver
  (:class:`BranchAndBoundSolver`) with memoized state hashing,
  dominance pruning, admissible lower bounds, and node/time budgets
  that distinguish :data:`PROVED_OPTIMAL` from :data:`BEST_FOUND`;
* :mod:`repro.exact.validate` — a strict schedule invariant checker
  (:func:`check_invariants`) implemented independently of
  :mod:`repro.model`, usable as a differential oracle against every
  builder, optimizer and repaired fault trace;
* :mod:`repro.exact.differential` — seeded instance families, the
  heuristics-vs-optimum harness, and the versioned golden corpus under
  ``tests/golden/exact/`` (refresh with
  ``python -m repro.tools golden --update``).
"""

from repro.exact.differential import (
    DEFAULT_FAMILIES,
    DEFAULT_GOLDEN_DIR,
    DEFAULT_PIPELINES,
    DEFAULT_SEEDS,
    GOLDEN_FORMAT,
    check_corpus,
    differential_payload,
    family_instances,
    gap_summary,
    update_corpus,
)
from repro.exact.solver import (
    BEST_FOUND,
    PROVED_OPTIMAL,
    BranchAndBoundSolver,
    SolveResult,
    SolveStats,
    SolverBudget,
    solve_optimal,
)
from repro.exact.validate import (
    InvariantReport,
    InvariantViolation,
    assert_invariants,
    check_invariants,
    resolve_validator,
)

__all__ = [
    # solver
    "PROVED_OPTIMAL",
    "BEST_FOUND",
    "BranchAndBoundSolver",
    "SolverBudget",
    "SolveResult",
    "SolveStats",
    "solve_optimal",
    # validate
    "InvariantReport",
    "InvariantViolation",
    "assert_invariants",
    "check_invariants",
    "resolve_validator",
    # differential
    "GOLDEN_FORMAT",
    "DEFAULT_FAMILIES",
    "DEFAULT_PIPELINES",
    "DEFAULT_SEEDS",
    "DEFAULT_GOLDEN_DIR",
    "family_instances",
    "differential_payload",
    "gap_summary",
    "check_corpus",
    "update_corpus",
]
