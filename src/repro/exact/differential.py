"""Differential verification: heuristics vs the exact solver.

This module closes the loop the rest of the repository cannot: it
measures *true* optimality gaps. A seeded generator produces families of
tiny instances (small enough that :class:`~repro.exact.solver.
BranchAndBoundSolver` proves the optimum within its default node
budget), every heuristic pipeline runs over them across several seeds,
each schedule passes the strict invariant checker
(:func:`repro.exact.validate.check_invariants`), and the recorded gaps
form a **golden corpus** under ``tests/golden/exact/`` that CI diffs
byte-for-byte (the ``exact-differential`` job is a blocking gate: any
silent cost regression, invalid schedule, or lost optimality proof
fails the build).

Everything here is deterministic: instance generation derives per-cell
seeds with :func:`repro.util.rng.derive_seed`, heuristics take explicit
integer seeds, the solver uses a node (never time) budget, and the JSON
is dumped canonically (sorted keys, fixed indentation, ``repr``-exact
floats). Regenerate after an intentional behaviour change with::

    python -m repro.tools golden --update

and review the diff like any other code change.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.pipeline import build_pipeline
from repro.exact.solver import (
    PROVED_OPTIMAL,
    BranchAndBoundSolver,
    SolverBudget,
)
from repro.exact.validate import check_invariants
from repro.io.json_format import instance_from_dict, instance_to_dict
from repro.model.instance import RtspInstance
from repro.npc.knapsack import KnapsackInstance
from repro.npc.reduction import reduce_knapsack_to_rtsp
from repro.util.errors import ConfigurationError
from repro.util.rng import derive_seed, ensure_rng

__all__ = [
    "GOLDEN_FORMAT",
    "DEFAULT_FAMILIES",
    "DEFAULT_PIPELINES",
    "DEFAULT_SEEDS",
    "DEFAULT_GOLDEN_DIR",
    "family_instances",
    "differential_payload",
    "gap_summary",
    "check_corpus",
    "update_corpus",
]

#: Version tag of the golden-corpus JSON layout.
GOLDEN_FORMAT = "rtsp-golden-exact/1"

#: Instance families the corpus covers (one JSON file each).
DEFAULT_FAMILIES: Tuple[str, ...] = ("loose", "tight", "ring", "knapsack")

#: Pipelines whose gaps the corpus records: the four builders plus the
#: paper's winning combination.
DEFAULT_PIPELINES: Tuple[str, ...] = (
    "RDF",
    "GSDF",
    "AR",
    "GOLCF",
    "GOLCF+H1+H2+OP1",
)

#: Heuristic RNG seeds recorded per pipeline.
DEFAULT_SEEDS: Tuple[int, ...] = (0, 1, 2)

#: Instances generated per family.
DEFAULT_COUNT = 4

#: Corpus location, relative to the repository root (where CI runs).
DEFAULT_GOLDEN_DIR = pathlib.Path("tests") / "golden" / "exact"

#: Master seed mixed into every family generator (the paper's year).
_MASTER_SEED = 2007


# ----------------------------------------------------------------------
# instance families
# ----------------------------------------------------------------------
def _closed_costs(m: int, gen: np.random.Generator) -> np.ndarray:
    """Random symmetric integer link costs, Floyd-Warshall closed."""
    raw = gen.integers(1, 10, size=(m, m)).astype(np.float64)
    costs = np.minimum(raw, raw.T)
    np.fill_diagonal(costs, 0.0)
    for w in range(m):
        np.minimum(costs, costs[:, w, None] + costs[None, w, :], out=costs)
    return costs


def _random_placements(
    m: int, n: int, moves: int, gen: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """A random ``X_old`` and a ``moves``-relocation reshuffle of it.

    Bounding the old/new difference (instead of drawing independent
    placements) keeps the outstanding-replica count — the driver of the
    exact search space — small enough that the default node budget
    proves every optimum, while still reaching the full 6x8 shape.
    """
    x_old = np.zeros((m, n), dtype=np.int8)
    for k in range(n):
        replicas = int(gen.integers(1, 3))
        for i in gen.choice(m, size=min(replicas, m), replace=False):
            x_old[i, k] = 1
    x_new = x_old.copy()
    for _ in range(moves):
        movable = list(zip(*np.nonzero(x_new)))
        src_i, k = movable[int(gen.integers(len(movable)))]
        free = np.flatnonzero(x_new[:, k] == 0)
        if free.size == 0:
            continue
        dst = int(free[int(gen.integers(free.size))])
        x_new[src_i, k] = 0
        x_new[dst, k] = 1
    return x_old, x_new


def _placement_instance(
    idx: int, gen: np.random.Generator, slack: float
) -> RtspInstance:
    m = 3 + idx % 4  # 3..6 servers
    n = 4 + (3 * idx) % 5  # 4..8 objects; idx 3 is the 6x8 flagship
    moves = 4 + idx % 4  # 4..7 replica relocations
    sizes = gen.integers(1, 5, size=n).astype(np.float64)
    x_old, x_new = _random_placements(m, n, moves, gen)
    loads_old = x_old.astype(np.float64) @ sizes
    loads_new = x_new.astype(np.float64) @ sizes
    capacities = np.maximum(loads_old, loads_new) + slack
    return RtspInstance.create(
        sizes, capacities, _closed_costs(m, gen), x_old, x_new
    )


def _ring_instance(idx: int, gen: np.random.Generator) -> RtspInstance:
    """Rotation rings: every server must hand its object to its neighbour.

    Zero-slack rings are the adversarial case of paper Fig. 1 — the
    transfer graph is one big cycle, so either the dummy breaks it or a
    spare server stages a copy. Even indices add that spare server.
    """
    k = 3 + idx % 3  # 3..5 ring members
    spare = idx % 2 == 0
    m = k + (1 if spare else 0)
    x_old = np.zeros((m, k), dtype=np.int8)
    x_new = np.zeros((m, k), dtype=np.int8)
    for i in range(k):
        x_old[i, i] = 1
        x_new[(i + 1) % k, i] = 1
    sizes = np.ones(k, dtype=np.float64)
    capacities = np.ones(m, dtype=np.float64)
    costs = _closed_costs(m, gen)
    return RtspInstance.create(sizes, capacities, costs, x_old, x_new)


def _knapsack_instance(idx: int, gen: np.random.Generator) -> RtspInstance:
    """Paper §3.4 hardness construction on a tiny random Knapsack."""
    n = 2 + idx % 2  # 2..3 knapsack objects -> at most 6 servers
    sizes = [int(s) for s in gen.integers(1, 4, size=n)]
    benefits = [int(b) for b in gen.integers(1, 5, size=n)]
    capacity = max(1, sum(sizes) // 2)
    knap = KnapsackInstance.create(benefits, sizes, capacity)
    return reduce_knapsack_to_rtsp(knap).rtsp


def family_instances(
    family: str,
    count: int = DEFAULT_COUNT,
    seed: int = _MASTER_SEED,
) -> List[RtspInstance]:
    """The ``count`` deterministic instances of ``family``.

    Families: ``loose`` (random placements, spare capacity), ``tight``
    (zero storage slack — deletions must precede transfers), ``ring``
    (rotation cycles that deadlock without the dummy or staging) and
    ``knapsack`` (the §3.4 reduction on tiny Knapsack instances). All
    stay within 6 servers x 8 objects so the default solver budget
    proves every optimum.
    """
    builders = {
        "loose": lambda idx, gen: _placement_instance(idx, gen, slack=4.0),
        "tight": lambda idx, gen: _placement_instance(idx, gen, slack=0.0),
        "ring": _ring_instance,
        "knapsack": _knapsack_instance,
    }
    try:
        build = builders[family]
    except KeyError:
        raise ConfigurationError(
            f"unknown instance family {family!r}; "
            f"available: {sorted(builders)}"
        ) from None
    if count <= 0:
        raise ConfigurationError("count must be positive")
    return [
        build(idx, ensure_rng(derive_seed(seed, "exact", family, idx)))
        for idx in range(count)
    ]


# ----------------------------------------------------------------------
# the differential harness
# ----------------------------------------------------------------------
def _heuristic_cell(
    instance: RtspInstance, spec: str, seed: int, exact_cost: float
) -> Dict[str, Any]:
    """Run one pipeline at one seed and grade it against the optimum."""
    schedule = build_pipeline(spec).run(instance, rng=seed)
    report = check_invariants(instance, schedule)
    # Oracle cross-check: the model layer and the independent checker
    # must agree on the cost they recompute.
    model_cost = schedule.cost(instance)
    cost_agrees = abs(model_cost - report.cost) <= 1e-9 * max(
        1.0, abs(model_cost)
    )
    gap = 0.0
    if exact_cost > 0.0:
        gap = (report.cost - exact_cost) / exact_cost
    return {
        "seed": seed,
        "cost": report.cost,
        "gap": gap,
        "valid": report.ok and cost_agrees,
        "dummy_transfers": report.dummy_transfers,
        "num_actions": report.num_actions,
    }


def differential_payload(
    family: str,
    count: int = DEFAULT_COUNT,
    pipelines: Sequence[str] = DEFAULT_PIPELINES,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    budget: Optional[SolverBudget] = None,
) -> Dict[str, Any]:
    """The golden payload for one family: exact optima + heuristic gaps.

    The result is JSON-ready and fully deterministic; dumping it with
    :func:`canonical_json` must reproduce the committed corpus file
    byte-for-byte.
    """
    budget = budget or SolverBudget()
    solver = BranchAndBoundSolver(budget=budget)
    entries: List[Dict[str, Any]] = []
    for index, instance in enumerate(family_instances(family, count=count)):
        result = solver.solve(instance)
        entry: Dict[str, Any] = {
            "index": index,
            "num_servers": instance.num_servers,
            "num_objects": instance.num_objects,
            "instance": instance_to_dict(instance),
            "exact": {
                "status": result.status,
                "cost": result.cost,
                "lower_bound": result.lower_bound,
                "num_actions": len(result.schedule),
                "dummy_transfers": result.schedule.count_dummy_transfers(
                    instance
                ),
            },
            "heuristics": {
                spec: [
                    _heuristic_cell(instance, spec, seed, result.cost)
                    for seed in seeds
                ]
                for spec in pipelines
            },
        }
        entries.append(entry)
    return {
        "format": GOLDEN_FORMAT,
        "family": family,
        "count": count,
        "pipelines": list(pipelines),
        "seeds": [int(s) for s in seeds],
        "solver": {"max_nodes": budget.max_nodes},
        "instances": entries,
    }


def gap_summary(payload: Dict[str, Any]) -> Dict[str, Dict[str, float]]:
    """Per-pipeline max/mean gap over one family payload."""
    gaps: Dict[str, List[float]] = {}
    for entry in payload["instances"]:
        for spec, cells in entry["heuristics"].items():
            gaps.setdefault(spec, []).extend(cell["gap"] for cell in cells)
    return {
        spec: {
            "max_gap": max(values),
            "mean_gap": sum(values) / len(values),
        }
        for spec, values in gaps.items()
        if values
    }


# ----------------------------------------------------------------------
# golden corpus maintenance
# ----------------------------------------------------------------------
def canonical_json(payload: Dict[str, Any]) -> str:
    """The one true serialization the corpus is diffed in."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _corpus_problems(payload: Dict[str, Any]) -> List[str]:
    """Semantic gate on a (re)generated payload, independent of diffing."""
    problems: List[str] = []
    family = payload["family"]
    for entry in payload["instances"]:
        label = f"{family}[{entry['index']}]"
        exact = entry["exact"]
        if exact["status"] != PROVED_OPTIMAL:
            problems.append(
                f"{label}: solver returned {exact['status']} within the "
                f"default budget (expected {PROVED_OPTIMAL})"
            )
        for spec, cells in entry["heuristics"].items():
            for cell in cells:
                if not cell["valid"]:
                    problems.append(
                        f"{label}: {spec} seed {cell['seed']} produced an "
                        "invalid schedule (strict invariant check failed)"
                    )
                if cell["gap"] < -1e-12:
                    problems.append(
                        f"{label}: {spec} seed {cell['seed']} beat the "
                        f"'optimal' cost by {-cell['gap']:.3%} — the exact "
                        "solver is not exact"
                    )
        # The stored instance must round-trip, so the corpus stays
        # usable as standalone test data.
        instance_from_dict(entry["instance"])
    return problems


def check_corpus(
    directory: Union[str, pathlib.Path] = DEFAULT_GOLDEN_DIR,
    families: Sequence[str] = DEFAULT_FAMILIES,
    budget: Optional[SolverBudget] = None,
) -> List[str]:
    """Regenerate every family and diff against the committed corpus.

    Returns a list of human-readable problems; empty means the corpus
    is reproduced byte-identically and semantically sound.
    """
    directory = pathlib.Path(directory)
    problems: List[str] = []
    for family in families:
        payload = differential_payload(family, budget=budget)
        problems.extend(_corpus_problems(payload))
        path = directory / f"{family}.json"
        if not path.exists():
            problems.append(
                f"{path}: missing golden file (run "
                "`python -m repro.tools golden --update`)"
            )
            continue
        expected = path.read_text()
        actual = canonical_json(payload)
        if actual != expected:
            problems.extend(_describe_drift(family, path, expected, actual))
    return problems


def _describe_drift(
    family: str, path: pathlib.Path, expected: str, actual: str
) -> List[str]:
    """Pinpoint which recorded numbers moved, not just 'files differ'."""
    problems = [f"{path}: golden corpus drift (regenerated output differs)"]
    try:
        old = json.loads(expected)
    except json.JSONDecodeError:
        problems.append(f"{path}: committed file is not valid JSON")
        return problems
    new = json.loads(actual)
    old_entries = {e["index"]: e for e in old.get("instances", [])}
    for entry in new["instances"]:
        before = old_entries.get(entry["index"])
        if before is None:
            problems.append(f"{family}[{entry['index']}]: new instance")
            continue
        if before["exact"] != entry["exact"]:
            problems.append(
                f"{family}[{entry['index']}]: exact result moved "
                f"{before['exact']} -> {entry['exact']}"
            )
        for spec, cells in entry["heuristics"].items():
            old_cells = before["heuristics"].get(spec)
            if old_cells != cells:
                problems.append(
                    f"{family}[{entry['index']}]: {spec} gaps moved "
                    f"{old_cells} -> {cells}"
                )
    return problems


def update_corpus(
    directory: Union[str, pathlib.Path] = DEFAULT_GOLDEN_DIR,
    families: Sequence[str] = DEFAULT_FAMILIES,
    budget: Optional[SolverBudget] = None,
) -> List[pathlib.Path]:
    """Regenerate and write every family file; returns the paths written.

    Refuses (raises :class:`ConfigurationError`) when the regenerated
    corpus is semantically unsound — an unproved optimum or an invalid
    heuristic schedule must be fixed, not committed.
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: List[pathlib.Path] = []
    for family in families:
        payload = differential_payload(family, budget=budget)
        problems = _corpus_problems(payload)
        if problems:
            raise ConfigurationError(
                "refusing to write an unsound golden corpus:\n  "
                + "\n  ".join(problems)
            )
        path = directory / f"{family}.json"
        path.write_text(canonical_json(payload))
        written.append(path)
    return written
