"""Branch-and-bound optimal RTSP solver for small instances.

RTSP-decision is NP-complete (paper §3.4, via 0/1-Knapsack), so no
polynomial algorithm is expected — but at toy scale (≤ ~8 servers ×
~10 objects) an exhaustive search with good pruning proves optima in
well under a second, which is all the differential harness needs to
measure true optimality gaps of the heuristics.

The search walks valid action sequences depth-first with four exact
(optimality-preserving) reductions:

1. **Symmetric-source canonicalization** — after ``T_ikj`` the placement
   matrix is identical *whatever the source* ``j``; only the cost
   differs. Branching on any source other than the currently nearest one
   is therefore dominated, so each missing replica contributes exactly
   one transfer candidate per node (ties break toward the lowest server
   index, matching :class:`~repro.model.nearest.NearestSourceIndex`).
2. **Deletions-first canonicalization** — deletions are free, so any
   schedule can be rewritten to delete a superfluous replica either
   right before a transfer *into the same server* (to make room) or at
   the very end. The search branches on deletions only where they can
   matter (servers still awaiting an incoming replica, plus staged
   copies of still-pending objects) and flushes the rest at the leaf.
   Superfluous replicas of *completed* objects can never serve as a
   useful source again and are deleted eagerly without branching.
3. **Dominance memoization** — the placement matrix fully captures the
   search state; re-reaching a placement at equal or higher cost is
   pruned (the hash table stores the best cost per placement hash).
4. **Admissible lower bound** — the per-replica floor of
   :func:`repro.analysis.bounds.residual_lower_bound` (each missing
   replica ``(i, k)`` costs at least ``s(O_k) * min_{j != i} l_ij``
   whatever its eventual source; tighter nearest-*holder* bounds are
   inadmissible once relaying is allowed, because shared delivery
   chains double-count), strengthened by an exact per-object *entry*
   term: the chronologically first transfer of each pending object must
   source **directly** from a current holder or the dummy, so either
   one pending target pays its distance to that holder set instead of
   its global floor, or an uncounted staging hop out of the holder set
   is paid on top. Nodes whose ``cost + bound`` reaches the incumbent
   are cut.

The searched space is that of *conservative* schedules: a replica
mandated by ``X_new`` is never deleted once present (so it is never
deleted-and-refetched to make temporary room). Every builder, optimizer
and repaired trace in this repository produces conservative schedules,
so differential gaps against this optimum are meaningful; the paper's
worst-case argument (§3.3) also lives entirely in this space.

The incumbent is seeded with the best heuristic pipeline result
(deterministic, ``rng=0``), so the search starts with a tight upper
bound instead of discovering one.

Budgets and statuses
--------------------
:class:`SolverBudget` caps explored nodes and wall-clock seconds. A
search that exhausts the space within budget returns
:data:`PROVED_OPTIMAL` — the cost is a certificate. A search cut short
returns :data:`BEST_FOUND` — the best incumbent plus the certified root
lower bound. Node budgets are deterministic; time budgets are not
(golden corpora must therefore rely on node budgets only, which the
defaults do).

When a metrics registry is active (:mod:`repro.obs`), the solver bumps
``exact.nodes``, ``exact.pruned_bound``, ``exact.pruned_memo`` and
``exact.incumbent_updates``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.pipeline import build_pipeline
from repro.exact.validate import assert_invariants
from repro.model.actions import Action, Delete, Transfer
from repro.model.instance import RtspInstance
from repro.model.schedule import Schedule
from repro.model.state import SystemState
from repro.obs.context import current_metrics

__all__ = [
    "PROVED_OPTIMAL",
    "BEST_FOUND",
    "SolverBudget",
    "SolveStats",
    "SolveResult",
    "BranchAndBoundSolver",
    "solve_optimal",
]

#: The search space was exhausted: ``cost`` is the proven optimum.
PROVED_OPTIMAL = "PROVED_OPTIMAL"
#: A budget cut the search short: ``cost`` is an upper bound only.
BEST_FOUND = "BEST_FOUND"

#: Default pipelines used to seed the incumbent (deterministic, rng=0).
_SEED_PIPELINES: Tuple[str, ...] = ("GOLCF+H1+H2+OP1", "GSDF")


@dataclass(frozen=True)
class SolverBudget:
    """Search budget. ``max_seconds=None`` keeps runs deterministic."""

    max_nodes: int = 200_000
    max_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_nodes <= 0:
            raise ValueError("max_nodes must be positive")
        if self.max_seconds is not None and self.max_seconds <= 0:
            raise ValueError("max_seconds must be positive when set")


@dataclass
class SolveStats:
    """Search effort counters, mirrored into :mod:`repro.obs` when active."""

    nodes: int = 0
    pruned_bound: int = 0
    pruned_memo: int = 0
    incumbent_updates: int = 0
    memo_size: int = 0
    elapsed_seconds: float = 0.0


@dataclass(frozen=True)
class SolveResult:
    """Outcome of an exact search.

    ``lower_bound`` is always certified: the root relaxation when the
    budget ran out, the optimum itself when proved. ``gap_certificate``
    is hence an upper bound on how far ``cost`` can be from optimal.
    """

    status: str
    schedule: Schedule
    cost: float
    lower_bound: float
    stats: SolveStats = field(repr=False, default_factory=SolveStats)

    @property
    def proved_optimal(self) -> bool:
        """Whether ``cost`` is the certified optimum."""
        return self.status == PROVED_OPTIMAL

    @property
    def gap_certificate(self) -> float:
        """Certified relative optimality gap of ``cost`` (0 when proved)."""
        if self.proved_optimal or self.lower_bound <= 0.0:
            return 0.0
        return (self.cost - self.lower_bound) / self.lower_bound


class BranchAndBoundSolver:
    """Exact minimum-cost schedule search (see module docstring).

    Parameters
    ----------
    budget:
        Node/time caps; defaults prove every corpus instance optimal.
    allow_staging:
        Explore transfers onto servers outside ``X_new`` (the paper's
        "arbitrary intermediate nodes"). Required for instances where
        relaying is optimal; enlarges the branching factor.
    seed_incumbent:
        Seed the upper bound with deterministic heuristic runs before
        searching. Disable only to exercise the raw search in tests.
    """

    def __init__(
        self,
        budget: SolverBudget = SolverBudget(),
        allow_staging: bool = True,
        seed_incumbent: bool = True,
        seed_pipelines: Sequence[str] = _SEED_PIPELINES,
    ) -> None:
        self.budget = budget
        self.allow_staging = allow_staging
        self.seed_incumbent = seed_incumbent
        self.seed_pipelines = tuple(seed_pipelines)

    # ------------------------------------------------------------------
    def solve(self, instance: RtspInstance) -> SolveResult:
        """Search for the minimum-cost valid schedule of ``instance``."""
        self._instance = instance
        self._stats = SolveStats()
        self._memo: dict = {}
        self._deadline = (
            None
            if self.budget.max_seconds is None
            else time.monotonic() + self.budget.max_seconds
        )
        self._out_of_budget = False
        started = time.monotonic()

        # Static admissible floor per target server (non-triangle case).
        m = instance.num_servers
        masked = np.array(instance.costs[:m, : m + 1], dtype=np.float64)
        for i in range(m):
            masked[i, i] = np.inf
        self._min_row = masked.min(axis=1)

        self._best_cost = float("inf")
        self._best_actions: Optional[List[Action]] = None
        if self.seed_incumbent:
            self._seed_from_heuristics(instance)

        state = SystemState(instance)
        root_bound = self._lower_bound(state, self._pending(state))
        self._dfs(state, 0.0, [])

        self._stats.memo_size = len(self._memo)
        self._stats.elapsed_seconds = time.monotonic() - started
        self._publish_counters()

        # The dummy server guarantees a solution exists, and the seeded
        # incumbent (or any leaf reached before the budget died) provides
        # it; _best_actions is only None if the budget was pathologically
        # small AND seeding was disabled.
        if self._best_actions is None:
            return SolveResult(
                status=BEST_FOUND,
                schedule=Schedule(),
                cost=float("inf"),
                lower_bound=root_bound,
                stats=self._stats,
            )
        status = BEST_FOUND if self._out_of_budget else PROVED_OPTIMAL
        cost = float(self._best_cost)
        schedule = Schedule(self._best_actions)
        # Self-check: an exact solver must never emit an invalid schedule.
        assert_invariants(instance, schedule, context="exact solver")
        return SolveResult(
            status=status,
            schedule=schedule,
            cost=cost,
            lower_bound=cost if status == PROVED_OPTIMAL else root_bound,
            stats=self._stats,
        )

    # ------------------------------------------------------------------
    # incumbent seeding
    # ------------------------------------------------------------------
    def _seed_from_heuristics(self, instance: RtspInstance) -> None:
        for spec in self.seed_pipelines:
            schedule = build_pipeline(spec).run(instance, rng=0)
            report = schedule.validate(instance)
            if report.ok and report.cost < self._best_cost:
                self._best_cost = report.cost
                self._best_actions = schedule.actions()

    # ------------------------------------------------------------------
    # bounds and bookkeeping
    # ------------------------------------------------------------------
    def _pending(self, state: SystemState) -> List[Tuple[int, int]]:
        inst = self._instance
        x_new = inst.x_new
        return [
            (i, k)
            for i in range(inst.num_servers)
            for k in range(inst.num_objects)
            if x_new[i, k] and not state.holds(i, k)
        ]

    def _lower_bound(
        self, state: SystemState, pending: List[Tuple[int, int]]
    ) -> float:
        """Admissible remaining-cost bound (see module docstring, rule 4)."""
        inst = self._instance
        sizes, costs, dummy = inst.sizes, inst.costs, inst.dummy
        min_row = self._min_row
        total = 0.0
        per_obj: dict = {}
        for i, k in pending:
            total += float(sizes[k]) * float(min_row[i])
            per_obj.setdefault(k, []).append(i)

        # Entry term, per pending object: the first transfer of O_k must
        # source directly from holders(k) ∪ {dummy}. Either its target
        # is a pending one — then that target pays its holder-set
        # distance h_i, not just its floor — or it is a staging server
        # whose (uncounted) hop costs at least min_w h_w.
        for k, targets in per_obj.items():
            holders = state.replicators(k)
            delta = float("inf")
            for i in targets:
                h = float(costs[i, dummy])
                for j in holders:
                    if j != i:
                        h = min(h, float(costs[i, j]))
                delta = min(delta, h - float(min_row[i]))
                if delta <= 0.0:
                    break
            if delta > 0.0:
                target_set = set(targets)
                for w in range(inst.num_servers):
                    if delta <= 0.0:
                        break
                    if w in target_set or w in holders or state.holds(w, k):
                        continue
                    h = float(costs[w, dummy])
                    for j in holders:
                        if j != w:
                            h = min(h, float(costs[w, j]))
                    delta = min(delta, h)
            if delta > 0.0:
                total += float(sizes[k]) * delta
        return total

    def _budget_exhausted(self) -> bool:
        if self._stats.nodes >= self.budget.max_nodes:
            return True
        if self._deadline is not None and time.monotonic() > self._deadline:
            return True
        return False

    # ------------------------------------------------------------------
    # the search
    # ------------------------------------------------------------------
    def _dfs(self, state: SystemState, cost: float, trail: List[Action]) -> None:
        if self._budget_exhausted():
            self._out_of_budget = True
            return
        self._stats.nodes += 1

        pending = self._pending(state)

        if cost + self._lower_bound(state, pending) >= self._best_cost:
            self._stats.pruned_bound += 1
            return

        # Eager exact reduction: superfluous replicas of objects with no
        # remaining targets can never be useful sources — delete now.
        pending_objs = {k for _, k in pending}
        forced = self._forced_deletions(state, pending_objs)
        for action in forced:
            state.apply(action)
            trail.append(action)

        try:
            if not pending:
                # All targets in place and every superfluous replica was
                # force-deleted above: this is a leaf landing on X_new.
                if cost < self._best_cost:
                    self._best_cost = cost
                    self._best_actions = list(trail)
                    self._stats.incumbent_updates += 1
                return

            key = state.placement().tobytes()
            seen = self._memo.get(key)
            if seen is not None and seen <= cost:
                self._stats.pruned_memo += 1
                return
            self._memo[key] = cost

            for action, action_cost in self._candidates(state, pending):
                state.apply(action)
                trail.append(action)
                self._dfs(state, cost + action_cost, trail)
                trail.pop()
                state.undo(action)
                if self._out_of_budget:
                    return
        finally:
            for action in reversed(forced):
                trail.pop()
                state.undo(action)

    def _forced_deletions(
        self, state: SystemState, pending_objs: set
    ) -> List[Delete]:
        inst = self._instance
        placement = state.placement()
        x_new = inst.x_new
        return [
            Delete(i, k)
            for k in range(inst.num_objects)
            if k not in pending_objs
            for i in np.flatnonzero(placement[:, k]).tolist()
            if not x_new[i, k]
        ]

    def _candidates(
        self, state: SystemState, pending: List[Tuple[int, int]]
    ) -> List[Tuple[Action, float]]:
        """Branching actions at a node, deletions first, cheap transfers next."""
        inst = self._instance
        placement = state.placement()
        x_new = inst.x_new
        pending_objs = {k for _, k in pending}
        out: List[Tuple[Action, float]] = []

        # Deletions that can matter: superfluous replicas of still-pending
        # objects, anywhere (room-making at targets, staged-copy cleanup
        # that may free room for further staging). Superfluous replicas
        # of *completed* objects were already force-deleted by the
        # caller, so this enumerates every deletable replica.
        for k in pending_objs:
            for i in np.flatnonzero(placement[:, k]).tolist():
                if not x_new[i, k]:
                    out.append((Delete(i, k), 0.0))

        # Transfers: one candidate per missing replica, from the nearest
        # current source only (symmetric-source canonicalization).
        transfers: List[Tuple[Action, float]] = []
        for i, k in pending:
            j = state.nearest(i, k)
            action = Transfer(i, k, j)
            if state.is_valid(action):
                transfers.append((action, inst.transfer_cost(i, k, j)))

        if self.allow_staging:
            for k in pending_objs:
                for i in range(inst.num_servers):
                    if x_new[i, k] or state.holds(i, k):
                        continue
                    j = state.nearest(i, k)
                    action = Transfer(i, k, j)
                    if state.is_valid(action):
                        transfers.append(
                            (action, inst.transfer_cost(i, k, j))
                        )

        transfers.sort(key=lambda pair: pair[1])
        out.extend(transfers)
        return out

    # ------------------------------------------------------------------
    def _publish_counters(self) -> None:
        registry = current_metrics()
        if registry is None:
            return
        stats = self._stats
        registry.counter("exact.nodes").inc(stats.nodes)
        registry.counter("exact.pruned_bound").inc(stats.pruned_bound)
        registry.counter("exact.pruned_memo").inc(stats.pruned_memo)
        registry.counter("exact.incumbent_updates").inc(
            stats.incumbent_updates
        )
        registry.counter("exact.solves").inc()


def solve_optimal(
    instance: RtspInstance,
    budget: Optional[SolverBudget] = None,
    allow_staging: bool = True,
) -> SolveResult:
    """Convenience wrapper around :class:`BranchAndBoundSolver`."""
    solver = BranchAndBoundSolver(
        budget=budget or SolverBudget(), allow_staging=allow_staging
    )
    return solver.solve(instance)
