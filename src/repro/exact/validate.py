"""Strict schedule invariant checking, independent of :mod:`repro.model`.

:func:`check_invariants` re-derives everything a valid schedule must
satisfy from the raw instance arrays — plain Python floats and sets, no
:class:`~repro.model.state.SystemState`, no cached nearest-source index —
so it can serve as a *differential oracle* against the model layer: a bug
in either implementation shows up as a disagreement (see the hypothesis
property tests in ``tests/properties/test_exact_properties.py``).

Checked invariants:

* **step validity** — every transfer has a live source, a target that
  does not yet replicate the object, and never targets the dummy; every
  deletion removes a replica that exists and never touches the dummy;
* **prefix capacity** — after *every* action, each server's load is
  within its capacity (not just at the endpoints);
* **exact landing** — the final replication matrix equals ``X_new``
  entry-for-entry;
* **dummy accounting** — the number of transfers sourced at the dummy
  server is recomputed from scratch;
* **independent cost** — the implementation cost is re-accumulated from
  the raw size/cost arrays, without calling ``Schedule.cost``.

The checker never raises on an invalid schedule (use
:func:`assert_invariants` for that); it returns an
:class:`InvariantReport` whose ``violations`` list the broken rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Tuple, Union

from repro.model.actions import Action, Delete, Transfer
from repro.model.instance import RtspInstance
from repro.model.schedule import Schedule
from repro.util.errors import ConfigurationError, InvalidScheduleError

__all__ = [
    "CAPACITY_EPS",
    "InvariantViolation",
    "InvariantReport",
    "check_invariants",
    "assert_invariants",
    "resolve_validator",
]

#: Same numerical slack the model layer grants for storage comparisons.
CAPACITY_EPS = 1e-9

#: Stop collecting after this many violations (diagnostics, not a dump).
_MAX_VIOLATIONS = 25


@dataclass(frozen=True)
class InvariantViolation:
    """One broken invariant.

    ``position`` is the 0-based schedule index of the offending action,
    or ``None`` for end-state (landing) violations. ``rule`` is a stable
    machine-readable identifier; ``message`` is for humans.
    """

    position: Optional[int]
    rule: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - debug aid
        where = "end state" if self.position is None else f"action {self.position}"
        return f"[{self.rule}] {where}: {self.message}"


@dataclass(frozen=True)
class InvariantReport:
    """Outcome of :func:`check_invariants`.

    ``cost`` and ``dummy_transfers`` are recomputed independently of the
    model layer and cover the *entire* schedule even when invalid (every
    action is still charged), so differential comparisons stay
    meaningful. ``peak_load`` is the maximum per-server load observed at
    any prefix, in server order — useful when diagnosing capacity
    violations.
    """

    ok: bool
    violations: Tuple[InvariantViolation, ...]
    cost: float
    dummy_transfers: int
    num_actions: int
    peak_load: Tuple[float, ...]

    @property
    def first(self) -> Optional[InvariantViolation]:
        """The first violation, or ``None`` when the schedule is valid."""
        return self.violations[0] if self.violations else None

    def summary(self) -> str:
        """One-line human-readable verdict."""
        if self.ok:
            return (
                f"valid: {self.num_actions} actions, cost={self.cost:.6g}, "
                f"{self.dummy_transfers} dummy"
            )
        head = self.violations[0]
        more = len(self.violations) - 1
        tail = f" (+{more} more)" if more else ""
        return f"INVALID: {head}{tail}"


def check_invariants(
    instance: RtspInstance, schedule: Iterable[Action]
) -> InvariantReport:
    """Validate ``schedule`` against ``instance`` from first principles.

    Accepts any iterable of actions (a :class:`~repro.model.schedule.Schedule`,
    a list, an applied fault trace); never raises on invalid input.
    """
    m, n = instance.num_servers, instance.num_objects
    dummy = instance.dummy
    sizes = [float(s) for s in instance.sizes]
    capacities = [float(c) for c in instance.capacities]
    costs = [[float(c) for c in row] for row in instance.costs]
    x_new = instance.x_new

    holders: List[set] = [set() for _ in range(n)]
    load = [0.0] * m
    for i in range(m):
        for k in range(n):
            if instance.x_old[i, k]:
                holders[k].add(i)
                load[i] += sizes[k]
    peak = list(load)

    violations: List[InvariantViolation] = []

    def flag(position: Optional[int], rule: str, message: str) -> None:
        if len(violations) < _MAX_VIOLATIONS:
            violations.append(InvariantViolation(position, rule, message))

    cost = 0.0
    dummies = 0
    num_actions = 0
    for pos, action in enumerate(schedule):
        num_actions += 1
        if isinstance(action, Transfer):
            i, k, j = action.target, action.obj, action.source
            in_range = 0 <= i <= dummy and 0 <= j <= dummy and 0 <= k < n
            if not in_range:
                flag(pos, "index-range", f"{action}: index out of range")
                continue
            # Charge the cost regardless of validity so differential
            # comparisons of invalid schedules stay meaningful.
            cost += sizes[k] * costs[i][j]
            if j == dummy:
                dummies += 1
            if i == dummy:
                flag(pos, "dummy-target", f"{action}: transfer onto the dummy")
                continue
            if i == j:
                flag(pos, "self-transfer", f"{action}: source equals target")
                continue
            if j != dummy and j not in holders[k]:
                flag(pos, "source-missing",
                     f"{action}: S_{j} does not replicate O_{k}")
                continue
            if i in holders[k]:
                flag(pos, "target-present",
                     f"{action}: S_{i} already replicates O_{k}")
                continue
            if load[i] + sizes[k] > capacities[i] + CAPACITY_EPS:
                flag(
                    pos,
                    "capacity",
                    f"{action}: S_{i} would hold {load[i] + sizes[k]:.6g} "
                    f"of {capacities[i]:.6g}",
                )
                continue
            holders[k].add(i)
            load[i] += sizes[k]
            peak[i] = max(peak[i], load[i])
        elif isinstance(action, Delete):
            i, k = action.server, action.obj
            if not (0 <= i <= dummy and 0 <= k < n):
                flag(pos, "index-range", f"{action}: index out of range")
                continue
            if i == dummy:
                flag(pos, "dummy-delete", f"{action}: delete at the dummy")
                continue
            if i not in holders[k]:
                flag(pos, "replica-missing",
                     f"{action}: S_{i} does not replicate O_{k}")
                continue
            holders[k].discard(i)
            load[i] -= sizes[k]
        else:
            flag(pos, "unknown-action",
                 f"unknown action type {type(action).__name__}")

    if not violations:
        # Landing: only meaningful once every step was valid (otherwise
        # the simulated state already diverged).
        mismatches = [
            (i, k)
            for k in range(n)
            for i in range(m)
            if (i in holders[k]) != bool(x_new[i, k])
        ]
        if mismatches:
            i, k = mismatches[0]
            flag(
                None,
                "landing",
                f"final placement differs from X_new at {len(mismatches)} "
                f"entries (first: server {i}, object {k})",
            )

    return InvariantReport(
        ok=not violations,
        violations=tuple(violations),
        cost=cost,
        dummy_transfers=dummies,
        num_actions=num_actions,
        peak_load=tuple(peak),
    )


def assert_invariants(
    instance: RtspInstance, schedule: Iterable[Action], context: str = ""
) -> InvariantReport:
    """:func:`check_invariants`, raising :class:`InvalidScheduleError`.

    Returns the (valid) report on success so callers can reuse the
    recomputed cost. ``context`` prefixes the error message (builder or
    stage name, repair round, …).
    """
    report = check_invariants(instance, schedule)
    if not report.ok:
        head = report.violations[0]
        prefix = f"{context}: " if context else ""
        raise InvalidScheduleError(
            f"{prefix}invariant violation {head}", position=head.position
        )
    return report


#: What ``validate=`` hooks accept: nothing, a named mode, or a callable
#: ``(instance, schedule) -> None`` that raises on invalid schedules.
ValidateSpec = Union[
    None, bool, str, Callable[[RtspInstance, Schedule], None]
]


def resolve_validator(
    spec: ValidateSpec,
) -> Optional[Callable[[RtspInstance, Schedule], None]]:
    """Normalise a ``validate=`` argument into a checking callable.

    * ``None`` / ``False`` — no validation (returns ``None``);
    * ``"basic"`` / ``True`` — replay through the model layer
      (``Schedule.require_valid``);
    * ``"strict"`` — this module's independent invariant checker;
    * a callable — used as-is.
    """
    if spec is None or spec is False:
        return None
    if spec is True or spec == "basic":
        return lambda instance, schedule: schedule.require_valid(instance)
    if spec == "strict":
        def _strict(instance: RtspInstance, schedule: Schedule) -> None:
            assert_invariants(instance, schedule)

        return _strict
    if callable(spec):
        return spec
    raise ConfigurationError(
        f"validate must be None, 'basic', 'strict' or a callable, got {spec!r}"
    )
