"""Experiment harness reproducing the paper's evaluation (§5, Figs. 4–9).

* :mod:`repro.experiments.config` — scales (small/medium/paper) and the
  :class:`FigureSpec` declaration format,
* :mod:`repro.experiments.figures` — one spec per paper figure,
* :mod:`repro.experiments.runner` — seed-stable sweep execution,
* :mod:`repro.experiments.report` — ASCII tables and CSV output,
* :mod:`repro.experiments.robust_sweep` — fault-injection failure-rate
  sweep (repair overhead vs fault rate),
* :mod:`repro.experiments.cli` — ``python -m repro.experiments``.
"""

from repro.experiments.config import ExperimentScale, FigureSpec, SCALES
from repro.experiments.runner import run_figure, FigureResult, CellResult
from repro.experiments.figures import FIGURES, get_figure
from repro.experiments.report import render_table, render_csv
from repro.experiments.robust_sweep import (
    RobustCell,
    RobustSweepResult,
    run_robust_sweep,
)
from repro.experiments.scenario import run_scenario, ScenarioResult, EpochResult

__all__ = [
    "ExperimentScale",
    "FigureSpec",
    "SCALES",
    "run_figure",
    "FigureResult",
    "CellResult",
    "FIGURES",
    "get_figure",
    "render_table",
    "render_csv",
    "RobustCell",
    "RobustSweepResult",
    "run_robust_sweep",
    "run_scenario",
    "ScenarioResult",
    "EpochResult",
]
