"""Command-line interface: ``python -m repro.experiments``.

Examples
--------
Run Figure 4 at CI scale and print the table::

    python -m repro.experiments --figure 4 --scale small

Regenerate every figure at the paper's scale (50 servers, 1000 objects;
budget ~an hour of CPU), writing CSVs next to the tables::

    python -m repro.experiments --figure all --scale paper --csv-dir results/

Run the robustness failure-rate sweep (fault injection + online repair)::

    python -m repro.experiments --figure robust --scale small \
        --fault-rate 0.05,0.1,0.2 --fault-seed 7 --csv-dir results/
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from contextlib import ExitStack
from typing import List, Optional

from repro.experiments.config import SCALES, get_scale
from repro.experiments.figures import FIGURES, get_figure
from repro.experiments.report import render_ascii_chart, render_csv, render_table
from repro.experiments.robust_sweep import (
    DEFAULT_RATES,
    render_robust_csv,
    render_robust_table,
    run_robust_sweep,
)
from repro.experiments.runner import run_figure
from repro.obs import (
    EventStream,
    MetricsRegistry,
    Tracer,
    observed,
    profiled,
    render_event,
    write_otlp,
    write_prometheus,
)
from repro.util.errors import ConfigurationError


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for the tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the RTSP paper's evaluation figures (4-9).",
    )
    parser.add_argument(
        "--figure",
        default="all",
        help=(
            "figure to run: 4..9, fig4..fig9, 'all' (default), or "
            "'robust' for the fault-injection failure-rate sweep"
        ),
    )
    parser.add_argument(
        "--scale",
        default="small",
        choices=sorted(SCALES),
        help="experiment scale (paper = 50 servers / 1000 objects)",
    )
    parser.add_argument(
        "--reps", type=int, default=None, help="override repetitions per cell"
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the base seed"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "run repetitions on N worker processes (results are "
            "bit-identical to a serial run; default serial)"
        ),
    )
    parser.add_argument(
        "--csv-dir", default=None, help="also write <figure>.csv files here"
    )
    parser.add_argument(
        "--fault-rate",
        default=None,
        help=(
            "comma-separated fault rates for --figure robust "
            f"(default {','.join(str(r) for r in DEFAULT_RATES)})"
        ),
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for fault-plan generation in --figure robust (default 0)",
    )
    parser.add_argument(
        "--flat",
        default=None,
        choices=("auto", "on", "off"),
        help=(
            "builder core selection: 'on' forces the flat "
            "structure-of-arrays core, 'off' the reference object path, "
            "'auto' (default) switches on instance size; schedules are "
            "byte-identical either way"
        ),
    )
    parser.add_argument(
        "--chart", action="store_true", help="print ASCII charts too"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress lines"
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help=(
            "record the run and write an rtsp-trace/1 JSONL trace to PATH "
            "(inspect with 'rtsp-tool trace-summary PATH')"
        ),
    )
    parser.add_argument(
        "--chrome-trace",
        default=None,
        metavar="PATH",
        help="also write a chrome://tracing / Perfetto JSON trace to PATH",
    )
    parser.add_argument(
        "--metrics-json",
        default=None,
        metavar="PATH",
        help=(
            "collect observability counters (nearest-index cache, builder "
            "scans, executor queues, repair rounds) and write an "
            "rtsp-metrics/1 snapshot to PATH"
        ),
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile and print the hottest functions at the end",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help=(
            "render live structured heartbeat events (builder waves, "
            "repair rounds) in addition to the per-cell progress lines"
        ),
    )
    parser.add_argument(
        "--events",
        default=None,
        metavar="PATH",
        help="write the structured rtsp-events/1 event stream to PATH",
    )
    parser.add_argument(
        "--prometheus",
        default=None,
        metavar="PATH",
        help=(
            "write the run's metrics in Prometheus text exposition "
            "format to PATH (implies metrics collection)"
        ),
    )
    parser.add_argument(
        "--otlp",
        default=None,
        metavar="PATH",
        help=(
            "write the run's metrics (and spans, when tracing) as "
            "OTLP-style JSON to PATH"
        ),
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    scale = get_scale(args.scale)
    if args.seed is not None:
        from dataclasses import replace

        scale = replace(scale, base_seed=args.seed)

    progress = None if args.quiet else lambda line: print("  " + line, flush=True)

    tracer = (
        Tracer(meta={"figure": args.figure, "scale": scale.name})
        if (args.trace or args.chrome_trace or args.otlp)
        else None
    )
    metrics = (
        MetricsRegistry()
        if (args.metrics_json or args.prometheus or args.otlp)
        else None
    )
    events = None
    if args.events or args.progress:
        on_event = (
            (lambda e: print("  " + render_event(e), flush=True))
            if args.progress
            else None
        )
        events = EventStream(
            meta={"figure": args.figure, "scale": scale.name},
            on_event=on_event,
        )

    profile_report = None
    with ExitStack() as stack:
        if args.flat is not None:
            # Scoped override: the previous mode is restored even when a
            # run raises, so embedders calling main() never inherit it.
            from repro.flat import flat_mode_override

            stack.enter_context(flat_mode_override(args.flat))
        stack.enter_context(
            observed(tracer=tracer, metrics=metrics, events=events)
        )
        if args.profile:
            profile_report = stack.enter_context(profiled())
        if args.figure.lower() == "robust":
            code = _run_robust(args, scale, progress)
        else:
            code = _run_figures(args, scale, progress)
    _write_obs_artifacts(args, tracer, metrics, events, profile_report)
    return code


def _run_figures(args, scale, progress) -> int:
    """Handle the figure sweeps (everything except ``--figure robust``)."""
    if args.figure.lower() == "all":
        specs = [FIGURES[key] for key in sorted(FIGURES)]
    else:
        specs = [get_figure(args.figure)]

    for spec in specs:
        result = run_figure(
            spec,
            scale,
            repetitions=args.reps,
            progress=progress,
            workers=args.workers,
        )
        print()
        print(render_table(result))
        if args.chart:
            print(render_ascii_chart(result))
        if args.csv_dir:
            os.makedirs(args.csv_dir, exist_ok=True)
            path = os.path.join(args.csv_dir, f"{spec.figure_id}.csv")
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(render_csv(result))
            print(f"wrote {path}")
    return 0


def _write_obs_artifacts(args, tracer, metrics, events, profile_report) -> None:
    """Write the observability artifacts the flags asked for."""
    if tracer is not None and args.trace:
        tracer.write_jsonl(args.trace)
        print(f"wrote {args.trace}")
    if tracer is not None and args.chrome_trace:
        tracer.write_chrome(args.chrome_trace)
        print(f"wrote {args.chrome_trace}")
    if metrics is not None and args.metrics_json:
        metrics.write_json(args.metrics_json)
        print(f"wrote {args.metrics_json}")
    if metrics is not None and args.prometheus:
        write_prometheus(metrics.snapshot(), args.prometheus)
        print(f"wrote {args.prometheus}")
    if args.otlp:
        write_otlp(
            args.otlp,
            snapshot=metrics.snapshot() if metrics is not None else None,
            spans=tracer.spans if tracer is not None else None,
            meta={"figure": args.figure},
        )
        print(f"wrote {args.otlp}")
    if events is not None and args.events:
        events.write_jsonl(args.events)
        print(f"wrote {args.events}")
    if profile_report is not None:
        print()
        print(profile_report.text)


def _run_robust(args, scale, progress) -> int:
    """Handle ``--figure robust``: the failure-rate sweep."""
    if args.fault_rate is None:
        rates = list(DEFAULT_RATES)
    else:
        try:
            rates = [float(part) for part in args.fault_rate.split(",") if part]
        except ValueError:
            raise ConfigurationError(
                f"--fault-rate must be comma-separated floats, "
                f"got {args.fault_rate!r}"
            ) from None
    result = run_robust_sweep(
        scale,
        rates=rates,
        repetitions=args.reps,
        fault_seed=args.fault_seed,
        progress=progress,
    )
    print()
    print(render_robust_table(result))
    if args.csv_dir:
        os.makedirs(args.csv_dir, exist_ok=True)
        csv_path = os.path.join(args.csv_dir, "robust.csv")
        with open(csv_path, "w", encoding="utf-8") as fh:
            fh.write(render_robust_csv(result))
        json_path = os.path.join(args.csv_dir, "robust.json")
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, indent=2)
        print(f"wrote {csv_path}")
        print(f"wrote {json_path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
