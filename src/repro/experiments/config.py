"""Experiment configuration: scales and figure specifications.

The paper's evaluation runs at 50 servers / 1000 objects. That scale is
available as ``paper``; ``small``/``medium`` keep the same structure at a
fraction of the runtime for CI and benchmarking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from repro.model.instance import RtspInstance
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class ExperimentScale:
    """Size/repetition knobs for one harness run."""

    name: str
    num_servers: int
    num_objects: int
    repetitions: int
    base_seed: int = 20070326  # IPPS 2007 opened on March 26

    def scaled_servers(self, fraction: float) -> int:
        """``fraction`` of the server count, rounded."""
        return int(round(fraction * self.num_servers))


#: Built-in scales. ``paper`` matches §5.1 exactly.
SCALES: Dict[str, ExperimentScale] = {
    "small": ExperimentScale("small", num_servers=20, num_objects=100, repetitions=3),
    "medium": ExperimentScale("medium", num_servers=50, num_objects=300, repetitions=3),
    "paper": ExperimentScale("paper", num_servers=50, num_objects=1000, repetitions=5),
}


def get_scale(name: str) -> ExperimentScale:
    """Look up a scale by name."""
    try:
        return SCALES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scale {name!r}; available: {sorted(SCALES)}"
        ) from None


#: Instance factory signature: (x_value, scale, seed) -> instance.
InstanceFactory = Callable[[float, ExperimentScale, int], RtspInstance]


@dataclass(frozen=True)
class FigureSpec:
    """Declarative description of one paper figure.

    Attributes
    ----------
    figure_id:
        ``"fig4"`` … ``"fig9"``.
    title, x_label, y_label:
        Labels matching the paper's plot.
    metric:
        ``"dummy_transfers"`` or ``"cost"``.
    pipelines:
        Pipeline specs (``"GOLCF+H1+H2"``-style) — one plot series each.
    x_values:
        Sweep values (replicas per object, or fraction of servers with
        extra capacity).
    make_instance:
        Factory producing the instance for an ``(x, scale, seed)`` cell.
    workload_key:
        Figures with equal keys share identical instances per cell (the
        paper pairs each dummy-count figure with a cost figure over the
        same runs).
    expected_shape:
        Human-readable statement of the qualitative result the paper
        reports for this figure (checked by the integration tests).
    """

    figure_id: str
    title: str
    x_label: str
    y_label: str
    metric: str
    pipelines: List[str]
    x_values: List[float]
    make_instance: InstanceFactory
    workload_key: str
    expected_shape: str = ""

    def __post_init__(self) -> None:
        if self.metric not in ("dummy_transfers", "cost"):
            raise ConfigurationError(f"unknown metric {self.metric!r}")
        if not self.pipelines:
            raise ConfigurationError("figure needs at least one pipeline")
        if not self.x_values:
            raise ConfigurationError("figure needs at least one x value")
