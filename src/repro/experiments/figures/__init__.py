"""Figure specifications for the paper's six evaluation plots."""

from typing import Dict

from repro.experiments.config import FigureSpec
from repro.experiments.figures.fig4 import spec as fig4_spec
from repro.experiments.figures.fig5 import spec as fig5_spec
from repro.experiments.figures.fig6 import spec as fig6_spec
from repro.experiments.figures.fig7 import spec as fig7_spec
from repro.experiments.figures.fig8 import spec as fig8_spec
from repro.experiments.figures.fig9 import spec as fig9_spec
from repro.util.errors import ConfigurationError

#: All figure specs by id.
FIGURES: Dict[str, FigureSpec] = {
    s.figure_id: s
    for s in (
        fig4_spec(),
        fig5_spec(),
        fig6_spec(),
        fig7_spec(),
        fig8_spec(),
        fig9_spec(),
    )
}


def get_figure(figure_id: str) -> FigureSpec:
    """Look up a figure spec by id (``"fig4"`` or just ``"4"``)."""
    key = figure_id.lower()
    if not key.startswith("fig"):
        key = f"fig{key}"
    try:
        return FIGURES[key]
    except KeyError:
        raise ConfigurationError(
            f"unknown figure {figure_id!r}; available: {sorted(FIGURES)}"
        ) from None


__all__ = ["FIGURES", "get_figure"]
