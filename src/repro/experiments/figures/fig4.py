"""Figure 4 — dummy transfers vs. replicas per object (equal sizes).

Experiment 1 (§5.2): all objects sized 5000 units, replicas per object
swept 1..5, ``X_old``/``X_new`` fully reshuffled (0% overlap), capacities
minimal. H1+H2 applied over AR and GOLCF; dummy transfers drop as
replicas increase, and H1+H2 nearly nullify them from two replicas on.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentScale, FigureSpec
from repro.model.instance import RtspInstance
from repro.workloads.regular import paper_instance

#: Workload shared by Figures 4 and 5 (the same runs feed both plots).
WORKLOAD_KEY = "exp1-equal-sizes"


def make_instance(x: float, scale: ExperimentScale, seed: int) -> RtspInstance:
    """Experiment-1 instance with ``x`` replicas per object."""
    return paper_instance(
        replicas=int(x),
        num_servers=scale.num_servers,
        num_objects=scale.num_objects,
        object_size=5000.0,
        overlap=0.0,
        rng=seed,
    )


def spec() -> FigureSpec:
    """Figure 4 specification."""
    return FigureSpec(
        figure_id="fig4",
        title="Number of dummy transfers as the replicas per object increase "
        "(equal object sizes)",
        x_label="replicas per object",
        y_label="dummy transfers",
        metric="dummy_transfers",
        pipelines=["AR", "AR+H1+H2", "GOLCF", "GOLCF+H1+H2"],
        x_values=[1, 2, 3, 4, 5],
        make_instance=make_instance,
        workload_key=WORKLOAD_KEY,
        expected_shape=(
            "dummy transfers decrease with replicas; GOLCF below AR; "
            "H1+H2 nearly nullify dummies for r >= 2"
        ),
    )
