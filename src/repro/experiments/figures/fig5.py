"""Figure 5 — implementation cost vs. replicas per object (equal sizes).

The cost view of experiment 1, over the same instances as Figure 4.
H1+H2 reduce the implementation cost of the GOLCF+OP1 schedule because
each dummy transfer they remove swaps the most expensive possible source
for a real one.
"""

from __future__ import annotations

from repro.experiments.config import FigureSpec
from repro.experiments.figures.fig4 import WORKLOAD_KEY, make_instance


def spec() -> FigureSpec:
    """Figure 5 specification."""
    return FigureSpec(
        figure_id="fig5",
        title="Implementation cost as the replicas per object increase "
        "(equal object sizes)",
        x_label="replicas per object",
        y_label="implementation cost",
        metric="cost",
        pipelines=["AR", "GOLCF", "GOLCF+OP1", "GOLCF+H1+H2+OP1"],
        x_values=[1, 2, 3, 4, 5],
        make_instance=make_instance,
        workload_key=WORKLOAD_KEY,
        expected_shape=(
            "GOLCF+H1+H2+OP1 cheapest, then GOLCF+OP1 <= GOLCF < AR; "
            "the H1+H2 gap narrows as replicas increase"
        ),
    )
