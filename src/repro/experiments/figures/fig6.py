"""Figure 6 — dummy transfers vs. replicas per object (uniform sizes).

Experiment 2 (§5.2): identical to experiment 1 except object sizes are
drawn uniformly from [1000, 5000]. Only GOLCF variants are plotted;
H1+H2 contribute the bulk of the dummy-transfer reduction.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentScale, FigureSpec
from repro.model.instance import RtspInstance
from repro.workloads.regular import paper_instance

#: Workload shared by Figures 6 and 7.
WORKLOAD_KEY = "exp2-uniform-sizes"


def make_instance(x: float, scale: ExperimentScale, seed: int) -> RtspInstance:
    """Experiment-2 instance with ``x`` replicas and U[1000,5000] sizes."""
    return paper_instance(
        replicas=int(x),
        num_servers=scale.num_servers,
        num_objects=scale.num_objects,
        uniform_size_range=(1000.0, 5000.0),
        overlap=0.0,
        rng=seed,
    )


def spec() -> FigureSpec:
    """Figure 6 specification."""
    return FigureSpec(
        figure_id="fig6",
        title="Number of dummy transfers as the replicas per object increase "
        "(uniform object sizes)",
        x_label="replicas per object",
        y_label="dummy transfers",
        metric="dummy_transfers",
        pipelines=["GOLCF", "GOLCF+H1", "GOLCF+H2", "GOLCF+H1+H2"],
        x_values=[1, 2, 3, 4, 5],
        make_instance=make_instance,
        workload_key=WORKLOAD_KEY,
        expected_shape=(
            "dummy transfers decrease with replicas; H1+H2 jointly give "
            "the largest reduction"
        ),
    )
