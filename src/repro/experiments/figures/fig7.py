"""Figure 7 — implementation cost vs. replicas per object (uniform sizes).

The cost view of experiment 2, over the same instances as Figure 6.
"""

from __future__ import annotations

from repro.experiments.config import FigureSpec
from repro.experiments.figures.fig6 import WORKLOAD_KEY, make_instance


def spec() -> FigureSpec:
    """Figure 7 specification."""
    return FigureSpec(
        figure_id="fig7",
        title="Implementation cost as the replicas per object increase "
        "(uniform object sizes)",
        x_label="replicas per object",
        y_label="implementation cost",
        metric="cost",
        pipelines=["GOLCF", "GOLCF+OP1", "GOLCF+H1+H2+OP1"],
        x_values=[1, 2, 3, 4, 5],
        make_instance=make_instance,
        workload_key=WORKLOAD_KEY,
        expected_shape=(
            "GOLCF+H1+H2+OP1 achieves large cost savings over GOLCF+OP1, "
            "driven by the removed dummy transfers"
        ),
    )
