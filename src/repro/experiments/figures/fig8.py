"""Figure 8 — dummy transfers vs. servers with extra capacity.

Experiment 3 (§5.2): equal sizes, two replicas per object, 0% overlap,
minimal capacities — except a growing number of random servers get room
for one extra object. Standalone GOLCF barely profits from the slack
(its plot is almost flat) while H1+H2 exploit the free space and drive
dummy transfers down as slack spreads.

The x axis is expressed as the *fraction* of servers with slack so the
figure is meaningful at every harness scale; at the paper scale (M=50)
the fractions 0, 0.2, …, 1.0 correspond to 0, 10, …, 50 servers.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentScale, FigureSpec
from repro.model.instance import RtspInstance
from repro.workloads.regular import paper_instance

#: Workload shared by Figures 8 and 9.
WORKLOAD_KEY = "exp3-extra-capacity"


def make_instance(x: float, scale: ExperimentScale, seed: int) -> RtspInstance:
    """Experiment-3 instance; ``x`` = fraction of servers with +1 slack."""
    return paper_instance(
        replicas=2,
        num_servers=scale.num_servers,
        num_objects=scale.num_objects,
        object_size=5000.0,
        overlap=0.0,
        extra_capacity_servers=scale.scaled_servers(x),
        rng=seed,
    )


def spec() -> FigureSpec:
    """Figure 8 specification."""
    return FigureSpec(
        figure_id="fig8",
        title="Number of dummy transfers as more servers acquire extra capacity",
        x_label="fraction of servers with extra capacity",
        y_label="dummy transfers",
        metric="dummy_transfers",
        pipelines=["GOLCF", "GOLCF+H1+H2"],
        x_values=[0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
        make_instance=make_instance,
        workload_key=WORKLOAD_KEY,
        expected_shape=(
            "GOLCF is nearly flat; GOLCF+H1+H2 decreases as more servers "
            "gain slack"
        ),
    )
