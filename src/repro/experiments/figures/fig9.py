"""Figure 9 — implementation cost vs. servers with extra capacity.

The cost view of experiment 3, over the same instances as Figure 8:
GOLCF+H1+H2+OP1 undercuts GOLCF+OP1 and the gap grows with slack, since
every dummy transfer H1/H2 convert saves the dummy premium.
"""

from __future__ import annotations

from repro.experiments.config import FigureSpec
from repro.experiments.figures.fig8 import WORKLOAD_KEY, make_instance


def spec() -> FigureSpec:
    """Figure 9 specification."""
    return FigureSpec(
        figure_id="fig9",
        title="Implementation cost as more servers acquire extra capacity",
        x_label="fraction of servers with extra capacity",
        y_label="implementation cost",
        metric="cost",
        pipelines=["GOLCF+OP1", "GOLCF+H1+H2+OP1"],
        x_values=[0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
        make_instance=make_instance,
        workload_key=WORKLOAD_KEY,
        expected_shape=(
            "GOLCF+H1+H2+OP1 costs less than GOLCF+OP1 at every slack level"
        ),
    )
