"""Rendering figure results as ASCII tables, CSV, and ASCII charts."""

from __future__ import annotations

import io
from typing import List, Optional

from repro.experiments.runner import FigureResult


def render_table(result: FigureResult, show_std: bool = True) -> str:
    """Render a figure result as an aligned ASCII table.

    One row per x value, one column per pipeline, means (± std when
    ``show_std`` and more than one repetition ran).
    """
    spec = result.spec
    pipelines = spec.pipelines
    header = [spec.x_label] + pipelines
    rows: List[List[str]] = []
    for x in spec.x_values:
        row = [f"{x:g}"]
        for name in pipelines:
            cell = result.cell(x, name)
            text = f"{cell.mean:,.6g}"
            if show_std and len(cell.values) > 1 and cell.std > 0:
                text += f" ±{cell.std:,.3g}"
            row.append(text)
        rows.append(row)
    widths = [
        max(len(header[c]), *(len(r[c]) for r in rows)) for c in range(len(header))
    ]
    out = io.StringIO()
    title = f"{spec.figure_id.upper()}: {spec.title}"
    out.write(title + "\n")
    out.write(
        f"[scale={result.scale.name}, M={result.scale.num_servers}, "
        f"N={result.scale.num_objects}, metric={spec.metric}, "
        f"{result.seconds:.1f}s]\n"
    )
    sep = "-+-".join("-" * w for w in widths)
    out.write(" | ".join(h.ljust(w) for h, w in zip(header, widths)) + "\n")
    out.write(sep + "\n")
    for row in rows:
        out.write(" | ".join(v.rjust(w) for v, w in zip(row, widths)) + "\n")
    if spec.expected_shape:
        out.write(f"expected shape: {spec.expected_shape}\n")
    return out.getvalue()


def render_csv(result: FigureResult) -> str:
    """Render a figure result as CSV (one row per cell, raw values joined)."""
    out = io.StringIO()
    out.write("figure,scale,x,pipeline,metric,mean,std,n,values\n")
    for cell in result.cells:
        values = ";".join(f"{v:g}" for v in cell.values)
        out.write(
            f"{result.spec.figure_id},{result.scale.name},{cell.x:g},"
            f"{cell.pipeline},{result.spec.metric},{cell.mean:g},"
            f"{cell.std:g},{len(cell.values)},{values}\n"
        )
    return out.getvalue()


def render_ascii_chart(
    result: FigureResult, width: int = 60, height: int = 16
) -> str:
    """Poor-man's line chart: one mark per (x, pipeline) mean.

    Useful for eyeballing the figure shape in a terminal without
    matplotlib (which this project deliberately avoids depending on).
    """
    spec = result.spec
    marks = "ox+*#@%&"
    all_means = [c.mean for c in result.cells]
    lo, hi = min(all_means), max(all_means)
    span = (hi - lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    xs = spec.x_values
    for s_idx, name in enumerate(spec.pipelines):
        mark = marks[s_idx % len(marks)]
        for x_idx, x in enumerate(xs):
            col = (
                int(round(x_idx * (width - 1) / (len(xs) - 1)))
                if len(xs) > 1
                else 0
            )
            val = result.cell(x, name).mean
            row = height - 1 - int(round((val - lo) / span * (height - 1)))
            grid[row][col] = mark
    out = io.StringIO()
    out.write(f"{spec.figure_id.upper()} ({spec.metric})  ")
    out.write(
        "  ".join(
            f"{marks[i % len(marks)]}={n}" for i, n in enumerate(spec.pipelines)
        )
        + "\n"
    )
    out.write(f"{hi:,.4g}\n")
    for row in grid:
        out.write("|" + "".join(row) + "\n")
    out.write("+" + "-" * width + "\n")
    out.write(f"{lo:,.4g}  x: {xs[0]:g} .. {xs[-1]:g} ({spec.x_label})\n")
    return out.getvalue()
