"""Failure-rate sweep: repair overhead vs injected fault rate.

For each ``(fault_rate, repetition)`` cell a fresh paper-workload
instance is generated (seed-derived exactly like the figure sweeps), a
fault plan is sampled at that rate (seeded from ``fault_seed``, horizon =
the cell's fault-free makespan), and every pipeline's execution is
repaired online. Reported per ``(rate, pipeline)``: mean cost overhead,
repair rounds, dummy fallbacks and makespan stretch — the curves the
robustness analysis plots.

Determinism contract: cells are seeded by position, so the whole sweep is
reproducible from ``(scale, fault_seed)`` alone, and a zero rate
reproduces the fault-free path byte-for-byte.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.metrics import RepairStats, repair_stats
from repro.experiments.config import ExperimentScale
from repro.robust.faults import FaultPlan
from repro.robust.repair import RepairEngine
from repro.timing.bandwidth import bandwidths_from_costs
from repro.timing.executor import simulate_parallel
from repro.util.rng import derive_seed
from repro.workloads.regular import paper_instance

#: Pipelines compared by default: the paper's winner plus a flat baseline.
DEFAULT_PIPELINES = ("GOLCF+H1+H2", "GSDF")

#: Fault rates swept by default.
DEFAULT_RATES = (0.0, 0.05, 0.1, 0.2)


@dataclass(frozen=True)
class RobustCell:
    """Aggregated repair metrics for one ``(rate, pipeline)`` cell."""

    rate: float
    pipeline: str
    stats: List[RepairStats]
    seconds: float

    def _mean(self, pick: Callable[[RepairStats], float]) -> float:
        return float(np.mean([pick(s) for s in self.stats]))

    @property
    def cost_overhead(self) -> float:
        return self._mean(lambda s: s.cost_overhead)

    @property
    def repair_rounds(self) -> float:
        return self._mean(lambda s: s.repair_rounds)

    @property
    def dummy_fallbacks(self) -> float:
        return self._mean(lambda s: s.dummy_fallbacks)

    @property
    def makespan_stretch(self) -> float:
        return self._mean(lambda s: s.makespan_stretch)

    @property
    def replans(self) -> float:
        return self._mean(lambda s: s.replans)

    @property
    def backoff_total(self) -> float:
        return self._mean(lambda s: s.backoff_total)


@dataclass
class RobustSweepResult:
    """All cells of one failure-rate sweep, plus run metadata."""

    scale: ExperimentScale
    fault_seed: int
    rates: List[float]
    pipelines: List[str]
    cells: List[RobustCell] = field(default_factory=list)
    seconds: float = 0.0

    def cell(self, rate: float, pipeline: str) -> RobustCell:
        """Look up one cell."""
        for c in self.cells:
            if c.rate == rate and c.pipeline == pipeline:
                return c
        raise KeyError((rate, pipeline))

    def series(self, pipeline: str, metric: str = "cost_overhead") -> List[float]:
        """One metric per rate for one pipeline, in rate order."""
        by_rate = {
            c.rate: getattr(c, metric)
            for c in self.cells
            if c.pipeline == pipeline
        }
        return [by_rate[r] for r in self.rates]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict (archived by the ``robust-smoke`` CI job)."""
        return {
            "format": "rtsp-robust-sweep/1",
            "scale": self.scale.name,
            "fault_seed": self.fault_seed,
            "rates": list(self.rates),
            "pipelines": list(self.pipelines),
            "seconds": self.seconds,
            "cells": [
                {
                    "rate": c.rate,
                    "pipeline": c.pipeline,
                    "seconds": c.seconds,
                    "cost_overhead": c.cost_overhead,
                    "repair_rounds": c.repair_rounds,
                    "dummy_fallbacks": c.dummy_fallbacks,
                    "makespan_stretch": c.makespan_stretch,
                    "replans": c.replans,
                    "backoff_total": c.backoff_total,
                    "repetitions": [s.as_dict() for s in c.stats],
                }
                for c in self.cells
            ],
        }


def render_robust_table(result: RobustSweepResult) -> str:
    """ASCII table of the sweep, one row per ``(rate, pipeline)``."""
    header = (
        f"{'rate':>6}  {'pipeline':<16} {'overhead':>9} {'rounds':>7} "
        f"{'replans':>8} {'backoff':>8} {'dummy+':>7} {'stretch':>8}"
    )
    lines = [
        f"Robustness sweep [scale={result.scale.name}, "
        f"fault_seed={result.fault_seed}, {result.seconds:.1f}s]",
        header,
        "-" * len(header),
    ]
    for c in result.cells:
        lines.append(
            f"{c.rate:>6g}  {c.pipeline:<16} {c.cost_overhead:>8.1%} "
            f"{c.repair_rounds:>7.2f} {c.replans:>8.2f} "
            f"{c.backoff_total:>8.3g} {c.dummy_fallbacks:>7.2f} "
            f"{c.makespan_stretch:>8.3f}"
        )
    return "\n".join(lines)


def render_robust_csv(result: RobustSweepResult) -> str:
    """CSV view of the sweep (same rows as the table)."""
    lines = [
        "rate,pipeline,cost_overhead,repair_rounds,replans,backoff_total,"
        "dummy_fallbacks,makespan_stretch"
    ]
    for c in result.cells:
        lines.append(
            f"{c.rate:g},{c.pipeline},{c.cost_overhead:.6g},"
            f"{c.repair_rounds:.6g},{c.replans:.6g},{c.backoff_total:.6g},"
            f"{c.dummy_fallbacks:.6g},{c.makespan_stretch:.6g}"
        )
    return "\n".join(lines) + "\n"


def run_robust_sweep(
    scale: ExperimentScale,
    rates: Sequence[float] = DEFAULT_RATES,
    pipelines: Sequence[str] = DEFAULT_PIPELINES,
    repetitions: Optional[int] = None,
    fault_seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
) -> RobustSweepResult:
    """Run the failure-rate sweep at ``scale``.

    Instances are shared across pipelines within a cell (algorithms are
    compared on identical runs); fault plans are shared across pipelines
    too, so differences in repair overhead are attributable to the
    pipeline, not to fault luck.
    """
    reps = repetitions if repetitions is not None else scale.repetitions
    result = RobustSweepResult(
        scale=scale,
        fault_seed=fault_seed,
        rates=[float(r) for r in rates],
        pipelines=list(pipelines),
    )
    t_start = time.perf_counter()
    for rate in result.rates:
        instances = []
        for rep in range(reps):
            seed = derive_seed(scale.base_seed, "robust", scale.name, rate, rep)
            instances.append(
                paper_instance(
                    replicas=2,
                    num_servers=scale.num_servers,
                    num_objects=scale.num_objects,
                    rng=seed,
                )
            )
        for name in result.pipelines:
            engine = RepairEngine(name)
            t0 = time.perf_counter()
            stats: List[RepairStats] = []
            for rep, instance in enumerate(instances):
                run_seed = derive_seed(
                    scale.base_seed, "robust-pipeline", rate, rep
                )
                # Horizon = the cell's fault-free makespan, so crash and
                # slowdown times land inside the execution window.
                baseline = simulate_parallel(
                    engine.pipeline.run(instance, rng=run_seed),
                    instance,
                    bandwidths_from_costs(instance.costs),
                )
                plan = FaultPlan.generate(
                    instance,
                    rate,
                    seed=derive_seed(fault_seed, "plan", rate, rep),
                    horizon=max(baseline.makespan, 1.0),
                )
                report = engine.execute(instance, plan, rng=run_seed)
                stats.append(repair_stats(report))
            cell = RobustCell(
                rate=rate,
                pipeline=name,
                stats=stats,
                seconds=time.perf_counter() - t0,
            )
            result.cells.append(cell)
            if progress is not None:
                progress(
                    f"robust rate={rate:g} {name}: "
                    f"overhead={cell.cost_overhead:.1%} "
                    f"rounds={cell.repair_rounds:.2f} ({cell.seconds:.1f}s)"
                )
    result.seconds = time.perf_counter() - t_start
    return result
