"""Seed-stable execution of figure sweeps.

Each experiment cell ``(workload, x, repetition)`` derives its own seed
from the scale's base seed, so figures sharing a workload key (e.g. the
dummy-count and cost views of the same experiment) run their pipelines on
*identical* instances, and any cell can be reproduced in isolation.

Because every repetition is seeded independently of execution order, the
sweep parallelizes embarrassingly: ``run_figure(..., workers=N)`` fans
the ``(x, repetition)`` grid out over a process pool and reassembles the
results in deterministic order, producing *bit-identical* figures to a
serial run (verified by the test suite).
"""

from __future__ import annotations

import multiprocessing
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.metrics import schedule_stats
from repro.core.pipeline import build_pipeline
from repro.experiments.config import ExperimentScale, FigureSpec
from repro.obs.context import current_metrics, current_tracer, observed
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, Tracer
from repro.timing.bandwidth import bandwidths_from_costs
from repro.timing.executor import simulate_parallel
from repro.util.rng import derive_seed


@dataclass(frozen=True)
class CellResult:
    """Aggregated metric for one (x, pipeline) cell."""

    x: float
    pipeline: str
    values: List[float]
    seconds: float

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        return float(np.std(self.values))


@dataclass
class FigureResult:
    """All cells of one figure, plus run metadata.

    ``metrics`` is the merged observability snapshot
    (``rtsp-metrics/1``, see :class:`repro.obs.metrics.MetricsRegistry`)
    when a registry was active during the run — aggregated across *all*
    repetitions, including ones that ran on pool workers — and ``None``
    otherwise.
    """

    spec: FigureSpec
    scale: ExperimentScale
    cells: List[CellResult] = field(default_factory=list)
    seconds: float = 0.0
    metrics: Optional[Dict[str, Any]] = None

    def series(self, pipeline: str) -> List[float]:
        """Mean metric per x value for one pipeline, in x order."""
        by_x = {c.x: c.mean for c in self.cells if c.pipeline == pipeline}
        return [by_x[x] for x in self.spec.x_values]

    def cell(self, x: float, pipeline: str) -> CellResult:
        """Look up one cell."""
        for c in self.cells:
            if c.x == x and c.pipeline == pipeline:
                return c
        raise KeyError((x, pipeline))


#: Inherited by forked pool workers (set just before the pool starts, so
#: the spec — which may close over non-picklable factories — never needs
#: to cross a pickle boundary). The two booleans tell workers whether to
#: record a metrics snapshot / a trace fragment for the parent to merge.
_WORKER_CONTEXT: Optional[Tuple[FigureSpec, ExperimentScale, bool, bool]] = None


def _cell_value(spec: FigureSpec, stats) -> float:
    return (
        float(stats.num_dummy_transfers)
        if spec.metric == "dummy_transfers"
        else stats.cost
    )


def _execute_cell(
    spec: FigureSpec,
    scale: ExperimentScale,
    x: float,
    rep: int,
    want_metrics: bool,
    want_trace: bool,
) -> Tuple[
    Dict[str, Tuple[float, float]],
    Optional[Dict[str, Any]],
    Optional[List[Span]],
]:
    """Run every pipeline of one ``(x, repetition)`` cell.

    Seeds are derived exactly as in the serial loop, so the produced
    values are independent of which worker runs the task and when. When
    observability is requested the cell records into a *fresh* registry /
    tracer fragment (returned as a snapshot / span list for the caller to
    merge), so the aggregated stream only depends on merge order — which
    the caller keeps deterministic — never on worker count. Observed
    cells additionally dry-run each schedule through
    :func:`~repro.timing.executor.simulate_parallel` (an obs-only extra
    pass — it never touches the reported values), so executor queue /
    in-flight samples appear in figure metrics too.
    """
    registry = MetricsRegistry() if want_metrics else None
    tracer = Tracer() if want_trace else None
    seed = derive_seed(scale.base_seed, spec.workload_key, scale.name, x, rep)
    run_seed = derive_seed(scale.base_seed, "pipeline", spec.workload_key, x, rep)
    out: Dict[str, Tuple[float, float]] = {}
    with observed(tracer=tracer, metrics=registry):
        active = current_tracer()
        with active.span(
            "repetition", figure=spec.figure_id, x=x, rep=rep
        ):
            instance = spec.make_instance(x, scale, seed)
            bandwidths = (
                bandwidths_from_costs(instance.costs)
                if want_metrics or want_trace
                else None
            )
            for name in spec.pipelines:
                t0 = time.perf_counter()
                with active.span("cell", pipeline=name):
                    schedule = build_pipeline(name).run(instance, rng=run_seed)
                stats = schedule_stats(schedule, instance)
                out[name] = (_cell_value(spec, stats), time.perf_counter() - t0)
                if bandwidths is not None:
                    with active.span("simulate", pipeline=name):
                        sim = simulate_parallel(schedule, instance, bandwidths)
                        active.annotate(makespan=sim.makespan)
    return (
        out,
        registry.snapshot() if registry is not None else None,
        tracer.spans if tracer is not None else None,
    )


def _run_repetition(task: Tuple[float, int]):
    """Pool worker: one ``(x, repetition)`` cell under ``_WORKER_CONTEXT``."""
    x, rep = task
    spec, scale, want_metrics, want_trace = _WORKER_CONTEXT
    out, snapshot, spans = _execute_cell(
        spec, scale, x, rep, want_metrics, want_trace
    )
    return x, rep, out, snapshot, spans


def _run_figure_tasks(
    spec: FigureSpec,
    scale: ExperimentScale,
    reps: int,
    progress: Optional[Callable[[str], None]],
    workers: int,
    metrics: Optional[MetricsRegistry],
    tracer: Optional[Tracer],
) -> FigureResult:
    """Run the ``(x, repetition)`` grid as independent cell tasks.

    ``workers > 1`` fans out over a fork-based process pool; otherwise the
    tasks run in-process, in the same order. Either way, observability
    fragments are merged in deterministic task order, so counter totals
    and the logical trace stream are identical for any worker count.
    """
    global _WORKER_CONTEXT
    result = FigureResult(spec=spec, scale=scale)
    t_start = time.perf_counter()
    tasks = [(x, rep) for x in spec.x_values for rep in range(reps)]
    want_metrics = metrics is not None
    want_trace = tracer is not None
    if workers > 1:
        ctx = multiprocessing.get_context("fork")
        _WORKER_CONTEXT = (spec, scale, want_metrics, want_trace)
        try:
            with ProcessPoolExecutor(
                max_workers=min(workers, max(len(tasks), 1)), mp_context=ctx
            ) as pool:
                outputs = list(pool.map(_run_repetition, tasks))
        finally:
            _WORKER_CONTEXT = None
    else:
        outputs = [
            (x, rep) + _execute_cell(spec, scale, x, rep, want_metrics, want_trace)
            for x, rep in tasks
        ]
    by_cell: Dict[Tuple[float, int], Dict[str, Tuple[float, float]]] = {}
    # Merge fragments in task order — pool.map preserves input order, so
    # the merged stream is independent of scheduling.
    for x, rep, out, snapshot, spans in outputs:
        by_cell[(x, rep)] = out
        if snapshot is not None:
            metrics.merge(snapshot)
        if spans is not None:
            tracer.adopt(spans)
    # Reassemble in the serial loop's deterministic order.
    for x in spec.x_values:
        for name in spec.pipelines:
            samples = [by_cell[(x, rep)][name] for rep in range(reps)]
            cell = CellResult(
                x=x,
                pipeline=name,
                values=[value for value, _ in samples],
                seconds=sum(dt for _, dt in samples),
            )
            result.cells.append(cell)
            if progress is not None:
                progress(
                    f"{spec.figure_id} x={x:g} {name}: "
                    f"mean={cell.mean:.6g} ({cell.seconds:.1f}s)"
                )
    result.seconds = time.perf_counter() - t_start
    if metrics is not None:
        result.metrics = metrics.snapshot()
    return result


def run_figure(
    spec: FigureSpec,
    scale: ExperimentScale,
    repetitions: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    workers: Optional[int] = None,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
) -> FigureResult:
    """Run every cell of ``spec`` at ``scale``.

    ``repetitions`` overrides the scale's default; ``progress`` (if given)
    receives one human-readable line per completed cell. ``workers`` > 1
    distributes repetitions over a process pool; results are bit-identical
    to a serial run because every cell's seed is position-derived. On
    platforms without the ``fork`` start method the runner falls back to
    serial execution, emitting a :class:`RuntimeWarning` and a ``progress``
    line so the degradation is visible.

    ``metrics`` / ``tracer`` default to the active observability context
    (:func:`~repro.obs.context.current_metrics` /
    :func:`~repro.obs.context.current_tracer`). When either is live, every
    repetition records into its own fragment — also on pool workers, whose
    snapshots used to be dropped — and the merged totals land in
    ``FigureResult.metrics`` / the tracer, identically for any ``workers``
    value.
    """
    reps = repetitions if repetitions is not None else scale.repetitions
    if metrics is None:
        metrics = current_metrics()
    if tracer is None:
        active = current_tracer()
        tracer = active if getattr(active, "enabled", False) else None
    elif not getattr(tracer, "enabled", False):
        tracer = None
    obs_active = metrics is not None or tracer is not None
    if workers is not None and workers > 1:
        try:
            multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            message = (
                f"run_figure(workers={workers}): the 'fork' start method is "
                "unavailable on this platform; falling back to serial "
                "execution"
            )
            warnings.warn(message, RuntimeWarning, stacklevel=2)
            if progress is not None:
                progress(message)
        else:
            return _run_figure_tasks(
                spec, scale, reps, progress, workers, metrics, tracer
            )
    if obs_active:
        # Same task loop as the pool path, run in-process: fragments merge
        # in the same order, so totals match any workers value exactly.
        return _run_figure_tasks(spec, scale, reps, progress, 1, metrics, tracer)
    pipelines = {name: build_pipeline(name) for name in spec.pipelines}
    result = FigureResult(spec=spec, scale=scale)
    t_start = time.perf_counter()
    for x in spec.x_values:
        # Instances are shared across pipelines within a cell (the paper
        # compares algorithms on the same runs) and across figures with
        # the same workload key.
        instances = []
        for rep in range(reps):
            seed = derive_seed(
                scale.base_seed, spec.workload_key, scale.name, x, rep
            )
            instances.append(spec.make_instance(x, scale, seed))
        for name, pipeline in pipelines.items():
            t0 = time.perf_counter()
            values: List[float] = []
            for rep, instance in enumerate(instances):
                run_seed = derive_seed(
                    scale.base_seed, "pipeline", spec.workload_key, x, rep
                )
                schedule = pipeline.run(instance, rng=run_seed)
                stats = schedule_stats(schedule, instance)
                values.append(
                    float(stats.num_dummy_transfers)
                    if spec.metric == "dummy_transfers"
                    else stats.cost
                )
            cell = CellResult(
                x=x, pipeline=name, values=values,
                seconds=time.perf_counter() - t0,
            )
            result.cells.append(cell)
            if progress is not None:
                progress(
                    f"{spec.figure_id} x={x:g} {name}: "
                    f"mean={cell.mean:.6g} ({cell.seconds:.1f}s)"
                )
    result.seconds = time.perf_counter() - t_start
    return result
