"""Seed-stable execution of figure sweeps.

Each experiment cell ``(workload, x, repetition)`` derives its own seed
from the scale's base seed, so figures sharing a workload key (e.g. the
dummy-count and cost views of the same experiment) run their pipelines on
*identical* instances, and any cell can be reproduced in isolation.

Because every repetition is seeded independently of execution order, the
sweep parallelizes embarrassingly: ``run_figure(..., workers=N)`` fans
the ``(x, repetition)`` grid out over a process pool and reassembles the
results in deterministic order, producing *bit-identical* figures to a
serial run (verified by the test suite).
"""

from __future__ import annotations

import multiprocessing
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.metrics import schedule_stats
from repro.core.pipeline import build_pipeline
from repro.experiments.config import ExperimentScale, FigureSpec
from repro.util.rng import derive_seed


@dataclass(frozen=True)
class CellResult:
    """Aggregated metric for one (x, pipeline) cell."""

    x: float
    pipeline: str
    values: List[float]
    seconds: float

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        return float(np.std(self.values))


@dataclass
class FigureResult:
    """All cells of one figure, plus run metadata."""

    spec: FigureSpec
    scale: ExperimentScale
    cells: List[CellResult] = field(default_factory=list)
    seconds: float = 0.0

    def series(self, pipeline: str) -> List[float]:
        """Mean metric per x value for one pipeline, in x order."""
        by_x = {c.x: c.mean for c in self.cells if c.pipeline == pipeline}
        return [by_x[x] for x in self.spec.x_values]

    def cell(self, x: float, pipeline: str) -> CellResult:
        """Look up one cell."""
        for c in self.cells:
            if c.x == x and c.pipeline == pipeline:
                return c
        raise KeyError((x, pipeline))


#: Inherited by forked pool workers (set just before the pool starts, so
#: the spec — which may close over non-picklable factories — never needs
#: to cross a pickle boundary).
_WORKER_CONTEXT: Optional[Tuple[FigureSpec, ExperimentScale]] = None


def _cell_value(spec: FigureSpec, stats) -> float:
    return (
        float(stats.num_dummy_transfers)
        if spec.metric == "dummy_transfers"
        else stats.cost
    )


def _run_repetition(task: Tuple[float, int]) -> Tuple[float, int, Dict[str, Tuple[float, float]]]:
    """Pool worker: run every pipeline of one ``(x, repetition)`` cell.

    Seeds are derived exactly as in the serial loop, so the produced
    values are independent of which worker runs the task and when.
    """
    x, rep = task
    spec, scale = _WORKER_CONTEXT
    seed = derive_seed(scale.base_seed, spec.workload_key, scale.name, x, rep)
    instance = spec.make_instance(x, scale, seed)
    run_seed = derive_seed(scale.base_seed, "pipeline", spec.workload_key, x, rep)
    out: Dict[str, Tuple[float, float]] = {}
    for name in spec.pipelines:
        t0 = time.perf_counter()
        schedule = build_pipeline(name).run(instance, rng=run_seed)
        stats = schedule_stats(schedule, instance)
        out[name] = (_cell_value(spec, stats), time.perf_counter() - t0)
    return x, rep, out


def _run_figure_parallel(
    spec: FigureSpec,
    scale: ExperimentScale,
    reps: int,
    progress: Optional[Callable[[str], None]],
    workers: int,
) -> FigureResult:
    """Fan the ``(x, repetition)`` grid over a fork-based process pool."""
    global _WORKER_CONTEXT
    result = FigureResult(spec=spec, scale=scale)
    t_start = time.perf_counter()
    tasks = [(x, rep) for x in spec.x_values for rep in range(reps)]
    ctx = multiprocessing.get_context("fork")
    _WORKER_CONTEXT = (spec, scale)
    try:
        with ProcessPoolExecutor(
            max_workers=min(workers, max(len(tasks), 1)), mp_context=ctx
        ) as pool:
            by_cell = {
                (x, rep): out for x, rep, out in pool.map(_run_repetition, tasks)
            }
    finally:
        _WORKER_CONTEXT = None
    # Reassemble in the serial loop's deterministic order.
    for x in spec.x_values:
        for name in spec.pipelines:
            samples = [by_cell[(x, rep)][name] for rep in range(reps)]
            cell = CellResult(
                x=x,
                pipeline=name,
                values=[value for value, _ in samples],
                seconds=sum(dt for _, dt in samples),
            )
            result.cells.append(cell)
            if progress is not None:
                progress(
                    f"{spec.figure_id} x={x:g} {name}: "
                    f"mean={cell.mean:.6g} ({cell.seconds:.1f}s)"
                )
    result.seconds = time.perf_counter() - t_start
    return result


def run_figure(
    spec: FigureSpec,
    scale: ExperimentScale,
    repetitions: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    workers: Optional[int] = None,
) -> FigureResult:
    """Run every cell of ``spec`` at ``scale``.

    ``repetitions`` overrides the scale's default; ``progress`` (if given)
    receives one human-readable line per completed cell. ``workers`` > 1
    distributes repetitions over a process pool; results are bit-identical
    to a serial run because every cell's seed is position-derived. On
    platforms without the ``fork`` start method the runner falls back to
    serial execution, emitting a :class:`RuntimeWarning` and a ``progress``
    line so the degradation is visible.
    """
    reps = repetitions if repetitions is not None else scale.repetitions
    if workers is not None and workers > 1:
        try:
            multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            message = (
                f"run_figure(workers={workers}): the 'fork' start method is "
                "unavailable on this platform; falling back to serial "
                "execution"
            )
            warnings.warn(message, RuntimeWarning, stacklevel=2)
            if progress is not None:
                progress(message)
        else:
            return _run_figure_parallel(spec, scale, reps, progress, workers)
    pipelines = {name: build_pipeline(name) for name in spec.pipelines}
    result = FigureResult(spec=spec, scale=scale)
    t_start = time.perf_counter()
    for x in spec.x_values:
        # Instances are shared across pipelines within a cell (the paper
        # compares algorithms on the same runs) and across figures with
        # the same workload key.
        instances = []
        for rep in range(reps):
            seed = derive_seed(
                scale.base_seed, spec.workload_key, scale.name, x, rep
            )
            instances.append(spec.make_instance(x, scale, seed))
        for name, pipeline in pipelines.items():
            t0 = time.perf_counter()
            values: List[float] = []
            for rep, instance in enumerate(instances):
                run_seed = derive_seed(
                    scale.base_seed, "pipeline", spec.workload_key, x, rep
                )
                schedule = pipeline.run(instance, rng=run_seed)
                stats = schedule_stats(schedule, instance)
                values.append(
                    float(stats.num_dummy_transfers)
                    if spec.metric == "dummy_transfers"
                    else stats.cost
                )
            cell = CellResult(
                x=x, pipeline=name, values=values,
                seconds=time.perf_counter() - t0,
            )
            result.cells.append(cell)
            if progress is not None:
                progress(
                    f"{spec.figure_id} x={x:g} {name}: "
                    f"mean={cell.mean:.6g} ({cell.seconds:.1f}s)"
                )
    result.seconds = time.perf_counter() - t_start
    return result
