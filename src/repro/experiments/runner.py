"""Seed-stable execution of figure sweeps.

Each experiment cell ``(workload, x, repetition)`` derives its own seed
from the scale's base seed, so figures sharing a workload key (e.g. the
dummy-count and cost views of the same experiment) run their pipelines on
*identical* instances, and any cell can be reproduced in isolation.

Because every repetition is seeded independently of execution order, the
sweep parallelizes embarrassingly: ``run_figure(..., workers=N)`` fans
the ``(x, repetition)`` grid out over a process pool and reassembles the
results in deterministic order, producing *bit-identical* figures to a
serial run (verified by the test suite).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.metrics import schedule_stats
from repro.core.pipeline import build_pipeline
from repro.experiments.config import ExperimentScale, FigureSpec
from repro.obs.context import current_events, current_metrics, current_tracer
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.shard.pool import WorkQueue
from repro.timing.bandwidth import bandwidths_from_costs
from repro.timing.executor import simulate_parallel
from repro.util.rng import derive_seed


@dataclass(frozen=True)
class CellResult:
    """Aggregated metric for one (x, pipeline) cell."""

    x: float
    pipeline: str
    values: List[float]
    seconds: float

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        return float(np.std(self.values))


@dataclass
class FigureResult:
    """All cells of one figure, plus run metadata.

    ``metrics`` is the merged observability snapshot
    (``rtsp-metrics/1``, see :class:`repro.obs.metrics.MetricsRegistry`)
    when a registry was active during the run — aggregated across *all*
    repetitions, including ones that ran on pool workers — and ``None``
    otherwise.
    """

    spec: FigureSpec
    scale: ExperimentScale
    cells: List[CellResult] = field(default_factory=list)
    seconds: float = 0.0
    metrics: Optional[Dict[str, Any]] = None

    def series(self, pipeline: str) -> List[float]:
        """Mean metric per x value for one pipeline, in x order."""
        by_x = {c.x: c.mean for c in self.cells if c.pipeline == pipeline}
        return [by_x[x] for x in self.spec.x_values]

    def cell(self, x: float, pipeline: str) -> CellResult:
        """Look up one cell."""
        for c in self.cells:
            if c.x == x and c.pipeline == pipeline:
                return c
        raise KeyError((x, pipeline))


def _cell_value(spec: FigureSpec, stats) -> float:
    return (
        float(stats.num_dummy_transfers)
        if spec.metric == "dummy_transfers"
        else stats.cost
    )


def _execute_cell(
    spec: FigureSpec,
    scale: ExperimentScale,
    x: float,
    rep: int,
) -> Dict[str, Tuple[float, float]]:
    """Run every pipeline of one ``(x, repetition)`` cell.

    Seeds are derived exactly as in the serial loop, so the produced
    values are independent of which worker runs the task and when.
    Observability comes from the *ambient* context: the work queue
    installs a fresh registry / tracer fragment per task (merged back in
    deterministic order), so the aggregated stream never depends on
    worker count. Observed cells additionally dry-run each schedule
    through :func:`~repro.timing.executor.simulate_parallel` (an
    obs-only extra pass — it never touches the reported values), so
    executor queue / in-flight samples appear in figure metrics too.
    """
    registry = current_metrics()
    active = current_tracer()
    observed = registry is not None or getattr(active, "enabled", False)
    seed = derive_seed(scale.base_seed, spec.workload_key, scale.name, x, rep)
    run_seed = derive_seed(scale.base_seed, "pipeline", spec.workload_key, x, rep)
    out: Dict[str, Tuple[float, float]] = {}
    with active.span("repetition", figure=spec.figure_id, x=x, rep=rep):
        instance = spec.make_instance(x, scale, seed)
        bandwidths = (
            bandwidths_from_costs(instance.costs) if observed else None
        )
        for name in spec.pipelines:
            t0 = time.perf_counter()
            with active.span("cell", pipeline=name):
                schedule = build_pipeline(name).run(instance, rng=run_seed)
            stats = schedule_stats(schedule, instance)
            out[name] = (_cell_value(spec, stats), time.perf_counter() - t0)
            if bandwidths is not None:
                with active.span("simulate", pipeline=name):
                    sim = simulate_parallel(schedule, instance, bandwidths)
                    active.annotate(makespan=sim.makespan)
    return out


def _cell_task(
    context: Tuple[FigureSpec, ExperimentScale], task: Tuple[float, int]
):
    """Work-queue task: one ``(x, repetition)`` cell."""
    spec, scale = context
    x, rep = task
    return x, rep, _execute_cell(spec, scale, x, rep)


def _run_figure_tasks(
    spec: FigureSpec,
    scale: ExperimentScale,
    reps: int,
    progress: Optional[Callable[[str], None]],
    workers: int,
    metrics: Optional[MetricsRegistry],
    tracer: Optional[Tracer],
) -> FigureResult:
    """Run the ``(x, repetition)`` grid as independent cell tasks.

    ``workers > 1`` fans out over the shared fork work queue
    (:class:`repro.shard.pool.WorkQueue`); otherwise the tasks run
    in-process, in the same order. Either way, observability fragments
    are merged in deterministic task order, so counter totals and the
    logical trace stream are identical for any worker count. Platforms
    without ``fork`` degrade to serial execution with a
    :class:`RuntimeWarning` and a ``progress`` line.
    """
    result = FigureResult(spec=spec, scale=scale)
    t_start = time.perf_counter()
    tasks = [(x, rep) for x in spec.x_values for rep in range(reps)]
    queue = WorkQueue(workers=workers, progress=progress)
    outputs = queue.run(
        _cell_task,
        tasks,
        context=(spec, scale),
        metrics=metrics,
        tracer=tracer,
        events=current_events(),
    )
    by_cell: Dict[Tuple[float, int], Dict[str, Tuple[float, float]]] = {}
    for x, rep, out in outputs:
        by_cell[(x, rep)] = out
    # Reassemble in the serial loop's deterministic order.
    for x in spec.x_values:
        for name in spec.pipelines:
            samples = [by_cell[(x, rep)][name] for rep in range(reps)]
            cell = CellResult(
                x=x,
                pipeline=name,
                values=[value for value, _ in samples],
                seconds=sum(dt for _, dt in samples),
            )
            result.cells.append(cell)
            if progress is not None:
                progress(
                    f"{spec.figure_id} x={x:g} {name}: "
                    f"mean={cell.mean:.6g} ({cell.seconds:.1f}s)"
                )
    result.seconds = time.perf_counter() - t_start
    if metrics is not None:
        result.metrics = metrics.snapshot()
    return result


def run_figure(
    spec: FigureSpec,
    scale: ExperimentScale,
    repetitions: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    workers: Optional[int] = None,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
) -> FigureResult:
    """Run every cell of ``spec`` at ``scale``.

    ``repetitions`` overrides the scale's default; ``progress`` (if given)
    receives one human-readable line per completed cell. ``workers`` > 1
    distributes repetitions over a process pool; results are bit-identical
    to a serial run because every cell's seed is position-derived. On
    platforms without the ``fork`` start method the runner falls back to
    serial execution, emitting a :class:`RuntimeWarning` and a ``progress``
    line so the degradation is visible.

    ``metrics`` / ``tracer`` default to the active observability context
    (:func:`~repro.obs.context.current_metrics` /
    :func:`~repro.obs.context.current_tracer`). When either is live, every
    repetition records into its own fragment — also on pool workers, whose
    snapshots used to be dropped — and the merged totals land in
    ``FigureResult.metrics`` / the tracer, identically for any ``workers``
    value.
    """
    reps = repetitions if repetitions is not None else scale.repetitions
    if metrics is None:
        metrics = current_metrics()
    if tracer is None:
        active = current_tracer()
        tracer = active if getattr(active, "enabled", False) else None
    elif not getattr(tracer, "enabled", False):
        tracer = None
    obs_active = metrics is not None or tracer is not None
    if workers is not None and workers > 1:
        # The work queue owns the spawn-only fallback: without a usable
        # ``fork`` start method it warns ("falling back to serial"),
        # tells ``progress``, and runs the same tasks in-process.
        return _run_figure_tasks(
            spec, scale, reps, progress, workers, metrics, tracer
        )
    if obs_active:
        # Same task loop as the pool path, run in-process: fragments merge
        # in the same order, so totals match any workers value exactly.
        return _run_figure_tasks(spec, scale, reps, progress, 1, metrics, tracer)
    pipelines = {name: build_pipeline(name) for name in spec.pipelines}
    result = FigureResult(spec=spec, scale=scale)
    t_start = time.perf_counter()
    for x in spec.x_values:
        # Instances are shared across pipelines within a cell (the paper
        # compares algorithms on the same runs) and across figures with
        # the same workload key.
        instances = []
        for rep in range(reps):
            seed = derive_seed(
                scale.base_seed, spec.workload_key, scale.name, x, rep
            )
            instances.append(spec.make_instance(x, scale, seed))
        for name, pipeline in pipelines.items():
            t0 = time.perf_counter()
            values: List[float] = []
            for rep, instance in enumerate(instances):
                run_seed = derive_seed(
                    scale.base_seed, "pipeline", spec.workload_key, x, rep
                )
                schedule = pipeline.run(instance, rng=run_seed)
                stats = schedule_stats(schedule, instance)
                values.append(
                    float(stats.num_dummy_transfers)
                    if spec.metric == "dummy_transfers"
                    else stats.cost
                )
            cell = CellResult(
                x=x, pipeline=name, values=values,
                seconds=time.perf_counter() - t0,
            )
            result.cells.append(cell)
            if progress is not None:
                progress(
                    f"{spec.figure_id} x={x:g} {name}: "
                    f"mean={cell.mean:.6g} ({cell.seconds:.1f}s)"
                )
    result.seconds = time.perf_counter() - t_start
    return result
