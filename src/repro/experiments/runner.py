"""Seed-stable execution of figure sweeps.

Each experiment cell ``(workload, x, repetition)`` derives its own seed
from the scale's base seed, so figures sharing a workload key (e.g. the
dummy-count and cost views of the same experiment) run their pipelines on
*identical* instances, and any cell can be reproduced in isolation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.analysis.metrics import schedule_stats
from repro.core.pipeline import build_pipeline
from repro.experiments.config import ExperimentScale, FigureSpec
from repro.util.rng import derive_seed


@dataclass(frozen=True)
class CellResult:
    """Aggregated metric for one (x, pipeline) cell."""

    x: float
    pipeline: str
    values: List[float]
    seconds: float

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        return float(np.std(self.values))


@dataclass
class FigureResult:
    """All cells of one figure, plus run metadata."""

    spec: FigureSpec
    scale: ExperimentScale
    cells: List[CellResult] = field(default_factory=list)
    seconds: float = 0.0

    def series(self, pipeline: str) -> List[float]:
        """Mean metric per x value for one pipeline, in x order."""
        by_x = {c.x: c.mean for c in self.cells if c.pipeline == pipeline}
        return [by_x[x] for x in self.spec.x_values]

    def cell(self, x: float, pipeline: str) -> CellResult:
        """Look up one cell."""
        for c in self.cells:
            if c.x == x and c.pipeline == pipeline:
                return c
        raise KeyError((x, pipeline))


def run_figure(
    spec: FigureSpec,
    scale: ExperimentScale,
    repetitions: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> FigureResult:
    """Run every cell of ``spec`` at ``scale``.

    ``repetitions`` overrides the scale's default; ``progress`` (if given)
    receives one human-readable line per completed cell.
    """
    reps = repetitions if repetitions is not None else scale.repetitions
    pipelines = {name: build_pipeline(name) for name in spec.pipelines}
    result = FigureResult(spec=spec, scale=scale)
    t_start = time.perf_counter()
    for x in spec.x_values:
        # Instances are shared across pipelines within a cell (the paper
        # compares algorithms on the same runs) and across figures with
        # the same workload key.
        instances = []
        for rep in range(reps):
            seed = derive_seed(
                scale.base_seed, spec.workload_key, scale.name, x, rep
            )
            instances.append(spec.make_instance(x, scale, seed))
        for name, pipeline in pipelines.items():
            t0 = time.perf_counter()
            values: List[float] = []
            for rep, instance in enumerate(instances):
                run_seed = derive_seed(
                    scale.base_seed, "pipeline", spec.workload_key, x, rep
                )
                schedule = pipeline.run(instance, rng=run_seed)
                stats = schedule_stats(schedule, instance)
                values.append(
                    float(stats.num_dummy_transfers)
                    if spec.metric == "dummy_transfers"
                    else stats.cost
                )
            cell = CellResult(
                x=x, pipeline=name, values=values,
                seconds=time.perf_counter() - t0,
            )
            result.cells.append(cell)
            if progress is not None:
                progress(
                    f"{spec.figure_id} x={x:g} {name}: "
                    f"mean={cell.mean:.6g} ({cell.seconds:.1f}s)"
                )
    result.seconds = time.perf_counter() - t_start
    return result
