"""Multi-epoch scenario runner.

The paper's motivating loop (§2.1) is *recurring*: placement changes
daily and every transition is an RTSP instance. This runner executes a
sequence of instances (from :class:`~repro.workloads.video.VideoRotationModel`
or any iterable) under several pipelines and aggregates per-epoch and
total statistics — the programmatic counterpart of
``examples/video_server_rotation.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.analysis.metrics import ScheduleStats, schedule_stats
from repro.core.pipeline import build_pipeline
from repro.model.instance import RtspInstance
from repro.util.rng import derive_seed


@dataclass(frozen=True)
class EpochResult:
    """One pipeline's outcome on one epoch's transition."""

    epoch: int
    pipeline: str
    stats: ScheduleStats
    seconds: float


@dataclass
class ScenarioResult:
    """All epochs of a scenario run."""

    pipelines: List[str]
    epochs: List[EpochResult] = field(default_factory=list)

    def series(self, pipeline: str, metric: str = "cost") -> List[float]:
        """Per-epoch metric values for one pipeline, in epoch order."""
        rows = sorted(
            (e for e in self.epochs if e.pipeline == pipeline),
            key=lambda e: e.epoch,
        )
        return [float(e.stats.as_dict()[metric]) for e in rows]

    def total(self, pipeline: str, metric: str = "cost") -> float:
        """Sum of a metric over all epochs for one pipeline."""
        return float(np.sum(self.series(pipeline, metric)))

    def savings(
        self, pipeline: str, baseline: str, metric: str = "cost"
    ) -> float:
        """Relative total-metric saving of ``pipeline`` over ``baseline``."""
        base = self.total(baseline, metric)
        if base == 0:
            return 0.0
        return 1.0 - self.total(pipeline, metric) / base

    def summary(self) -> str:
        """Aligned totals table (cost and dummy transfers per pipeline)."""
        lines = [
            f"{'pipeline':<20} {'total cost':>16} {'total dummies':>14}"
        ]
        for name in self.pipelines:
            lines.append(
                f"{name:<20} {self.total(name, 'cost'):>16,.0f} "
                f"{self.total(name, 'num_dummy_transfers'):>14,.0f}"
            )
        return "\n".join(lines)


def run_scenario(
    instances: Iterable[RtspInstance],
    pipelines: List[str],
    base_seed: int = 0,
) -> ScenarioResult:
    """Run every pipeline over every epoch's instance.

    Each (epoch, pipeline) cell gets a stable derived seed, so pipelines
    are compared on identical runs and any cell is reproducible.
    """
    built = {name: build_pipeline(name) for name in pipelines}
    result = ScenarioResult(pipelines=list(pipelines))
    for epoch, instance in enumerate(instances):
        for name, pipeline in built.items():
            seed = derive_seed(base_seed, "scenario", epoch, name)
            t0 = time.perf_counter()
            schedule = pipeline.run(instance, rng=seed)
            seconds = time.perf_counter() - t0
            result.epochs.append(
                EpochResult(
                    epoch=epoch,
                    pipeline=name,
                    stats=schedule_stats(schedule, instance),
                    seconds=seconds,
                )
            )
    return result
