"""repro.flat — structure-of-arrays builder core.

A drop-in fast path for the schedule builders: flat int32 action
buffers instead of per-action dataclasses, trusted state mutators
instead of per-action validation, and wave-batched selector refreshes
instead of per-object loops — producing schedules byte-identical to the
reference object path (enforced by the differential suites under
``tests/flat/`` and ``tests/properties/``).

Selection between the two cores is a pure performance decision; see
:mod:`repro.flat.config` for the ``auto``/``on``/``off`` policy.
"""

from repro.flat.buffers import FlatActionBuffer, FlatSchedule
from repro.flat.builders import flat_build, flat_builder_names
from repro.flat.config import (
    FLAT_AUTO_CELLS,
    flat_mode,
    flat_mode_override,
    set_flat_mode,
    use_flat,
)
from repro.flat.selector import FlatTransferSelector

__all__ = [
    "FLAT_AUTO_CELLS",
    "FlatActionBuffer",
    "FlatSchedule",
    "FlatTransferSelector",
    "flat_build",
    "flat_builder_names",
    "flat_mode",
    "flat_mode_override",
    "set_flat_mode",
    "use_flat",
]
