"""Arena-style action storage for the flat builder core.

:class:`FlatActionBuffer` records a schedule as four parallel ``int32``
columns (kind / target-or-server / object / source) instead of a list of
:class:`~repro.model.actions.Transfer` / :class:`~repro.model.actions.
Delete` dataclasses — appending is two array stores and a counter bump,
and the whole build allocates a handful of arrays instead of one object
per action.

:class:`FlatSchedule` is the lazy bridge back to the object API: it *is*
a :class:`~repro.model.schedule.Schedule`, but its action list
materializes from the buffer only when something actually iterates,
indexes, or edits it (validation, optimizers, serialization). Pure
accounting — ``len`` and :meth:`~FlatSchedule.cost` — is answered
straight from the columns, vectorized. Materialized actions hold plain
Python ints, so reprs, equality, and JSON round-trips are
indistinguishable from an object-built schedule.
"""

from __future__ import annotations

from functools import cached_property
from typing import List

import numpy as np

from repro.model.actions import Action
from repro.model.instance import RtspInstance
from repro.model.schedule import (
    KIND_DELETE,
    KIND_TRANSFER,
    Schedule,
    actions_from_arrays,
)

__all__ = ["FlatActionBuffer", "FlatSchedule", "KIND_TRANSFER", "KIND_DELETE"]


class FlatActionBuffer:
    """Growable structure-of-arrays action log (amortized O(1) append)."""

    __slots__ = ("_kind", "_primary", "_obj", "_source", "_len")

    def __init__(self, capacity: int = 256) -> None:
        capacity = max(int(capacity), 16)
        self._kind = np.empty(capacity, dtype=np.int32)
        self._primary = np.empty(capacity, dtype=np.int32)
        self._obj = np.empty(capacity, dtype=np.int32)
        self._source = np.empty(capacity, dtype=np.int32)
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def _grow(self) -> None:
        new_cap = 2 * self._kind.shape[0]
        for name in ("_kind", "_primary", "_obj", "_source"):
            old = getattr(self, name)
            fresh = np.empty(new_cap, dtype=np.int32)
            fresh[: self._len] = old[: self._len]
            setattr(self, name, fresh)

    def append_transfer(self, target: int, obj: int, source: int) -> None:
        """Record ``T(target, obj, source)``."""
        n = self._len
        if n == self._kind.shape[0]:
            self._grow()
        self._kind[n] = KIND_TRANSFER
        self._primary[n] = target
        self._obj[n] = obj
        self._source[n] = source
        self._len = n + 1

    def append_delete(self, server: int, obj: int) -> None:
        """Record ``D(server, obj)``."""
        n = self._len
        if n == self._kind.shape[0]:
            self._grow()
        self._kind[n] = KIND_DELETE
        self._primary[n] = server
        self._obj[n] = obj
        self._source[n] = 0
        self._len = n + 1

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def columns(self):
        """``(kind, primary, obj, source)`` trimmed read-only views."""
        n = self._len
        views = []
        for arr in (self._kind, self._primary, self._obj, self._source):
            view = arr[:n].view()
            view.setflags(write=False)
            views.append(view)
        return tuple(views)

    def transfer_mask(self) -> np.ndarray:
        """Boolean mask of transfer rows."""
        return self._kind[: self._len] == KIND_TRANSFER

    def to_actions(self) -> List[Action]:
        """Materialize the log as action objects (plain-int fields)."""
        n = self._len
        return actions_from_arrays(
            self._kind[:n].tolist(),
            self._primary[:n].tolist(),
            self._obj[:n].tolist(),
            self._source[:n].tolist(),
        )


class FlatSchedule(Schedule):
    """A :class:`Schedule` backed by a :class:`FlatActionBuffer`.

    The action list is a :func:`functools.cached_property`: until first
    access every sequence operation the class inherits stays available
    (it materializes on demand), while ``len`` and :meth:`cost` answer
    from the arena without creating a single action object. After
    materialization the instance behaves exactly like a plain
    ``Schedule`` (mutations edit the materialized list; the buffer is
    not written back).
    """

    def __init__(self, buffer: FlatActionBuffer) -> None:
        # Deliberately no super().__init__: _actions is lazy.
        self._buffer = buffer

    @cached_property
    def _actions(self) -> List[Action]:  # type: ignore[override]
        return self._buffer.to_actions()

    @property
    def materialized(self) -> bool:
        """Whether the action list has been built yet."""
        return "_actions" in self.__dict__

    def __len__(self) -> int:
        if not self.materialized:
            return len(self._buffer)
        return len(self._actions)

    def cost(self, instance: RtspInstance) -> float:
        """Implementation cost, vectorized over the arena when possible.

        Summation runs left-to-right over the schedule order (via
        ``math.fsum``-free sequential adds on the gathered terms), the
        same accumulation :meth:`Schedule.cost` performs over action
        objects, so both implementations return bit-identical totals.
        """
        if self.materialized:
            return super().cost(instance)
        kind, primary, obj, source = self._buffer.columns()
        mask = kind == KIND_TRANSFER
        if not mask.any():
            return 0.0
        terms = instance.sizes[obj[mask]] * instance.costs[
            primary[mask], source[mask]
        ]
        total = 0.0
        for term in terms.tolist():
            total += term
        return total
