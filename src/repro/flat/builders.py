"""Flat (structure-of-arrays) implementations of the schedule builders.

Each ``flat_*`` function mirrors its reference builder decision-for-
decision — same RNG consumption, same work-list orders, same
first-minimum tie-breaks — while eliminating the per-action object
machinery from the hot loop:

* actions land in a :class:`~repro.flat.buffers.FlatActionBuffer`
  (int32 columns) instead of ``Transfer``/``Delete`` dataclasses;
* state mutations go through the trusted fast mutators
  (:meth:`~repro.model.state.SystemState.apply_transfer_trusted` /
  ``apply_delete_trusted``) — no per-action validation, because every
  emitted action is valid by the same construction argument the
  reference builders rely on (and the differential suite replays flat
  schedules through the strict oracle to prove it);
* benefit/cost refreshes are wave-batched through
  :class:`~repro.flat.selector.FlatTransferSelector`.

The byte-identity contract — ``flat_build(name, instance, rng=s)``
equals ``get_builder(name).build(instance, rng=s)`` action-for-action —
is enforced three ways: the golden differential families
(``tests/flat/``), a hypothesis property over random instances
(``tests/properties/test_flat_properties.py``), and the scaling
benchmark's built-in verification (``benchmarks/scale_bench.py``).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.base import shuffled_pairs
from repro.core.builders.common import (
    EvictionBenefitCache,
    pending_deletion_map,
    pending_transfer_map,
)
from repro.flat.buffers import FlatActionBuffer, FlatSchedule
from repro.flat.selector import FlatTransferSelector
from repro.model.instance import RtspInstance
from repro.model.state import CAPACITY_EPS, SystemState
from repro.obs.context import current_events, current_metrics
from repro.util.errors import ConfigurationError
from repro.util.rng import ensure_rng

#: Transfers between ``builder.progress`` heartbeat events. A count
#: boundary, not a clock, so the event stream stays deterministic.
_HEARTBEAT_EVERY = 256


class _BuildCounters:
    """Metrics parity with the reference path (no-op when obs is off)."""

    __slots__ = (
        "transfers",
        "dummy_transfers",
        "evictions",
        "_events",
        "_delivered",
    )

    def __init__(self) -> None:
        registry = current_metrics()
        if registry is None:
            self.transfers = None
            self.dummy_transfers = None
            self.evictions = None
        else:
            self.transfers = registry.counter("builder.transfers")
            self.dummy_transfers = registry.counter("builder.dummy_transfers")
            self.evictions = registry.counter("builder.evictions")
        self._events = current_events()
        self._delivered = 0

    def transferred(self, source: int, dummy: int) -> None:
        if self.transfers is not None:
            self.transfers.value += 1
            if source == dummy:
                self.dummy_transfers.value += 1
        if self._events is not None:
            self._delivered += 1
            if self._delivered % _HEARTBEAT_EVERY == 0:
                self._events.emit(
                    "builder.progress", transfers=self._delivered
                )

    def evicted(self, count: int) -> None:
        if self.evictions is not None and count:
            self.evictions.value += count


def _deliver(
    buf: FlatActionBuffer,
    state: SystemState,
    counters: _BuildCounters,
    target: int,
    obj: int,
) -> None:
    """Transfer ``obj`` to ``target`` from the nearest current source."""
    source = state.nearest(target, obj)
    state.apply_transfer_trusted(target, obj)
    buf.append_transfer(target, obj, source)
    counters.transferred(source, state.dummy)


def _evict_for(
    buf: FlatActionBuffer,
    state: SystemState,
    counters: _BuildCounters,
    target: int,
    obj: int,
    deletions: Dict[int, List[int]],
    benefit_cache: EvictionBenefitCache,
) -> List[int]:
    """Flat twin of :func:`repro.core.builders.common.evict_for`.

    Identical victim selection (eq. 4 benefits through the shared
    cache, computed once per call, first-minimum tie-break); deletions
    land in the buffer via the trusted mutator.
    """
    instance = state.instance
    candidates = deletions.get(target)
    victims: List[int] = []
    free = state.free_array()
    size = float(instance.sizes[obj])
    benefits: List[float] = []
    while free[target] + CAPACITY_EPS < size:
        assert candidates, (
            f"no superfluous replica left at S_{target} while O_{obj} "
            "does not fit; X_new would violate its capacity"
        )
        if not victims:
            benefits = [benefit_cache.get(target, k) for k in candidates]
        best_pos, best_benefit = 0, None
        for pos, benefit in enumerate(benefits):
            if best_benefit is None or benefit < best_benefit:
                best_pos, best_benefit = pos, benefit
        victim = candidates.pop(best_pos)
        benefits.pop(best_pos)
        state.apply_delete_trusted(target, victim)
        buf.append_delete(target, victim)
        victims.append(victim)
    counters.evicted(len(victims))
    return victims


def _flush_deletions(
    buf: FlatActionBuffer,
    state: SystemState,
    deletions: Dict[int, List[int]],
    gen,
) -> None:
    """Flat twin of :func:`~repro.core.builders.common.flush_deletions`
    (same leftover order, same shuffle stream)."""
    leftovers = [
        (server, obj) for server, objs in deletions.items() for obj in objs
    ]
    gen.shuffle(leftovers)
    for server, obj in leftovers:
        state.apply_delete_trusted(server, obj)
        buf.append_delete(server, obj)
    deletions.clear()


#: Same crossover as ``PendingTransferSelector._SCALAR_BLOCK``: below
#: this ``pending x candidates`` block size the Python scan beats the
#: NumPy gather's per-call overhead.
_SCALAR_BLOCK = 128


def _cheapest_target(
    state: SystemState, pend: List[int], obj: int
) -> int:
    """First-minimum position of the cheapest pending target of ``obj``.

    Adaptive like the selector refresh: a scalar scan for tiny blocks
    (the common case at the paper's replica counts), one padded gather +
    row-min over ``pend x (holders + dummy)`` otherwise. Both keep the
    first minimum exactly like the reference's ``unit < best_unit``
    scan, and the candidate multisets match the reference's
    ``nearest_cost`` calls, so the chosen position is identical.
    """
    holders = state.index.holders(obj)
    dummy = state.dummy
    costs = state.instance.costs
    if len(pend) * (len(holders) + 1) <= _SCALAR_BLOCK:
        best_pos, best_unit = 0, None
        for pos, t in enumerate(pend):
            row = costs[t]
            unit = row[dummy]
            for j in holders:
                c = row[j]
                if c < unit:
                    unit = c
            if best_unit is None or unit < best_unit:
                best_pos, best_unit = pos, unit
        return best_pos
    rows = np.asarray(pend, dtype=np.intp)
    cand = np.full((len(pend), 1 + len(holders)), dummy, dtype=np.intp)
    if holders:
        cand[:, 1:] = list(holders)
    units = costs[rows[:, None], cand].min(axis=1)
    return int(np.argmin(units))


def flat_golcf(instance: RtspInstance, rng=None) -> FlatSchedule:
    """Flat GOLCF (cheapest object served whole; see ``golcf.py``)."""
    gen = ensure_rng(rng)
    state = SystemState(instance)
    counters = _BuildCounters()
    out, sup = instance.diff_counts()
    buf = FlatActionBuffer(out + sup)
    targets, waiting = pending_transfer_map(instance, gen)
    deletions = pending_deletion_map(instance, gen)
    selector = FlatTransferSelector(state, targets)
    benefits = EvictionBenefitCache(state, waiting)
    while not selector.exhausted:
        best_obj, _, _ = selector.best()
        pend = targets.pop(best_obj)
        selector.pop_object(best_obj)
        obj_waiting = waiting[best_obj]
        while pend:
            best_pos = _cheapest_target(state, pend, best_obj)
            target = pend.pop(best_pos)
            victims = _evict_for(
                buf, state, counters, target, best_obj, deletions, benefits
            )
            if victims:
                selector.mark_dirty_many(victims)
            _deliver(buf, state, counters, target, best_obj)
            obj_waiting.discard(target)
    _flush_deletions(buf, state, deletions, gen)
    return FlatSchedule(buf)


def flat_gmc(instance: RtspInstance, rng=None) -> FlatSchedule:
    """Flat GMC (globally cheapest pending transfer; see ``gmc.py``)."""
    gen = ensure_rng(rng)
    state = SystemState(instance)
    counters = _BuildCounters()
    out, sup = instance.diff_counts()
    buf = FlatActionBuffer(out + sup)
    targets, waiting = pending_transfer_map(instance, gen)
    deletions = pending_deletion_map(instance, gen)
    selector = FlatTransferSelector(state, targets)
    benefits = EvictionBenefitCache(state, waiting)
    while not selector.exhausted:
        best_obj, best_pos, target = selector.best()
        selector.pop_target(best_obj, best_pos)
        victims = _evict_for(
            buf, state, counters, target, best_obj, deletions, benefits
        )
        if victims:
            selector.mark_dirty_many(victims)
        _deliver(buf, state, counters, target, best_obj)
        selector.mark_dirty(best_obj)
        waiting[best_obj].discard(target)
    _flush_deletions(buf, state, deletions, gen)
    return FlatSchedule(buf)


def flat_ar(instance: RtspInstance, rng=None) -> FlatSchedule:
    """Flat AR (uniform draw over valid pending actions; see ``ar.py``)."""
    gen = ensure_rng(rng)
    state = SystemState(instance)
    counters = _BuildCounters()
    deletions = shuffled_pairs(instance.superfluous(), gen)
    transfers = shuffled_pairs(instance.outstanding(), gen)
    buf = FlatActionBuffer(len(deletions) + len(transfers))
    t_target = np.fromiter(
        (t for t, _ in transfers), dtype=np.intp, count=len(transfers)
    )
    t_obj = np.fromiter(
        (k for _, k in transfers), dtype=np.intp, count=len(transfers)
    )
    t_size = instance.sizes[t_obj]
    alive = np.ones(len(transfers), dtype=bool)
    n_alive = len(transfers)
    free = state.free_array()
    while deletions or n_alive:
        ready = np.flatnonzero(
            alive & (free[t_target] + CAPACITY_EPS >= t_size)
        )
        total = len(deletions) + ready.size
        assert total, (
            "AR is stuck: transfers pending without space and no "
            "deletion left; X_new would violate a capacity"
        )
        draw = int(gen.integers(total))
        if draw < len(deletions):
            server, obj = deletions.pop(draw)
            state.apply_delete_trusted(server, obj)
            buf.append_delete(server, obj)
        else:
            pos = int(ready[draw - len(deletions)])
            alive[pos] = False
            n_alive -= 1
            _deliver(
                buf, state, counters, int(t_target[pos]), int(t_obj[pos])
            )
    return FlatSchedule(buf)


def flat_rdf(instance: RtspInstance, rng=None) -> FlatSchedule:
    """Flat RDF (all deletions first, then transfers; see ``rdf.py``)."""
    gen = ensure_rng(rng)
    state = SystemState(instance)
    counters = _BuildCounters()
    deletions = shuffled_pairs(instance.superfluous(), gen)
    transfers = shuffled_pairs(instance.outstanding(), gen)
    buf = FlatActionBuffer(len(deletions) + len(transfers))
    for server, obj in deletions:
        state.apply_delete_trusted(server, obj)
        buf.append_delete(server, obj)
    for target, obj in transfers:
        _deliver(buf, state, counters, target, obj)
    return FlatSchedule(buf)


def flat_gsdf(instance: RtspInstance, rng=None) -> FlatSchedule:
    """Flat GSDF (per-server delete/fetch groups; see ``gsdf.py``)."""
    gen = ensure_rng(rng)
    state = SystemState(instance)
    counters = _BuildCounters()
    superfluous = instance.superfluous()
    outstanding = instance.outstanding()
    out, sup = instance.diff_counts()
    buf = FlatActionBuffer(out + sup)
    order = list(range(instance.num_servers))
    gen.shuffle(order)
    for server in order:
        dels = [
            (server, int(k)) for k in np.flatnonzero(superfluous[server])
        ]
        gen.shuffle(dels)
        for srv, obj in dels:
            state.apply_delete_trusted(srv, obj)
            buf.append_delete(srv, obj)
        incoming = [int(k) for k in np.flatnonzero(outstanding[server])]
        gen.shuffle(incoming)
        for obj in incoming:
            _deliver(buf, state, counters, server, obj)
    return FlatSchedule(buf)


_FLAT_BUILDERS = {
    "GOLCF": flat_golcf,
    "GMC": flat_gmc,
    "AR": flat_ar,
    "RDF": flat_rdf,
    "GSDF": flat_gsdf,
}


def flat_builder_names() -> List[str]:
    """Builders with a flat implementation."""
    return sorted(_FLAT_BUILDERS)


def flat_build(
    name: str, instance: RtspInstance, rng=None
) -> FlatSchedule:
    """Run builder ``name``'s flat implementation.

    Byte-identical to ``get_builder(name).build(instance, rng=rng)``.
    """
    try:
        build = _FLAT_BUILDERS[name.upper()]
    except KeyError:
        raise ConfigurationError(
            f"no flat implementation for builder {name!r}; "
            f"available: {flat_builder_names()}"
        ) from None
    return build(instance, rng=rng)
