"""Flat-core selection policy.

The flat builder core (:mod:`repro.flat.builders`) produces schedules
byte-identical to the reference object path, so switching between them
is purely a performance decision. Resolution order:

1. an explicit :func:`set_flat_mode` call (the experiments CLI's
   ``--flat`` flag lands here);
2. the ``RTSP_FLAT`` environment variable (``auto`` / ``on`` / ``off``,
   with ``1``/``0`` accepted as aliases);
3. the default, ``auto``: use the flat core once the instance has at
   least :data:`FLAT_AUTO_CELLS` placement cells (``M x N``). Below the
   threshold the reference path's per-call overhead is negligible and
   its metrics instrumentation (candidate-scan counters) stays exactly
   as the observability tests expect.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.model.instance import RtspInstance
from repro.util.errors import ConfigurationError

#: ``M x N`` placement-cell count at which ``auto`` switches to the
#: flat core (~100 servers x 500 objects).
FLAT_AUTO_CELLS = 50_000

_MODES = ("auto", "on", "off")
_ALIASES = {"1": "on", "0": "off", "true": "on", "false": "off"}
_mode: Optional[str] = None


def set_flat_mode(mode: Optional[str]) -> None:
    """Force the flat-core policy for this process.

    ``None`` restores environment/default resolution.
    """
    global _mode
    if mode is None:
        _mode = None
        return
    normalized = _ALIASES.get(str(mode).lower(), str(mode).lower())
    if normalized not in _MODES:
        raise ConfigurationError(
            f"flat mode must be one of {_MODES}, got {mode!r}"
        )
    _mode = normalized


@contextmanager
def flat_mode_override(mode: Optional[str]) -> Iterator[None]:
    """Scoped :func:`set_flat_mode`: restore the previous mode on exit.

    ``_mode`` is a process global, so a bare :func:`set_flat_mode` call
    leaks the override into everything that runs later in the process —
    including, before this existed, every CLI invocation and benchmark
    that raised midway. Prefer this context manager anywhere the
    override has a natural scope; the previous mode is restored even
    when the body raises. ``None`` is a valid override (force
    environment/default resolution for the block).
    """
    global _mode
    previous = _mode
    set_flat_mode(mode)
    try:
        yield
    finally:
        _mode = previous


def flat_mode() -> str:
    """The currently-resolved policy (``auto``/``on``/``off``)."""
    if _mode is not None:
        return _mode
    env = os.environ.get("RTSP_FLAT")
    if env is None:
        return "auto"
    normalized = _ALIASES.get(env.lower(), env.lower())
    if normalized not in _MODES:
        raise ConfigurationError(
            f"RTSP_FLAT must be one of {_MODES} (or 1/0), got {env!r}"
        )
    return normalized


def use_flat(instance: RtspInstance) -> bool:
    """Whether builders should take the flat path for ``instance``."""
    mode = flat_mode()
    if mode == "on":
        return True
    if mode == "off":
        return False
    return instance.num_servers * instance.num_objects >= FLAT_AUTO_CELLS
