"""Wave-batched pending-transfer selector for the flat core.

:class:`FlatTransferSelector` shares layout and tie-breaking with the
reference :class:`~repro.core.builders.common.PendingTransferSelector`
(one flat cost array in work-list order, first-minimum ``argmin``), but
replaces the per-object refresh loop with a single batched refresh per
query wave: all dirty objects' pending entries are concatenated, their
candidate source sets are padded into one rectangular block, and one
gather + one masked row-min prices every stale slice at once.

Padding uses the dummy server: it is already a candidate for every
entry, its cost strictly exceeds every real link cost (paper §3.3), and
duplicating it cannot change a minimum — so the padded row-min equals
the scalar scan's result bit-for-bit. No object is promoted to the
nearest-source index's cached regime; at the paper's replica counts the
holder sets are tiny and the padded block stays narrow.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Iterable, List

import numpy as np

from repro.core.builders.common import PendingTransferSelector
from repro.model.state import SystemState
from repro.obs.context import current_events

__all__ = ["FlatTransferSelector"]


class FlatTransferSelector(PendingTransferSelector):
    """Reference selector semantics with one batched refresh per wave."""

    def __init__(
        self, state: SystemState, targets: Dict[int, List[int]]
    ) -> None:
        super().__init__(state, targets)
        # Captured once (zero-overhead-when-off contract); wave numbers
        # restart per selector, so heartbeats are deterministic.
        self._events = current_events()
        self._wave_no = 0

    def mark_dirty_many(self, objs: Iterable[int]) -> None:
        """Batch :meth:`mark_dirty` (replicator sets changed)."""
        pend = self._pend
        dirty = self._dirty
        for obj in objs:
            if obj in pend:
                dirty.add(obj)

    def _refresh_wave(self) -> None:
        """Reprice every dirty object's slice, batching the big ones.

        Adaptive like the parent's per-object refresh: objects whose
        ``pending x candidates`` block fits in ``_SCALAR_BLOCK`` go
        through the inherited scalar refresh (NumPy per-call overhead
        would dominate), and the rest are concatenated into one padded
        gather + row-min.
        """
        dirty = [obj for obj in self._dirty if self._pend.get(obj)]
        self._dirty.clear()
        if not dirty:
            return
        index = self._index
        dummy = self._dummy
        wave = []
        width = 0
        total = 0
        for obj in dirty:
            holders = index.holders(obj)
            n = len(self._pend[obj])
            if n * (len(holders) + 1) <= self._SCALAR_BLOCK:
                self._refresh_obj(obj)
                continue
            wave.append((obj, holders, n))
            width = max(width, 1 + len(holders))
            total += n
        if not wave:
            return
        if self._events is not None:
            # Wave-boundary heartbeat: emitted only for batched waves
            # (single-object repricings take the scalar path and are not
            # wave boundaries). Wave index and sizes depend only on
            # algorithm state, never on wall time or worker count.
            self._wave_no += 1
            self._events.emit(
                "builder.wave",
                wave=self._wave_no,
                objects=len(dirty),
                batched=len(wave),
            )
        rows = np.empty(total, dtype=np.intp)      # pending targets
        dst = np.empty(total, dtype=np.intp)       # slots in self._cost
        sizes = np.empty(total, dtype=np.float64)  # object sizes
        cand = np.full((total, width), dummy, dtype=np.intp)
        if self._c_scanned is not None:
            self._c_refreshes.value += len(wave)
        pos = 0
        for obj, holders, n in wave:
            base = self._starts[self._slot[obj]]
            rows[pos : pos + n] = self._pend[obj]
            dst[pos : pos + n] = np.arange(base, base + n)
            sizes[pos : pos + n] = float(self._sizes[obj])
            if holders:
                cand[pos : pos + n, 1 : 1 + len(holders)] = list(holders)
            if self._c_scanned is not None:
                self._c_scanned.value += n * (len(holders) + 1)
            pos += n
        # One gather + one row-min prices the whole wave. Every row's
        # candidate multiset is {dummy (>= once)} ∪ holders — exactly
        # the scalar scan's candidates — so the min value is identical.
        block = self._costs[rows[:, None], cand]
        self._cost[dst] = sizes * block.min(axis=1)

    def best(self):
        """``(obj, position, target)`` of the cheapest pending transfer."""
        if self._c_queries is not None:
            self._c_queries.value += 1
        if self._dirty:
            self._refresh_wave()
        idx = int(np.argmin(self._cost))
        slot = bisect_right(self._starts, idx) - 1
        obj = self._objs[slot]
        pos = idx - self._starts[slot]
        return obj, pos, self._pend[obj][pos]
