"""Serialization: JSON interchange for instances, schedules and faults.

A deployment tool computing placements (or an external placement
optimiser) can hand RTSP instances to this library, and the produced
schedules can be shipped to an execution agent. The wire format is
versioned JSON:

* ``rtsp-instance/1`` — sizes, capacities, the extended cost matrix
  (dummy last), ``X_old`` and ``X_new``;
* ``rtsp-schedule/1`` — a list of compact action tuples
  (``["T", target, obj, source]`` / ``["D", server, obj]``);
* ``rtsp-fault-plan/1`` — a :class:`repro.robust.FaultPlan`'s transfer
  faults, crashes and slowdowns plus its generation knobs;
* ``rtsp-failure-trace/1`` — a failure-aware event log
  (``[status, position, start, finish, action]`` rows).
"""

from repro.io.json_format import (
    failure_trace_from_dict,
    failure_trace_to_dict,
    fault_plan_from_dict,
    fault_plan_to_dict,
    instance_from_dict,
    instance_to_dict,
    load_failure_trace,
    load_fault_plan,
    load_instance,
    load_schedule,
    save_failure_trace,
    save_fault_plan,
    save_instance,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)

__all__ = [
    "failure_trace_from_dict",
    "failure_trace_to_dict",
    "fault_plan_from_dict",
    "fault_plan_to_dict",
    "instance_from_dict",
    "instance_to_dict",
    "load_failure_trace",
    "load_fault_plan",
    "load_instance",
    "load_schedule",
    "save_failure_trace",
    "save_fault_plan",
    "save_instance",
    "save_schedule",
    "schedule_from_dict",
    "schedule_to_dict",
]
