"""Serialization: JSON interchange for instances and schedules.

A deployment tool computing placements (or an external placement
optimiser) can hand RTSP instances to this library, and the produced
schedules can be shipped to an execution agent. The wire format is
versioned JSON:

* ``rtsp-instance/1`` — sizes, capacities, the extended cost matrix
  (dummy last), ``X_old`` and ``X_new``;
* ``rtsp-schedule/1`` — a list of compact action tuples
  (``["T", target, obj, source]`` / ``["D", server, obj]``).
"""

from repro.io.json_format import (
    instance_from_dict,
    instance_to_dict,
    load_instance,
    load_schedule,
    save_instance,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)

__all__ = [
    "instance_from_dict",
    "instance_to_dict",
    "load_instance",
    "load_schedule",
    "save_instance",
    "save_schedule",
    "schedule_from_dict",
    "schedule_to_dict",
]
