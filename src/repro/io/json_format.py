"""Versioned JSON (de)serialization of instances, schedules, fault plans
and failure traces."""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence, Union

import numpy as np

from repro.model.actions import Action, Delete, Transfer
from repro.model.instance import RtspInstance
from repro.model.schedule import Schedule
from repro.robust.faults import (
    FaultPlan,
    LinkSlowdown,
    ServerCrash,
    TransferFault,
)
from repro.timing.faulted import FaultedAction
from repro.util.errors import ConfigurationError

INSTANCE_FORMAT = "rtsp-instance/1"
SCHEDULE_FORMAT = "rtsp-schedule/1"
FAULT_PLAN_FORMAT = "rtsp-fault-plan/1"
FAILURE_TRACE_FORMAT = "rtsp-failure-trace/1"

PathLike = Union[str, "os.PathLike[str]"]  # noqa: F821 - doc only


# ----------------------------------------------------------------------
# instances
# ----------------------------------------------------------------------
def instance_to_dict(instance: RtspInstance) -> Dict[str, Any]:
    """Serialise an instance (extended cost matrix included)."""
    return {
        "format": INSTANCE_FORMAT,
        "num_servers": instance.num_servers,
        "num_objects": instance.num_objects,
        "sizes": instance.sizes.tolist(),
        "capacities": instance.capacities.tolist(),
        "costs": instance.costs.tolist(),
        "x_old": instance.x_old.tolist(),
        "x_new": instance.x_new.tolist(),
    }


def instance_from_dict(data: Dict[str, Any]) -> RtspInstance:
    """Deserialise (and fully re-validate) an instance."""
    if data.get("format") != INSTANCE_FORMAT:
        raise ConfigurationError(
            f"expected format {INSTANCE_FORMAT!r}, got {data.get('format')!r}"
        )
    try:
        return RtspInstance.create(
            sizes=np.asarray(data["sizes"], dtype=np.float64),
            capacities=np.asarray(data["capacities"], dtype=np.float64),
            costs=np.asarray(data["costs"], dtype=np.float64),
            x_old=np.asarray(data["x_old"], dtype=np.int8),
            x_new=np.asarray(data["x_new"], dtype=np.int8),
        )
    except KeyError as missing:
        raise ConfigurationError(f"instance JSON missing key {missing}") from None


def save_instance(instance: RtspInstance, path) -> None:
    """Write an instance to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(instance_to_dict(instance), fh)


def load_instance(path) -> RtspInstance:
    """Read an instance from a JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        return instance_from_dict(json.load(fh))


# ----------------------------------------------------------------------
# schedules
# ----------------------------------------------------------------------
def _encode_action(action: Action):
    if isinstance(action, Transfer):
        return ["T", action.target, action.obj, action.source]
    if isinstance(action, Delete):
        return ["D", action.server, action.obj]
    raise ConfigurationError(f"unknown action type {type(action).__name__}")


def _decode_action(row) -> Action:
    if not row:
        raise ConfigurationError("empty action row")
    kind = row[0]
    if kind == "T":
        if len(row) != 4:
            raise ConfigurationError(f"transfer row needs 4 fields: {row!r}")
        return Transfer(int(row[1]), int(row[2]), int(row[3]))
    if kind == "D":
        if len(row) != 3:
            raise ConfigurationError(f"delete row needs 3 fields: {row!r}")
        return Delete(int(row[1]), int(row[2]))
    raise ConfigurationError(f"unknown action kind {kind!r}")


def schedule_to_dict(schedule: Schedule) -> Dict[str, Any]:
    """Serialise a schedule to compact action rows."""
    return {
        "format": SCHEDULE_FORMAT,
        "actions": [_encode_action(a) for a in schedule],
    }


def schedule_from_dict(data: Dict[str, Any]) -> Schedule:
    """Deserialise a schedule (structure only; validate against an
    instance with ``schedule.validate`` separately)."""
    if data.get("format") != SCHEDULE_FORMAT:
        raise ConfigurationError(
            f"expected format {SCHEDULE_FORMAT!r}, got {data.get('format')!r}"
        )
    try:
        rows = data["actions"]
    except KeyError:
        raise ConfigurationError("schedule JSON missing 'actions'") from None
    return Schedule(_decode_action(row) for row in rows)


def save_schedule(schedule: Schedule, path) -> None:
    """Write a schedule to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(schedule_to_dict(schedule), fh)


def load_schedule(path) -> Schedule:
    """Read a schedule from a JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        return schedule_from_dict(json.load(fh))


# ----------------------------------------------------------------------
# fault plans
# ----------------------------------------------------------------------
def fault_plan_to_dict(plan: FaultPlan) -> Dict[str, Any]:
    """Serialise a fault plan to compact event rows."""
    return {
        "format": FAULT_PLAN_FORMAT,
        "rate": plan.rate,
        "seed": plan.seed,
        "horizon": plan.horizon,
        "transfer_faults": [f.attempt for f in plan.transfer_faults],
        "crashes": [[c.time, c.server] for c in plan.crashes],
        "slowdowns": [
            [s.time, s.target, s.source, s.factor] for s in plan.slowdowns
        ],
    }


def fault_plan_from_dict(data: Dict[str, Any]) -> FaultPlan:
    """Deserialise (and re-validate) a fault plan."""
    if data.get("format") != FAULT_PLAN_FORMAT:
        raise ConfigurationError(
            f"expected format {FAULT_PLAN_FORMAT!r}, got {data.get('format')!r}"
        )
    try:
        return FaultPlan(
            transfer_faults=tuple(
                TransferFault(int(a)) for a in data["transfer_faults"]
            ),
            crashes=tuple(
                ServerCrash(float(t), int(s)) for t, s in data["crashes"]
            ),
            slowdowns=tuple(
                LinkSlowdown(float(t), int(i), int(j), float(f))
                for t, i, j, f in data["slowdowns"]
            ),
            rate=float(data.get("rate", 0.0)),
            seed=int(data.get("seed", 0)),
            horizon=float(data.get("horizon", 1.0)),
        )
    except KeyError as missing:
        raise ConfigurationError(
            f"fault-plan JSON missing key {missing}"
        ) from None


def save_fault_plan(plan: FaultPlan, path) -> None:
    """Write a fault plan to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(fault_plan_to_dict(plan), fh)


def load_fault_plan(path) -> FaultPlan:
    """Read a fault plan from a JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        return fault_plan_from_dict(json.load(fh))


# ----------------------------------------------------------------------
# failure traces
# ----------------------------------------------------------------------
def failure_trace_to_dict(events: Sequence[FaultedAction]) -> Dict[str, Any]:
    """Serialise a failure-aware event log (e.g. ``RepairReport.events``)."""
    return {
        "format": FAILURE_TRACE_FORMAT,
        "events": [
            [e.status, e.position, e.start, e.finish, _encode_action(e.action)]
            for e in events
        ],
    }


def failure_trace_from_dict(data: Dict[str, Any]) -> List[FaultedAction]:
    """Deserialise a failure trace back into :class:`FaultedAction` rows."""
    if data.get("format") != FAILURE_TRACE_FORMAT:
        raise ConfigurationError(
            f"expected format {FAILURE_TRACE_FORMAT!r}, got {data.get('format')!r}"
        )
    try:
        rows = data["events"]
    except KeyError:
        raise ConfigurationError("failure-trace JSON missing 'events'") from None
    out: List[FaultedAction] = []
    for row in rows:
        if len(row) != 5:
            raise ConfigurationError(f"trace row needs 5 fields: {row!r}")
        status, position, start, finish, action_row = row
        out.append(
            FaultedAction(
                position=int(position),
                action=_decode_action(action_row),
                start=float(start),
                finish=float(finish),
                status=str(status),
            )
        )
    return out


def save_failure_trace(events: Sequence[FaultedAction], path) -> None:
    """Write a failure trace to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(failure_trace_to_dict(events), fh)


def load_failure_trace(path) -> List[FaultedAction]:
    """Read a failure trace from a JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        return failure_trace_from_dict(json.load(fh))
