"""Versioned JSON (de)serialization of instances and schedules."""

from __future__ import annotations

import json
from typing import Any, Dict, Union

import numpy as np

from repro.model.actions import Action, Delete, Transfer
from repro.model.instance import RtspInstance
from repro.model.schedule import Schedule
from repro.util.errors import ConfigurationError

INSTANCE_FORMAT = "rtsp-instance/1"
SCHEDULE_FORMAT = "rtsp-schedule/1"

PathLike = Union[str, "os.PathLike[str]"]  # noqa: F821 - doc only


# ----------------------------------------------------------------------
# instances
# ----------------------------------------------------------------------
def instance_to_dict(instance: RtspInstance) -> Dict[str, Any]:
    """Serialise an instance (extended cost matrix included)."""
    return {
        "format": INSTANCE_FORMAT,
        "num_servers": instance.num_servers,
        "num_objects": instance.num_objects,
        "sizes": instance.sizes.tolist(),
        "capacities": instance.capacities.tolist(),
        "costs": instance.costs.tolist(),
        "x_old": instance.x_old.tolist(),
        "x_new": instance.x_new.tolist(),
    }


def instance_from_dict(data: Dict[str, Any]) -> RtspInstance:
    """Deserialise (and fully re-validate) an instance."""
    if data.get("format") != INSTANCE_FORMAT:
        raise ConfigurationError(
            f"expected format {INSTANCE_FORMAT!r}, got {data.get('format')!r}"
        )
    try:
        return RtspInstance.create(
            sizes=np.asarray(data["sizes"], dtype=np.float64),
            capacities=np.asarray(data["capacities"], dtype=np.float64),
            costs=np.asarray(data["costs"], dtype=np.float64),
            x_old=np.asarray(data["x_old"], dtype=np.int8),
            x_new=np.asarray(data["x_new"], dtype=np.int8),
        )
    except KeyError as missing:
        raise ConfigurationError(f"instance JSON missing key {missing}") from None


def save_instance(instance: RtspInstance, path) -> None:
    """Write an instance to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(instance_to_dict(instance), fh)


def load_instance(path) -> RtspInstance:
    """Read an instance from a JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        return instance_from_dict(json.load(fh))


# ----------------------------------------------------------------------
# schedules
# ----------------------------------------------------------------------
def _encode_action(action: Action):
    if isinstance(action, Transfer):
        return ["T", action.target, action.obj, action.source]
    if isinstance(action, Delete):
        return ["D", action.server, action.obj]
    raise ConfigurationError(f"unknown action type {type(action).__name__}")


def _decode_action(row) -> Action:
    if not row:
        raise ConfigurationError("empty action row")
    kind = row[0]
    if kind == "T":
        if len(row) != 4:
            raise ConfigurationError(f"transfer row needs 4 fields: {row!r}")
        return Transfer(int(row[1]), int(row[2]), int(row[3]))
    if kind == "D":
        if len(row) != 3:
            raise ConfigurationError(f"delete row needs 3 fields: {row!r}")
        return Delete(int(row[1]), int(row[2]))
    raise ConfigurationError(f"unknown action kind {kind!r}")


def schedule_to_dict(schedule: Schedule) -> Dict[str, Any]:
    """Serialise a schedule to compact action rows."""
    return {
        "format": SCHEDULE_FORMAT,
        "actions": [_encode_action(a) for a in schedule],
    }


def schedule_from_dict(data: Dict[str, Any]) -> Schedule:
    """Deserialise a schedule (structure only; validate against an
    instance with ``schedule.validate`` separately)."""
    if data.get("format") != SCHEDULE_FORMAT:
        raise ConfigurationError(
            f"expected format {SCHEDULE_FORMAT!r}, got {data.get('format')!r}"
        )
    try:
        rows = data["actions"]
    except KeyError:
        raise ConfigurationError("schedule JSON missing 'actions'") from None
    return Schedule(_decode_action(row) for row in rows)


def save_schedule(schedule: Schedule, path) -> None:
    """Write a schedule to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(schedule_to_dict(schedule), fh)


def load_schedule(path) -> Schedule:
    """Read a schedule from a JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        return schedule_from_dict(json.load(fh))
