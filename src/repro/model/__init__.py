"""Core RTSP data model.

* :mod:`repro.model.actions` — :class:`Transfer` / :class:`Delete` actions,
* :mod:`repro.model.instance` — the immutable problem instance
  ``(sizes, capacities, costs, X_old, X_new)``,
* :mod:`repro.model.placement` — replication-matrix helpers
  (loads, outstanding/superfluous masks, feasibility),
* :mod:`repro.model.state` — the mutable simulation state machine with
  nearest-replicator queries,
* :mod:`repro.model.nearest` — the vectorized incremental nearest-source
  index those queries run on,
* :mod:`repro.model.schedule` — action sequences, replay, validation and
  cost accounting,
* :mod:`repro.model.residual` — residual-instance extraction for
  re-planning a transition from a mid-flight state.
"""

from repro.model.actions import Action, Delete, Transfer, is_transfer, is_delete
from repro.model.instance import RtspInstance
from repro.model.placement import (
    loads,
    outstanding_mask,
    superfluous_mask,
    overlap_fraction,
    placement_fits,
    replica_counts,
)
from repro.model.nearest import NearestSourceIndex, nearest_bruteforce
from repro.model.residual import is_residual_trivial, residual_instance
from repro.model.state import SystemState
from repro.model.schedule import Schedule, ValidationReport

__all__ = [
    "Action",
    "Delete",
    "Transfer",
    "is_transfer",
    "is_delete",
    "RtspInstance",
    "loads",
    "outstanding_mask",
    "superfluous_mask",
    "overlap_fraction",
    "placement_fits",
    "replica_counts",
    "NearestSourceIndex",
    "nearest_bruteforce",
    "is_residual_trivial",
    "residual_instance",
    "SystemState",
    "Schedule",
    "ValidationReport",
]
