"""Schedule actions: object transfers and replica deletions.

Notation follows the paper (§3.2): ``T_ikj`` transfers object ``O_k`` to
server ``S_i`` using ``S_j`` as the source; ``D_ik`` deletes the replica of
``O_k`` held at ``S_i``. Actions are immutable value objects so they can be
shared between schedule variants produced by the optimizers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True, order=True)
class Transfer:
    """``T_ikj``: copy object ``obj`` onto ``target`` from ``source``.

    ``source`` may be the dummy-server index, in which case this is a
    *dummy transfer* (artificial, maximally expensive; see paper §3.3).
    """

    target: int
    obj: int
    source: int

    def with_source(self, source: int) -> "Transfer":
        """Same transfer re-pointed at a different source server."""
        return Transfer(self.target, self.obj, source)

    def __str__(self) -> str:
        return f"T({self.target},{self.obj},{self.source})"


@dataclass(frozen=True, order=True)
class Delete:
    """``D_ik``: remove the replica of object ``obj`` held at ``server``."""

    server: int
    obj: int

    def __str__(self) -> str:
        return f"D({self.server},{self.obj})"


Action = Union[Transfer, Delete]


def is_transfer(action: Action) -> bool:
    """Whether ``action`` is a :class:`Transfer`."""
    return isinstance(action, Transfer)


def is_delete(action: Action) -> bool:
    """Whether ``action`` is a :class:`Delete`."""
    return isinstance(action, Delete)
