"""The immutable RTSP problem instance.

An :class:`RtspInstance` bundles everything §3 of the paper parameterises
the problem with: object sizes, server capacities, the extended cost
matrix (real servers plus the dummy server as the last index), and the two
replication schemes ``X_old`` / ``X_new``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.model.placement import (
    diff_counts,
    loads,
    outstanding_mask,
    placement_fits,
    superfluous_mask,
)
from repro.network.costmatrix import extend_with_dummy
from repro.util.errors import ConfigurationError, InfeasibleInstanceError
from repro.util.validation import (
    check_binary_matrix,
    check_nonnegative,
    check_positive,
)


@dataclass(frozen=True)
class RtspInstance:
    """Immutable RTSP instance.

    Attributes
    ----------
    sizes:
        ``N`` object sizes in abstract data units, strictly positive.
    capacities:
        ``M`` server storage capacities.
    costs:
        Extended ``(M+1) x (M+1)`` per-unit cost matrix; index ``M`` is the
        dummy server ``S_d`` (build with
        :func:`repro.network.costmatrix.extend_with_dummy`, or pass a plain
        ``M x M`` matrix to :meth:`create` which extends it for you).
    x_old, x_new:
        ``M x N`` 0/1 replication matrices (real servers only; the dummy
        implicitly replicates everything).
    """

    sizes: np.ndarray
    capacities: np.ndarray
    costs: np.ndarray
    x_old: np.ndarray
    x_new: np.ndarray
    #: Lazily-filled cache of derived read-only views (outstanding /
    #: superfluous masks). Excluded from equality/repr; safe on a frozen
    #: dataclass because the dict itself is mutated, never reassigned.
    _derived: dict = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        sizes,
        capacities,
        costs,
        x_old,
        x_new,
        dummy_constant: float = 1.0,
        validate: bool = True,
    ) -> "RtspInstance":
        """Validate inputs and build an instance.

        ``costs`` may be a plain ``M x M`` matrix (it is extended with the
        dummy server using ``dummy_constant``) or an already-extended
        ``(M+1) x (M+1)`` matrix.
        """
        sizes = check_positive(sizes, "sizes")
        capacities = check_nonnegative(capacities, "capacities")
        x_old = check_binary_matrix(x_old, "X_old")
        x_new = check_binary_matrix(x_new, "X_new")
        m, n = x_old.shape
        if x_new.shape != (m, n):
            raise ConfigurationError("X_old and X_new must have identical shapes")
        if sizes.shape[0] != n:
            raise ConfigurationError(f"expected {n} object sizes, got {sizes.shape[0]}")
        if capacities.shape[0] != m:
            raise ConfigurationError(
                f"expected {m} server capacities, got {capacities.shape[0]}"
            )
        costs = np.asarray(costs, dtype=np.float64)
        if costs.size and np.isnan(costs).any():
            # NaN poisons the adaptive query paths inconsistently: a
            # scalar ``c < best`` scan skips NaN while a vectorized
            # ``argmin`` selects it, so the two regimes would return
            # different sources. Reject at the boundary instead.
            raise ConfigurationError("cost matrix must not contain NaN")
        if costs.shape == (m, m):
            costs = extend_with_dummy(costs, a=dummy_constant)
        elif costs.shape != (m + 1, m + 1):
            raise ConfigurationError(
                f"cost matrix must be {m}x{m} or {m + 1}x{m + 1}, got {costs.shape}"
            )
        inst = cls(
            sizes=sizes,
            capacities=capacities,
            costs=costs,
            x_old=x_old,
            x_new=x_new,
        )
        if validate:
            inst.check_feasible()
        # Freeze array contents: the instance is shared across heuristics.
        for arr in (inst.sizes, inst.capacities, inst.costs, inst.x_old, inst.x_new):
            arr.setflags(write=False)
        return inst

    # ------------------------------------------------------------------
    # dimensions
    # ------------------------------------------------------------------
    @property
    def num_servers(self) -> int:
        """Number of real servers ``M`` (the dummy is not counted)."""
        return self.x_old.shape[0]

    @property
    def num_objects(self) -> int:
        """Number of objects ``N``."""
        return self.x_old.shape[1]

    @property
    def dummy(self) -> int:
        """Index of the dummy server in the extended cost matrix."""
        return self.num_servers

    @property
    def dummy_cost(self) -> float:
        """Per-unit cost of any dummy transfer."""
        return float(self.costs[self.dummy, 0]) if self.num_servers else 0.0

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def outstanding(self) -> np.ndarray:
        """0/1 mask of replicas to create (``X_new`` minus ``X_old``).

        The mask is computed once and cached as a read-only array (every
        builder asks for it, and at fleet scale recomputing it dominated
        setup time).
        """
        mask = self._derived.get("outstanding")
        if mask is None:
            mask = outstanding_mask(self.x_old, self.x_new)
            mask.setflags(write=False)
            self._derived["outstanding"] = mask
        return mask

    def superfluous(self) -> np.ndarray:
        """0/1 mask of replicas to delete (``X_old`` minus ``X_new``).

        Cached read-only, like :meth:`outstanding`.
        """
        mask = self._derived.get("superfluous")
        if mask is None:
            mask = superfluous_mask(self.x_old, self.x_new)
            mask.setflags(write=False)
            self._derived["superfluous"] = mask
        return mask

    def diff_counts(self):
        """``(num_outstanding, num_superfluous)``."""
        return diff_counts(self.x_old, self.x_new)

    def old_loads(self) -> np.ndarray:
        """Per-server storage used by ``X_old``."""
        return loads(self.x_old, self.sizes)

    def new_loads(self) -> np.ndarray:
        """Per-server storage used by ``X_new``."""
        return loads(self.x_new, self.sizes)

    def transfer_cost(self, target: int, obj: int, source: int) -> float:
        """Cost ``s(O_k) * l_ij`` of one transfer."""
        return float(self.sizes[obj] * self.costs[target, source])

    # ------------------------------------------------------------------
    # feasibility
    # ------------------------------------------------------------------
    def check_feasible(self) -> None:
        """Raise :class:`InfeasibleInstanceError` unless both schemes fit.

        With the dummy server, storage feasibility of ``X_old`` and
        ``X_new`` is the *only* requirement for a valid schedule to exist
        (paper §3.3: delete everything, then pull everything from S_d).
        """
        if not placement_fits(self.x_old, self.sizes, self.capacities):
            raise InfeasibleInstanceError("X_old violates storage capacities")
        if not placement_fits(self.x_new, self.sizes, self.capacities):
            raise InfeasibleInstanceError("X_new violates storage capacities")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        out, sup = self.diff_counts()
        return (
            f"RtspInstance(M={self.num_servers}, N={self.num_objects}, "
            f"outstanding={out}, superfluous={sup})"
        )
