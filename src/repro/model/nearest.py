"""Vectorized incremental nearest-source index.

Every cost-aware decision in the reproduction — GOLCF/GMC object
selection, eq. 4 eviction benefits, OP1 re-pointing — reduces to the
paper's nearest-replicator queries ``N(i, k, X)`` / ``N2(i, k, X)``:
given the current replication state, which live replicator of ``O_k``
(or the dummy server as fallback) is cheapest for ``S_i``, and which is
second-cheapest?

:class:`NearestSourceIndex` answers those queries adaptively, per
object:

* **cold objects** (never batch-queried) are answered by a scalar scan
  over the live replicator set — at the paper's replica counts (2–10
  holders) a Python scan is 10–40x cheaper than any NumPy round-trip,
  so one-off queries never pay vectorization overhead;
* **hot objects** (batch-queried through :meth:`nearest_row` /
  :meth:`nearest_cost_row` / :meth:`keep_benefit`) get cached
  argmin/second-argmin rows over a masked view of the cost matrix,
  maintained *incrementally* on every ``apply``/``undo``: a new holder
  is folded in with a constant number of vectorized top-2 inserts, and
  a removed holder invalidates only the rows whose cached best or
  second-best it was, rebuilding exactly those rows;
* the full-matrix NumPy recompute (:meth:`_rebuild`) is the fallback
  path and the single source of truth for the cache layout.

Mutations on cold objects cost one integer version bump, so builders
that only ever need single queries (RDF, GSDF, AR) pay nothing for the
machinery.

Determinism contract: candidate columns are ordered by ascending server
index with the dummy last, and ``np.argmin`` returns the *first*
minimum, so every tie breaks toward the lowest real server index and a
real server always beats an equal-cost dummy — byte-identical to the
scalar scan (see :func:`nearest_bruteforce`, kept as the executable
reference for the property tests, which drive both regimes).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

import numpy as np

from repro.model.instance import RtspInstance
from repro.obs.context import current_metrics

__all__ = ["NearestSourceIndex", "nearest_bruteforce"]


class _IndexMetrics:
    """Counters the index reports when a metrics registry is active.

    Instruments are captured once at index construction; hot paths bump
    their ``value`` attribute directly (no method call). When no registry
    is active the owning index holds ``None`` instead of this holder, so
    the disabled cost is a single attribute load + ``is None`` check.

    Cache accounting follows the adaptive design: a query answered by
    the cold scalar path is a row-cache miss (``scalar_queries`` and
    ``cache_misses`` both bump — deliberately not building the row *is*
    the miss policy), a query served from cached rows is a hit
    (``cached_queries`` + ``cache_hits``), and promotions/stale gathers
    add further ``cache_misses`` via :meth:`NearestSourceIndex._ensure`
    / :meth:`NearestSourceIndex.nearest_cost_row`.
    """

    __slots__ = (
        "scalar_queries",
        "cached_queries",
        "cache_hits",
        "cache_misses",
        "incremental_updates",
        "rebuilds",
        "partial_rebuild_rows",
    )

    def __init__(self, registry) -> None:
        self.scalar_queries = registry.counter("nearest_index.scalar_queries")
        self.cached_queries = registry.counter("nearest_index.cached_queries")
        self.cache_hits = registry.counter("nearest_index.cache_hits")
        self.cache_misses = registry.counter("nearest_index.cache_misses")
        self.incremental_updates = registry.counter(
            "nearest_index.incremental_updates"
        )
        self.rebuilds = registry.counter("nearest_index.rebuilds")
        self.partial_rebuild_rows = registry.counter(
            "nearest_index.partial_rebuild_rows"
        )


class NearestSourceIndex:
    """Adaptive nearest / second-nearest source cache for one state.

    Parameters
    ----------
    instance:
        The immutable problem instance (costs, sizes, dummy index).
    holds:
        The live ``M x N`` 0/1 replication matrix of the owning state.
    replicators:
        The live per-object replicator sets of the owning state (real
        servers only).

    The index only *reads* both structures; every mutation must be
    reported through :meth:`add_holder` / :meth:`remove_holder` by the
    owner (:class:`repro.model.state.SystemState` does this from
    ``apply``/``undo``).
    """

    __slots__ = (
        "instance",
        "_holds",
        "_replicators",
        "_costs",
        "_dummy",
        "_rows",
        "_best1",
        "_best2",
        "_cost_row",
        "_cost_row_version",
        "versions",
        "_m",
    )

    def __init__(
        self,
        instance: RtspInstance,
        holds: np.ndarray,
        replicators: Sequence[Set[int]],
    ) -> None:
        self.instance = instance
        self._holds = holds
        self._replicators = replicators
        self._costs = instance.costs
        self._dummy = instance.dummy
        self._rows = np.arange(instance.num_servers + 1)
        #: obj -> per-server nearest source (self excluded, dummy fallback)
        self._best1: Dict[int, np.ndarray] = {}
        #: obj -> per-server second-nearest (additionally excludes best1)
        self._best2: Dict[int, np.ndarray] = {}
        #: obj -> cached ``costs[i, best1[i]]`` gather, stamped by version
        self._cost_row: Dict[int, np.ndarray] = {}
        self._cost_row_version: Dict[int, int] = {}
        #: Per-object mutation counters, bumped on *every* holder change
        #: (cached or not). Consumers can compare stamps to skip
        #: recomputing derived values for untouched objects.
        self.versions: List[int] = [0] * instance.num_objects
        registry = current_metrics()
        self._m = None if registry is None else _IndexMetrics(registry)

    # ------------------------------------------------------------------
    # cache construction (hot objects)
    # ------------------------------------------------------------------
    def _candidates(self, obj: int) -> np.ndarray:
        """Holder indices ascending, dummy appended last."""
        holders = np.flatnonzero(self._holds[:, obj])
        return np.append(holders, self.instance.dummy)

    def _rebuild(self, obj: int, rows: np.ndarray = None) -> None:
        """Recompute best1/best2 for ``rows`` (default: all) of ``obj``.

        One masked argmin per rank: candidate columns are in ascending
        index order (dummy last), each holder's own row masks its own
        column (a server never sources from itself), and the first
        minimum wins — reproducing the scalar tie-breaking exactly.
        """
        m = self._m
        if m is not None:
            if rows is None:
                m.rebuilds.value += 1
            else:
                m.partial_rebuild_rows.value += len(rows)
        cand = self._candidates(obj)
        holders = cand[:-1]
        if rows is None:
            rows = self._rows
            sub = self._costs[:, cand].copy()
            if holders.size:
                sub[holders, np.arange(holders.size)] = np.inf
        else:
            sub = self._costs[np.ix_(rows, cand)]
            # The dummy row (== instance.dummy) can appear in ``rows``
            # but has no entry in the placement matrix and never holds a
            # maskable candidate column.
            held = np.zeros(len(rows), dtype=bool)
            real = rows < self.instance.dummy
            held[real] = self._holds[rows[real], obj].astype(bool)
            if held.any():
                sub[held, np.searchsorted(holders, rows[held])] = np.inf
        pos1 = np.argmin(sub, axis=1)
        best1 = cand[pos1]
        sub[np.arange(len(rows)), pos1] = np.inf
        best2 = cand[np.argmin(sub, axis=1)]
        if len(rows) == len(self._rows):
            self._best1[obj] = best1
            self._best2[obj] = best2
        else:
            self._best1[obj][rows] = best1
            self._best2[obj][rows] = best2

    def _ensure(self, obj: int) -> None:
        if obj not in self._best1:
            if self._m is not None:
                self._m.cache_misses.value += 1
            self._rebuild(obj)
        elif self._m is not None:
            self._m.cache_hits.value += 1

    def is_cached(self, obj: int) -> bool:
        """Whether ``obj`` currently has incrementally-maintained rows."""
        return obj in self._best1

    def holders(self, obj: int) -> Set[int]:
        """Live real-server replicator set of ``obj`` (treat as read-only)."""
        return self._replicators[obj]

    # ------------------------------------------------------------------
    # incremental maintenance (called by the owning state)
    # ------------------------------------------------------------------
    def add_holder(self, obj: int, server: int) -> None:
        """A real ``server`` now replicates ``obj`` (after a transfer or
        an undone deletion). Constant-size top-2 insert on cached rows;
        a version bump otherwise."""
        self.versions[obj] += 1
        best1 = self._best1.get(obj)
        if best1 is None:
            return
        if self._m is not None:
            self._m.incremental_updates.value += 1
        best2 = self._best2[obj]
        c_new = self._costs[:, server]
        cb1 = self._costs[self._rows, best1]
        beats1 = (c_new < cb1) | ((c_new == cb1) & (server < best1))
        cb2 = self._costs[self._rows, best2]
        beats2 = ~beats1 & ((c_new < cb2) | ((c_new == cb2) & (server < best2)))
        # A server is never a candidate for its own row.
        beats1[server] = False
        beats2[server] = False
        best2[beats1] = best1[beats1]
        best1[beats1] = server
        best2[beats2] = server

    def remove_holder(self, obj: int, server: int) -> None:
        """``server`` no longer replicates ``obj`` (after a deletion or an
        undone transfer). Only rows whose cached best or second-best was
        the departing holder are rebuilt."""
        self.versions[obj] += 1
        best1 = self._best1.get(obj)
        if best1 is None:
            return
        if self._m is not None:
            self._m.incremental_updates.value += 1
        affected = np.flatnonzero(
            (best1 == server) | (self._best2[obj] == server)
        )
        if affected.size:
            self._rebuild(obj, rows=affected)

    def invalidate(self, obj: int = None) -> None:
        """Drop cached rows (all objects when ``obj`` is ``None``); the
        next batch query falls back to a full recompute."""
        if obj is None:
            self._best1.clear()
            self._best2.clear()
            self._cost_row.clear()
            self._cost_row_version.clear()
            self.versions = [v + 1 for v in self.versions]
        else:
            self._best1.pop(obj, None)
            self._best2.pop(obj, None)
            self._cost_row.pop(obj, None)
            self._cost_row_version.pop(obj, None)
            self.versions[obj] += 1

    # ------------------------------------------------------------------
    # scalar queries (the paper's N / N2) — adaptive
    # ------------------------------------------------------------------
    def nearest(self, server: int, obj: int, exclude: Iterable[int] = ()) -> int:
        """Cheapest current source of ``obj`` for ``server``.

        ``server`` itself is never a candidate, the dummy is the
        fallback (and loses cost ties to any real server), and
        real-server ties break toward the lowest index.
        """
        best1 = self._best1.get(obj)
        m = self._m
        if best1 is None:
            if m is not None:
                m.scalar_queries.value += 1
                m.cache_misses.value += 1
            if exclude:
                return _scalar_nearest(
                    self.instance, self._replicators[obj], server, obj, exclude
                )
            # Cold fast path: one scan over the live replicator set.
            row = self._costs[server]
            best = self._dummy
            best_cost = row[best]
            for j in self._replicators[obj]:
                if j == server:
                    continue
                c = row[j]
                if c < best_cost or (c == best_cost and j < best):
                    best, best_cost = j, c
            return best
        if m is not None:
            m.cached_queries.value += 1
            m.cache_hits.value += 1
        first = int(best1[server])
        if not exclude:
            return first
        banned = frozenset(exclude)
        if first not in banned:
            return first
        second = int(self._best2[obj][server])
        if second not in banned:
            return second
        return _scalar_nearest(
            self.instance, self._replicators[obj], server, obj, banned
        )

    def nearest_pair(self, server: int, obj: int) -> Tuple[int, int]:
        """``(N(i,k,X), N2(i,k,X))`` with dummy degradation."""
        best1 = self._best1.get(obj)
        m = self._m
        if best1 is None:
            if m is not None:
                m.scalar_queries.value += 1
                m.cache_misses.value += 1
            # Cold fast path: one-pass top-2 over the live replicator
            # set, ordered lexicographically by (cost, index) — the
            # dummy's maximal index makes it lose every cost tie.
            row = self._costs[server]
            dummy = self._dummy
            c1 = c2 = row[dummy]
            i1 = i2 = dummy
            for j in self._replicators[obj]:
                if j == server:
                    continue
                c = row[j]
                if c < c1 or (c == c1 and j < i1):
                    c2, i2 = c1, i1
                    c1, i1 = c, j
                elif c < c2 or (c == c2 and j < i2):
                    c2, i2 = c, j
            if i1 == dummy:
                return dummy, dummy
            return i1, i2
        if m is not None:
            m.cached_queries.value += 1
            m.cache_hits.value += 1
        first = int(best1[server])
        if first == self._dummy:
            return first, first
        return first, int(self._best2[obj][server])

    def nearest_cost(self, server: int, obj: int) -> float:
        """Per-unit cost to the nearest current source of ``obj``."""
        return float(self._costs[server, self.nearest(server, obj)])

    # ------------------------------------------------------------------
    # batch queries — promote the object to cached ("hot")
    # ------------------------------------------------------------------
    def nearest_row(self, obj: int) -> np.ndarray:
        """Per-server nearest-source vector (read-only view)."""
        self._ensure(obj)
        return self._best1[obj]

    def second_row(self, obj: int) -> np.ndarray:
        """Per-server second-nearest vector (read-only view).

        Only meaningful where ``nearest_row(obj) != dummy``.
        """
        self._ensure(obj)
        return self._best2[obj]

    def nearest_cost_row(self, obj: int) -> np.ndarray:
        """Per-server unit cost to the nearest source, as one vector.

        The gather is cached and stamped with the object's version, so
        repeated queries between mutations are free.
        """
        version = self.versions[obj]
        if self._cost_row_version.get(obj) != version:
            self._ensure(obj)
            self._cost_row[obj] = self._costs[self._rows, self._best1[obj]]
            self._cost_row_version[obj] = version
        elif self._m is not None:
            self._m.cache_hits.value += 1
        return self._cost_row[obj]

    def keep_benefit(
        self, server: int, obj: int, waiting: Iterable[int]
    ) -> float:
        """GOLCF deletion benefit ``B_ik`` (paper eq. 4).

        The cost every still-waiting target of ``obj`` whose nearest
        source is ``server`` would additionally pay by falling back to
        its second-nearest source. Vectorized over the waiting set for
        hot objects, scalar otherwise.
        """
        best1 = self._best1.get(obj)
        size = float(self.instance.sizes[obj])
        m = self._m
        if m is not None:
            if best1 is None:
                m.scalar_queries.value += 1
                m.cache_misses.value += 1
            else:
                m.cached_queries.value += 1
                m.cache_hits.value += 1
        if best1 is None:
            # Cold fast path: fused one-pass top-2 per waiting target
            # (same (cost, index) ordering as :meth:`nearest_pair`),
            # accumulating only targets currently served by ``server``.
            costs = self._costs
            dummy = self._dummy
            holders = self._replicators[obj]
            total = 0.0
            for t in waiting:
                row = costs[t]
                c1 = c2 = row[dummy]
                i1 = i2 = dummy
                for j in holders:
                    if j == t:
                        continue
                    c = row[j]
                    if c < c1 or (c == c1 and j < i1):
                        c2, i2 = c1, i1
                        c1, i1 = c, j
                    elif c < c2 or (c == c2 and j < i2):
                        c2, i2 = c, j
                if i1 == server:
                    total += size * float(c2 - c1)
            return total
        targets = np.fromiter(waiting, dtype=np.intp)
        if targets.size == 0:
            return 0.0
        served = targets[best1[targets] == server]
        if served.size == 0:
            return 0.0
        second = self._best2[obj][served]
        # Bit-identical to the cold path above: multiply each term by
        # ``size`` *before* summing and accumulate sequentially in
        # waiting-set order (``served`` preserves it). A vectorized
        # ``size * np.sum(...)`` rounds differently in the last ulp on
        # fractional costs, and that ulp can flip an eviction-victim
        # tie — the adaptive hot/cold switch must never change the
        # schedule.
        terms = size * (
            self._costs[served, second] - self._costs[served, server]
        )
        total = 0.0
        for term in terms.tolist():
            total += term
        return total

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def copy(
        self, holds: np.ndarray, replicators: Sequence[Set[int]]
    ) -> "NearestSourceIndex":
        """Duplicate for a copied state backed by ``holds``/``replicators``."""
        dup = object.__new__(NearestSourceIndex)
        dup.instance = self.instance
        dup._holds = holds
        dup._replicators = replicators
        dup._costs = self._costs
        dup._dummy = self._dummy
        dup._rows = self._rows
        dup._best1 = {k: v.copy() for k, v in self._best1.items()}
        dup._best2 = {k: v.copy() for k, v in self._best2.items()}
        dup._cost_row = {k: v.copy() for k, v in self._cost_row.items()}
        dup._cost_row_version = dict(self._cost_row_version)
        dup.versions = list(self.versions)
        dup._m = self._m  # counters are process-wide; copies share them
        return dup

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"NearestSourceIndex(hot_objects={len(self._best1)}, "
            f"objects={self.instance.num_objects})"
        )


# ----------------------------------------------------------------------
# scalar reference (cold-object fast path and property-test oracle)
# ----------------------------------------------------------------------
def _scalar_nearest(
    instance: RtspInstance,
    holders: Iterable[int],
    server: int,
    obj: int,
    exclude: Iterable[int],
) -> int:
    costs_row = instance.costs[server]
    banned = set(exclude)
    banned.add(server)
    best, best_cost = instance.dummy, float(costs_row[instance.dummy])
    for j in holders:
        if j in banned:
            continue
        c = float(costs_row[j])
        if c < best_cost or (c == best_cost and j < best):
            best, best_cost = j, c
    return best


def nearest_bruteforce(
    instance: RtspInstance,
    holds: np.ndarray,
    server: int,
    obj: int,
    exclude: Iterable[int] = (),
) -> int:
    """Reference ``N(i,k,X)``: plain scalar scan over the holder column.

    This is the semantics contract the index is tested against: self
    never a candidate, dummy fallback losing ties to real servers, ties
    between real servers to the lowest index.
    """
    holders = [int(j) for j in np.flatnonzero(holds[:, obj])]
    return _scalar_nearest(instance, holders, server, obj, exclude)
