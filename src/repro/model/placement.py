"""Replication-matrix helpers.

A replication scheme is an ``M x N`` 0/1 matrix ``X`` with ``X[i, k] = 1``
iff server ``S_i`` replicates object ``O_k`` (paper §3.1). These helpers
are pure functions over such matrices; the mutable simulation lives in
:mod:`repro.model.state`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.util.validation import check_binary_matrix, check_nonnegative


def loads(x: np.ndarray, sizes: np.ndarray) -> np.ndarray:
    """Storage used per server: ``loads[i] = sum_k X[i,k] * s(O_k)``."""
    x = check_binary_matrix(x, "X")
    sizes = check_nonnegative(sizes, "sizes")
    if x.shape[1] != sizes.shape[0]:
        raise ValueError(
            f"X has {x.shape[1]} objects but sizes has {sizes.shape[0]}"
        )
    return x.astype(np.float64) @ sizes


def placement_fits(x: np.ndarray, sizes: np.ndarray, capacities: np.ndarray) -> bool:
    """Whether every server's load under ``x`` fits its capacity."""
    capacities = check_nonnegative(capacities, "capacities")
    used = loads(x, sizes)
    if used.shape != capacities.shape:
        raise ValueError("capacities length must equal number of servers")
    return bool((used <= capacities + 1e-9).all())


def outstanding_mask(x_old: np.ndarray, x_new: np.ndarray) -> np.ndarray:
    """Replicas to *create*: ``X_new = 1`` where ``X_old = 0``."""
    x_old = check_binary_matrix(x_old, "X_old")
    x_new = check_binary_matrix(x_new, "X_new")
    if x_old.shape != x_new.shape:
        raise ValueError("X_old and X_new must have identical shapes")
    return ((x_new == 1) & (x_old == 0)).astype(np.int8)


def superfluous_mask(x_old: np.ndarray, x_new: np.ndarray) -> np.ndarray:
    """Replicas to *delete*: ``X_old = 1`` where ``X_new = 0``."""
    x_old = check_binary_matrix(x_old, "X_old")
    x_new = check_binary_matrix(x_new, "X_new")
    if x_old.shape != x_new.shape:
        raise ValueError("X_old and X_new must have identical shapes")
    return ((x_old == 1) & (x_new == 0)).astype(np.int8)


def overlap_fraction(x_old: np.ndarray, x_new: np.ndarray) -> float:
    """Fraction of ``X_new``'s replicas already present in ``X_old``.

    The paper's experiments use 0% overlap (completely reshuffled
    placements); partial overlap is the common production case.
    """
    x_old = check_binary_matrix(x_old, "X_old")
    x_new = check_binary_matrix(x_new, "X_new")
    if x_old.shape != x_new.shape:
        raise ValueError("X_old and X_new must have identical shapes")
    total_new = int(x_new.sum())
    if total_new == 0:
        return 1.0
    common = int(((x_old == 1) & (x_new == 1)).sum())
    return common / total_new


def replica_counts(x: np.ndarray) -> np.ndarray:
    """Number of replicas per object: ``counts[k] = sum_i X[i,k]``."""
    x = check_binary_matrix(x, "X")
    return x.sum(axis=0, dtype=np.int64)


def diff_counts(x_old: np.ndarray, x_new: np.ndarray) -> Tuple[int, int]:
    """``(num_outstanding, num_superfluous)`` between the two schemes."""
    return (
        int(outstanding_mask(x_old, x_new).sum()),
        int(superfluous_mask(x_old, x_new).sum()),
    )
