"""Residual RTSP instances: the remainder of a partially-applied transition.

When a running schedule is interrupted (a transfer fails, a server
crashes and loses replicas), the system sits at some intermediate
placement ``X^u``. Reaching the original ``X_new`` from there is *itself*
an RTSP instance — same sizes, capacities and costs, but with ``X^u`` as
the starting scheme. :func:`residual_instance` extracts that instance so
any existing builder pipeline can re-plan the remainder.
"""

from __future__ import annotations

import numpy as np

from repro.model.instance import RtspInstance
from repro.util.errors import ConfigurationError


def residual_instance(
    instance: RtspInstance, placement: np.ndarray
) -> RtspInstance:
    """The RTSP instance for finishing ``instance`` from ``placement``.

    ``placement`` is the current ``M x N`` replication matrix (e.g.
    ``SystemState.placement()`` captured mid-execution). The result keeps
    the original sizes, capacities, extended cost matrix and ``X_new``,
    and substitutes ``placement`` for ``X_old``. Full validation runs: a
    placement that violates capacities (which no reachable system state
    can produce) is rejected.
    """
    placement = np.asarray(placement)
    expected = (instance.num_servers, instance.num_objects)
    if placement.shape != expected:
        raise ConfigurationError(
            f"placement must be {expected[0]}x{expected[1]}, "
            f"got {placement.shape}"
        )
    return RtspInstance.create(
        sizes=instance.sizes,
        capacities=instance.capacities,
        costs=instance.costs,
        x_old=placement,
        x_new=instance.x_new,
    )


def is_residual_trivial(instance: RtspInstance) -> bool:
    """Whether a residual instance needs no actions (``X_old == X_new``)."""
    return bool(np.array_equal(instance.x_old, instance.x_new))
