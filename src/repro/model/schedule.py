"""Schedules: ordered action sequences with replay, validation and cost.

A :class:`Schedule` is the object every builder produces and every
optimizer rewrites. It is a thin mutable wrapper over a list of actions
plus the accounting defined in paper §3.2:

* *implementation cost* ``I^H = Σ s(O_k) · l_ij`` over transfer actions,
* *validity w.r.t.* ``(X_old, X_new)``: each action valid stepwise and the
  final replication matrix equal to ``X_new``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.model.actions import Action, Delete, Transfer
from repro.model.instance import RtspInstance
from repro.model.state import SystemState
from repro.util.errors import InvalidActionError, InvalidScheduleError


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of validating a schedule against an instance.

    Attributes
    ----------
    ok:
        True iff every action was valid and the end state equals ``X_new``.
    position:
        Index of the first invalid action, or ``None``.
    message:
        Human-readable failure reason, or ``None`` when ``ok``.
    cost:
        Implementation cost accumulated up to the failure point (full cost
        when ``ok``).
    dummy_transfers:
        Number of dummy transfers seen up to the failure point.
    """

    ok: bool
    position: Optional[int]
    message: Optional[str]
    cost: float
    dummy_transfers: int


#: Action-kind codes used by the flat (structure-of-arrays) encoding.
KIND_TRANSFER = 0
KIND_DELETE = 1


def actions_from_arrays(kinds, primary, objs, sources) -> List[Action]:
    """Materialize a flat action encoding into action objects.

    The columns are parallel integer sequences: ``kinds[i]`` is
    :data:`KIND_TRANSFER` or :data:`KIND_DELETE`, ``primary[i]`` the
    transfer target / deletion server, ``objs[i]`` the object, and
    ``sources[i]`` the transfer source (ignored for deletions). NumPy
    inputs should be passed through ``.tolist()`` by the caller so the
    dataclasses hold plain Python ints (JSON round-trips and reprs stay
    identical to object-built schedules); this function accepts any
    integer sequences.
    """
    transfer = KIND_TRANSFER
    return [
        Transfer(a, k, j) if kind == transfer else Delete(a, k)
        for kind, a, k, j in zip(kinds, primary, objs, sources)
    ]


class Schedule:
    """Mutable ordered sequence of :class:`Transfer`/:class:`Delete` actions."""

    def __init__(self, actions: Iterable[Action] = ()) -> None:
        self._actions: List[Action] = list(actions)

    @classmethod
    def from_arrays(cls, kinds, primary, objs, sources) -> "Schedule":
        """Build a schedule from the flat encoding (see
        :func:`actions_from_arrays`)."""
        schedule = cls.__new__(cls)
        schedule._actions = actions_from_arrays(kinds, primary, objs, sources)
        return schedule

    # ------------------------------------------------------------------
    # sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._actions)

    def __iter__(self) -> Iterator[Action]:
        return iter(self._actions)

    def __getitem__(self, idx):
        return self._actions[idx]

    def __setitem__(self, idx: int, action: Action) -> None:
        self._actions[idx] = action

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Schedule):
            return self._actions == other._actions
        return NotImplemented

    # ------------------------------------------------------------------
    # editing
    # ------------------------------------------------------------------
    def append(self, action: Action) -> None:
        """Append ``action`` at the end."""
        self._actions.append(action)

    def extend(self, actions: Iterable[Action]) -> None:
        """Append every action of ``actions`` in order."""
        self._actions.extend(actions)

    def insert(self, index: int, action: Action) -> None:
        """Insert ``action`` before position ``index``."""
        self._actions.insert(index, action)

    def pop(self, index: int) -> Action:
        """Remove and return the action at ``index``."""
        return self._actions.pop(index)

    def move(self, src: int, dst: int) -> None:
        """Move the action at position ``src`` so it ends up at ``dst``.

        ``dst`` is interpreted against the list *after* removal, i.e.
        ``move(5, 2)`` places the former fifth action at index 2.
        """
        action = self._actions.pop(src)
        self._actions.insert(dst, action)

    def copy(self) -> "Schedule":
        """Shallow copy (actions are immutable, so this is a safe fork)."""
        return Schedule(self._actions)

    def actions(self) -> List[Action]:
        """The underlying action list (a copy)."""
        return list(self._actions)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def transfers(self) -> List[Transfer]:
        """All transfer actions, in schedule order."""
        return [a for a in self._actions if isinstance(a, Transfer)]

    def deletions(self) -> List[Delete]:
        """All delete actions, in schedule order."""
        return [a for a in self._actions if isinstance(a, Delete)]

    def dummy_transfer_positions(self, instance: RtspInstance) -> List[int]:
        """Indices of transfers sourced from the dummy server."""
        d = instance.dummy
        return [
            idx
            for idx, a in enumerate(self._actions)
            if isinstance(a, Transfer) and a.source == d
        ]

    def count_dummy_transfers(self, instance: RtspInstance) -> int:
        """Number of dummy transfers in the schedule."""
        return len(self.dummy_transfer_positions(instance))

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def cost(self, instance: RtspInstance) -> float:
        """Implementation cost ``Σ s(O_k) · l[target, source]`` (eq. 1)."""
        total = 0.0
        sizes, costs = instance.sizes, instance.costs
        for a in self._actions:
            if isinstance(a, Transfer):
                total += float(sizes[a.obj] * costs[a.target, a.source])
        return total

    def action_cost(self, instance: RtspInstance, index: int) -> float:
        """Cost of the single action at ``index`` (0 for deletions)."""
        a = self._actions[index]
        if isinstance(a, Transfer):
            return instance.transfer_cost(a.target, a.obj, a.source)
        return 0.0

    # ------------------------------------------------------------------
    # replay / validation
    # ------------------------------------------------------------------
    def replay(
        self, instance: RtspInstance, stop: Optional[int] = None
    ) -> SystemState:
        """Apply the first ``stop`` actions (all by default) to ``X_old``.

        Raises :class:`InvalidActionError` at the first invalid action.
        """
        state = SystemState(instance)
        end = len(self._actions) if stop is None else stop
        for idx in range(end):
            state.apply(self._actions[idx], position=idx)
        return state

    def validate(self, instance: RtspInstance) -> ValidationReport:
        """Check validity w.r.t. ``(X_old, X_new)`` without raising."""
        state = SystemState(instance)
        cost = 0.0
        dummies = 0
        for idx, a in enumerate(self._actions):
            reason = state.explain_invalid(a)
            if reason is not None:
                return ValidationReport(False, idx, f"{a}: {reason}", cost, dummies)
            if isinstance(a, Transfer):
                cost += instance.transfer_cost(a.target, a.obj, a.source)
                if a.source == instance.dummy:
                    dummies += 1
            state.apply(a)
        if not state.matches(instance.x_new):
            return ValidationReport(
                False, None, "final placement differs from X_new", cost, dummies
            )
        return ValidationReport(True, None, None, cost, dummies)

    def is_valid(self, instance: RtspInstance) -> bool:
        """Shorthand for ``validate(instance).ok``."""
        return self.validate(instance).ok

    def require_valid(self, instance: RtspInstance) -> None:
        """Raise :class:`InvalidScheduleError` unless the schedule is valid."""
        report = self.validate(instance)
        if not report.ok:
            raise InvalidScheduleError(report.message or "invalid schedule",
                                       position=report.position)

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def summary(self, instance: RtspInstance) -> str:
        """One-line human-readable summary."""
        report = self.validate(instance)
        status = "valid" if report.ok else f"INVALID@{report.position}"
        return (
            f"Schedule[{len(self)} actions, {len(self.transfers())} transfers, "
            f"{report.dummy_transfers} dummy, cost={report.cost:.6g}, {status}]"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        head = ", ".join(str(a) for a in self._actions[:6])
        tail = ", …" if len(self._actions) > 6 else ""
        return f"Schedule([{head}{tail}], len={len(self)})"
