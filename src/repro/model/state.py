"""Mutable simulation state for stepwise schedule execution.

:class:`SystemState` tracks the current replication matrix ``X^u``, free
storage per server, and per-object replicator sets, and implements the
action semantics of paper §3.2:

* ``T_ikj`` is valid iff ``S_j`` replicates ``O_k``, ``S_i`` does not, and
  ``S_i`` has free storage for a copy;
* ``D_ik`` is valid iff ``S_i`` replicates ``O_k``.

The dummy server (index ``instance.dummy``) permanently replicates every
object, has unbounded storage, and can never be a transfer target or a
deletion site.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.model.actions import Action, Delete, Transfer
from repro.model.instance import RtspInstance
from repro.model.nearest import NearestSourceIndex
from repro.util.errors import InvalidActionError

#: Numerical slack for storage comparisons (sizes are usually integers,
#: but generators may produce floats).
CAPACITY_EPS = 1e-9


class SystemState:
    """Current replication state of an instance, supporting apply/undo.

    Parameters
    ----------
    instance:
        The problem instance providing sizes, capacities and costs.
    placement:
        Starting ``M x N`` replication matrix; defaults to ``X_old``.
    """

    def __init__(
        self, instance: RtspInstance, placement: Optional[np.ndarray] = None
    ) -> None:
        self.instance = instance
        start = instance.x_old if placement is None else placement
        m, n = instance.num_servers, instance.num_objects
        self._dummy = instance.dummy
        if start.shape != (m, n):
            raise ValueError(f"placement must be {m}x{n}, got {start.shape}")
        self._holds = np.array(start, dtype=np.int8, copy=True)
        self._free = instance.capacities - (
            self._holds.astype(np.float64) @ instance.sizes
        )
        if self._free.min(initial=0.0) < -CAPACITY_EPS:
            raise InvalidActionError("starting placement violates capacities")
        # Exact free-space ledger. Accumulating float deltas drifts past
        # CAPACITY_EPS over enough evict/deliver cycles, so the published
        # ``_free`` array is never float-accumulated directly:
        #
        # * integral sizes+capacities (the common case — the paper's
        #   workloads and the scaling benchmarks use whole data units):
        #   an int64 ledger is updated and mirrored into ``_free``, so
        #   every published value is exact;
        # * fractional inputs: Neumaier compensated summation over the
        #   deltas, published as ``raw + compensation`` after every
        #   mutation, keeping the error at a single rounding instead of
        #   a random walk.
        sizes = instance.sizes
        exact = bool(
            np.all(sizes == np.floor(sizes))
            and np.all(instance.capacities == np.floor(instance.capacities))
            and (sizes.size == 0 or float(sizes.max()) < 2**53)
            and (
                instance.capacities.size == 0
                or float(instance.capacities.max()) < 2**53
            )
        )
        if exact:
            self._sizes_int = sizes.astype(np.int64)
            self._free_int = np.rint(self._free).astype(np.int64)
            self._free[:] = self._free_int
            self._free_comp = None
        else:
            self._sizes_int = None
            self._free_int = None
            self._free_comp = np.zeros_like(self._free)
            self._free_raw = self._free.copy()
        self._replicators: List[Set[int]] = [
            set(np.flatnonzero(self._holds[:, k]).tolist()) for k in range(n)
        ]
        self._index = NearestSourceIndex(
            instance, self._holds, self._replicators
        )

    # ------------------------------------------------------------------
    # free-space ledger (exact; see __init__)
    # ------------------------------------------------------------------
    def _free_add(self, server: int, obj: int, sign: int) -> None:
        """Adjust ``server``'s free space by ``sign * sizes[obj]`` exactly."""
        if self._free_int is not None:
            self._free_int[server] += sign * self._sizes_int[obj]
            self._free[server] = self._free_int[server]
            return
        delta = sign * float(self.instance.sizes[obj])
        raw = float(self._free_raw[server])
        total = raw + delta
        if abs(raw) >= abs(delta):
            self._free_comp[server] += (raw - total) + delta
        else:
            self._free_comp[server] += (delta - total) + raw
        self._free_raw[server] = total
        self._free[server] = total + self._free_comp[server]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def dummy(self) -> int:
        """Index of the dummy server (cached; queried on every action)."""
        return self._dummy

    def holds(self, server: int, obj: int) -> bool:
        """Whether ``server`` currently replicates ``obj``.

        The dummy server holds everything by definition.
        """
        if server == self.dummy:
            return True
        return bool(self._holds[server, obj])

    def free_space(self, server: int) -> float:
        """Remaining storage at ``server`` (``inf`` for the dummy)."""
        if server == self.dummy:
            return float("inf")
        return float(self._free[server])

    def free_array(self) -> np.ndarray:
        """Read-only view of per-server free storage (real servers only)."""
        view = self._free.view()
        view.setflags(write=False)
        return view

    def replicators(self, obj: int) -> FrozenSet[int]:
        """Real servers currently replicating ``obj`` (dummy excluded)."""
        return frozenset(self._replicators[obj])

    def num_replicas(self, obj: int) -> int:
        """Number of real replicas of ``obj``."""
        return len(self._replicators[obj])

    def placement(self) -> np.ndarray:
        """Copy of the current ``M x N`` replication matrix."""
        return self._holds.copy()

    def matches(self, x: np.ndarray) -> bool:
        """Whether the current placement equals ``x`` exactly."""
        return bool(np.array_equal(self._holds, x))

    # ------------------------------------------------------------------
    # nearest-replicator queries (paper's N(i,k,X) and N2(i,k,X))
    # ------------------------------------------------------------------
    @property
    def index(self) -> NearestSourceIndex:
        """The incremental nearest-source index backing the queries below."""
        return self._index

    def nearest(
        self, server: int, obj: int, exclude: Iterable[int] = ()
    ) -> int:
        """Cheapest current source of ``obj`` for ``server``.

        Returns the dummy index when no (non-excluded) real replicator
        exists. ``server`` itself is never a candidate. Ties break toward
        the lowest server index for determinism.
        """
        return self._index.nearest(server, obj, exclude)

    def nearest_pair(self, server: int, obj: int) -> Tuple[int, int]:
        """``(N(i,k,X), N2(i,k,X))``: nearest and second-nearest sources.

        Either entry degrades to the dummy index when fewer than one / two
        real replicators exist.
        """
        return self._index.nearest_pair(server, obj)

    def nearest_cost(self, server: int, obj: int) -> float:
        """Per-unit cost to the nearest current source of ``obj``."""
        return self._index.nearest_cost(server, obj)

    def nearest_costs(self, obj: int) -> np.ndarray:
        """Per-server unit cost to the nearest current source of ``obj``.

        One cached vector over every possible target (index ``i`` is the
        cost ``l_{i,N(i,k,X)}``); recomputed lazily after mutations of
        ``obj``'s replicator set. Treat as read-only.
        """
        return self._index.nearest_cost_row(obj)

    # ------------------------------------------------------------------
    # action semantics
    # ------------------------------------------------------------------
    def _out_of_range(self, action: Action) -> Optional[str]:
        """Range-check the action's indices (servers may include the dummy)."""
        if isinstance(action, Transfer):
            servers, obj = (action.target, action.source), action.obj
        else:
            servers, obj = (action.server,), action.obj
        for s in servers:
            if not 0 <= s <= self.dummy:
                return f"server index {s} out of range [0, {self.dummy}]"
        if not 0 <= obj < self.instance.num_objects:
            return (
                f"object index {obj} out of range "
                f"[0, {self.instance.num_objects})"
            )
        return None

    def explain_invalid(self, action: Action) -> Optional[str]:
        """Reason ``action`` is invalid in this state, or ``None`` if valid."""
        bounds = self._out_of_range(action)
        if bounds is not None:
            return bounds
        if isinstance(action, Transfer):
            i, k, j = action.target, action.obj, action.source
            if i == self.dummy:
                return "cannot transfer onto the dummy server"
            if i == j:
                return "transfer source equals target"
            if not self.holds(j, k):
                return f"source S_{j} does not replicate O_{k}"
            if self.holds(i, k):
                return f"target S_{i} already replicates O_{k}"
            if self._free[i] + CAPACITY_EPS < self.instance.sizes[k]:
                return (
                    f"target S_{i} lacks space for O_{k} "
                    f"(free={self._free[i]:.6g}, size={self.instance.sizes[k]:.6g})"
                )
            return None
        if isinstance(action, Delete):
            i, k = action.server, action.obj
            if i == self.dummy:
                return "cannot delete from the dummy server"
            if not self.holds(i, k):
                return f"S_{i} does not replicate O_{k}"
            return None
        return f"unknown action type {type(action).__name__}"

    def is_valid(self, action: Action) -> bool:
        """Whether ``action`` may be applied in the current state."""
        return self.explain_invalid(action) is None

    def apply(self, action: Action, position: Optional[int] = None) -> None:
        """Apply ``action``, mutating the state.

        Raises :class:`InvalidActionError` (with the offending action and
        optional schedule position attached) if the action is invalid.
        """
        reason = self.explain_invalid(action)
        if reason is not None:
            raise InvalidActionError(
                f"invalid action {action}: {reason}", action=action, position=position
            )
        if isinstance(action, Transfer):
            self.apply_transfer_trusted(action.target, action.obj)
        else:
            self.apply_delete_trusted(action.server, action.obj)

    def apply_transfer_trusted(self, target: int, obj: int) -> None:
        """Record a transfer of ``obj`` onto ``target`` without validation.

        The trusted fast path for the flat builder core
        (:mod:`repro.flat`): no :class:`Transfer` object is allocated and
        no validity check runs, so the caller must guarantee the paper's
        transfer preconditions (a live source exists, ``target`` lacks
        the replica and has room). The state mutation — including the
        exact free-space ledger and the nearest-source index — is
        identical to :meth:`apply`.
        """
        self._holds[target, obj] = 1
        self._free_add(target, obj, -1)
        self._replicators[obj].add(target)
        self._index.add_holder(obj, target)

    def apply_delete_trusted(self, server: int, obj: int) -> None:
        """Record a deletion at ``server`` without validation.

        Trusted counterpart of :meth:`apply_transfer_trusted`; the caller
        must guarantee ``server`` currently replicates ``obj``.
        """
        self._holds[server, obj] = 0
        self._free_add(server, obj, 1)
        self._replicators[obj].discard(server)
        self._index.remove_holder(obj, server)

    def _check_undoable(self, action: Action, mutated_server: int) -> None:
        """Shared bounds/dummy guard for both ``undo`` branches.

        ``apply`` funnels every action through :meth:`explain_invalid`;
        ``undo`` historically did not, so out-of-range indices could
        corrupt state through numpy wrap-around (negative indices) or
        raise a bare ``IndexError``, and the dummy server's row — which
        does not exist in the placement matrix — could be addressed.
        """
        bounds = self._out_of_range(action)
        if bounds is not None:
            raise InvalidActionError(f"cannot undo {action}: {bounds}")
        if mutated_server == self.dummy:
            raise InvalidActionError(
                f"cannot undo {action}: the dummy server's holdings are "
                "immutable"
            )

    def undo(self, action: Action) -> None:
        """Invert a previously applied ``action``.

        Only correct when ``action`` was the most recent mutation (or when
        the caller otherwise guarantees the inverse is consistent); used by
        the exact solver's depth-first search.
        """
        if isinstance(action, Transfer):
            i, k = action.target, action.obj
            self._check_undoable(action, i)
            if not self._holds[i, k]:
                raise InvalidActionError(f"cannot undo {action}: replica absent")
            self.apply_delete_trusted(i, k)
        elif isinstance(action, Delete):
            i, k = action.server, action.obj
            self._check_undoable(action, i)
            if self._holds[i, k]:
                raise InvalidActionError(f"cannot undo {action}: replica present")
            if self._free[i] + CAPACITY_EPS < self.instance.sizes[k]:
                raise InvalidActionError(f"cannot undo {action}: no space left")
            self.apply_transfer_trusted(i, k)
        else:
            raise InvalidActionError(f"unknown action type {type(action).__name__}")

    # ------------------------------------------------------------------
    # fault semantics
    # ------------------------------------------------------------------
    def crash_server(self, server: int) -> List[Delete]:
        """Lose every replica held at ``server`` (a crash with data loss).

        Storage is freed (the machine rejoins empty), so the server can
        still receive replicas afterwards. Returns the synthetic
        :class:`Delete` actions describing the loss, in ascending object
        order — replaying them against the pre-crash state reproduces the
        post-crash state exactly, which is what lets failure traces
        re-validate as ordinary action sequences.
        """
        if not 0 <= server < self.instance.num_servers:
            raise InvalidActionError(
                f"cannot crash server {server}: index out of range "
                f"[0, {self.instance.num_servers}) (the dummy never crashes)"
            )
        lost = [
            Delete(server, int(k))
            for k in np.flatnonzero(self._holds[server]).tolist()
        ]
        for action in lost:
            self.apply(action)
        return lost

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def copy(self) -> "SystemState":
        """Deep copy (the shared immutable instance is not duplicated)."""
        dup = object.__new__(SystemState)
        dup.instance = self.instance
        dup._dummy = self._dummy
        dup._holds = self._holds.copy()
        dup._free = self._free.copy()
        dup._sizes_int = self._sizes_int
        if self._free_int is not None:
            dup._free_int = self._free_int.copy()
            dup._free_comp = None
        else:
            dup._free_int = None
            dup._free_comp = self._free_comp.copy()
            dup._free_raw = self._free_raw.copy()
        dup._replicators = [set(s) for s in self._replicators]
        dup._index = self._index.copy(dup._holds, dup._replicators)
        return dup

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SystemState(replicas={int(self._holds.sum())}, "
            f"free_min={float(self._free.min()):.4g})"
        )
