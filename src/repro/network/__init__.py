"""Network substrate: topology generation and communication-cost matrices.

The paper evaluates RTSP on a 50-node tree generated with the BRITE tool
under the Barabási–Albert model, with uniform-integer link costs and
server-to-server costs equal to aggregated shortest-path link costs. This
subpackage re-implements that substrate:

* :mod:`repro.network.topology` — the :class:`Topology` container,
* :mod:`repro.network.brite` — BRITE-like Barabási–Albert generator,
* :mod:`repro.network.generators` — additional reference topologies,
* :mod:`repro.network.paths` — all-pairs shortest paths (Dijkstra and a
  vectorised Floyd–Warshall),
* :mod:`repro.network.costmatrix` — cost-matrix construction and the
  dummy-server extension of §3.3.
"""

from repro.network.topology import Topology
from repro.network.brite import barabasi_albert_topology, brite_paper_topology
from repro.network.generators import (
    star_topology,
    ring_topology,
    line_topology,
    grid_topology,
    complete_topology,
    random_tree_topology,
    erdos_renyi_topology,
    waxman_topology,
)
from repro.network.paths import (
    all_pairs_shortest_paths,
    dijkstra,
    floyd_warshall,
)
from repro.network.costmatrix import (
    cost_matrix_from_topology,
    dummy_link_cost,
    extend_with_dummy,
    strip_dummy,
    uniform_cost_matrix,
)

__all__ = [
    "Topology",
    "barabasi_albert_topology",
    "brite_paper_topology",
    "star_topology",
    "ring_topology",
    "line_topology",
    "grid_topology",
    "complete_topology",
    "random_tree_topology",
    "erdos_renyi_topology",
    "waxman_topology",
    "all_pairs_shortest_paths",
    "dijkstra",
    "floyd_warshall",
    "cost_matrix_from_topology",
    "dummy_link_cost",
    "extend_with_dummy",
    "strip_dummy",
    "uniform_cost_matrix",
]
