"""BRITE-like Barabási–Albert topology generation.

The paper generates its server network with the BRITE tool [16] configured
for 50 nodes with connectivity 1 under the Barabási–Albert (BA) model,
yielding a power-law *tree*, and assigns each link a fixed cost drawn
uniformly from {1, …, 10}. BRITE itself is an external Java/C++ tool; this
module re-implements the relevant slice of it: incremental growth with
preferential attachment, degree-proportional target selection, and uniform
link-cost assignment.

With connectivity ``m = 1`` each arriving node attaches to exactly one
existing node chosen with probability proportional to its current degree —
the classic BA process of [2], producing a scale-free tree.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.network.topology import Topology
from repro.util.errors import ConfigurationError
from repro.util.rng import ensure_rng


def barabasi_albert_topology(
    n: int,
    m: int = 1,
    cost_low: float = 1.0,
    cost_high: float = 10.0,
    integer_costs: bool = True,
    rng=None,
) -> Topology:
    """Generate a Barabási–Albert topology with uniform link costs.

    Parameters
    ----------
    n:
        Total number of nodes (>= max(2, m + 1)).
    m:
        Number of links each new node creates ("connectivity" in BRITE
        terms). ``m=1`` gives a tree, matching the paper's setup.
    cost_low, cost_high:
        Bounds of the uniform link-cost distribution (inclusive for the
        integer case, matching BRITE's U[1,10] default).
    integer_costs:
        Draw integer costs from ``{cost_low, …, cost_high}`` when true,
        else continuous uniform.
    rng:
        Seed or generator for reproducibility.
    """
    if m < 1:
        raise ConfigurationError("connectivity m must be >= 1")
    if n < m + 1:
        raise ConfigurationError(f"need at least m+1={m + 1} nodes, got {n}")
    if cost_high < cost_low:
        raise ConfigurationError("cost_high must be >= cost_low")
    gen = ensure_rng(rng)

    topo = Topology(n)
    # Seed graph: a clique over the first m+1 nodes so every node starts
    # with positive degree and the preferential-attachment weights are
    # well defined. For m=1 this is a single link.
    repeated: list = []  # node id repeated once per incident link endpoint
    for u in range(m + 1):
        for v in range(u + 1, m + 1):
            topo.add_link(u, v, _draw_cost(gen, cost_low, cost_high, integer_costs))
            repeated.append(u)
            repeated.append(v)

    for new in range(m + 1, n):
        targets: set = set()
        while len(targets) < m:
            # Selecting a uniform entry from `repeated` selects an existing
            # node with probability proportional to its degree.
            targets.add(repeated[int(gen.integers(0, len(repeated)))])
        for t in targets:
            topo.add_link(new, t, _draw_cost(gen, cost_low, cost_high, integer_costs))
            repeated.append(new)
            repeated.append(t)
    return topo


def brite_paper_topology(
    n: int = 50,
    cost_low: float = 1.0,
    cost_high: float = 10.0,
    rng=None,
) -> Topology:
    """The exact topology family used in the paper's evaluation (§5.1).

    50 nodes, connectivity 1 (tree), BA attachment, integer link costs
    uniform in {1..10}.
    """
    topo = barabasi_albert_topology(
        n=n,
        m=1,
        cost_low=cost_low,
        cost_high=cost_high,
        integer_costs=True,
        rng=rng,
    )
    assert topo.is_tree(), "connectivity-1 BA generation must yield a tree"
    return topo


def degree_histogram(topo: Topology) -> np.ndarray:
    """Return ``hist`` where ``hist[d]`` counts nodes of degree ``d``.

    Used by tests to check the heavy-tailed degree distribution the BA
    process is expected to produce.
    """
    degrees = [topo.degree(u) for u in range(topo.num_nodes)]
    hist = np.zeros(max(degrees) + 1, dtype=np.int64)
    for d in degrees:
        hist[d] += 1
    return hist


def _draw_cost(
    gen: np.random.Generator, low: float, high: float, integer: bool
) -> float:
    if integer:
        return float(gen.integers(int(low), int(high) + 1))
    return float(gen.uniform(low, high))
