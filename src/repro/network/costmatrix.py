"""Communication-cost matrices and the dummy-server extension (paper §3.3).

Conventions used throughout the library:

* A *plain* cost matrix is an ``M x M`` symmetric float array with zero
  diagonal; entry ``[i, j]`` is the per-data-unit cost between servers
  ``i`` and ``j``.
* An *extended* cost matrix has one extra trailing row/column for the
  dummy server ``S_d`` (index ``M``), whose cost to every real server is
  ``a * (max(l) + 1)`` with ``a >= 1`` by default. Algorithms operate on
  extended matrices so a source always exists.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.network.paths import all_pairs_shortest_paths
from repro.network.topology import Topology
from repro.util.errors import ConfigurationError
from repro.util.validation import check_symmetric


def cost_matrix_from_topology(
    topo: Topology, method: Optional[str] = None
) -> np.ndarray:
    """Server-to-server cost matrix = shortest-path aggregated link costs.

    Raises if the topology is disconnected (infinite entries would poison
    every downstream nearest-source query).
    """
    costs = all_pairs_shortest_paths(topo, method=method)
    if not np.isfinite(costs).all():
        raise ConfigurationError(
            "topology is disconnected; cost matrix has infinite entries"
        )
    return costs


def uniform_cost_matrix(m: int, cost: float = 1.0) -> np.ndarray:
    """Cost matrix with the same cost between every distinct server pair."""
    if m <= 0:
        raise ConfigurationError("need at least one server")
    mat = np.full((m, m), float(cost), dtype=np.float64)
    np.fill_diagonal(mat, 0.0)
    return mat


def dummy_link_cost(costs: np.ndarray, a: float = 1.0) -> float:
    """The paper's dummy-server link cost ``a * (max(l_ij) + 1)``.

    ``a >= 1`` makes the dummy the strictly most expensive source, so any
    cost-minimising schedule also minimises dummy usage. ``a < 1`` models
    cheap out-of-band replica creation and is accepted but unusual.
    """
    if a <= 0:
        raise ConfigurationError("dummy cost constant a must be positive")
    base = float(costs.max()) if costs.size else 0.0
    return a * (base + 1.0)


def extend_with_dummy(costs: np.ndarray, a: float = 1.0) -> np.ndarray:
    """Append the dummy server as the last row/column of ``costs``.

    The input must be a plain (square, symmetric, zero-diagonal) matrix;
    the result is an ``(M+1) x (M+1)`` matrix whose last index is ``S_d``.
    """
    costs = check_symmetric(costs, "cost matrix")
    if costs.size and float(np.abs(np.diagonal(costs)).max()) != 0.0:
        raise ConfigurationError("cost matrix must have a zero diagonal")
    m = costs.shape[0]
    d = dummy_link_cost(costs, a)
    out = np.zeros((m + 1, m + 1), dtype=np.float64)
    out[:m, :m] = costs
    out[m, :m] = d
    out[:m, m] = d
    return out


def strip_dummy(extended: np.ndarray) -> Tuple[np.ndarray, float]:
    """Inverse of :func:`extend_with_dummy`.

    Returns ``(plain_costs, dummy_cost)``. The trailing row/column must be
    constant off-diagonal, otherwise the matrix was not produced by
    :func:`extend_with_dummy`.
    """
    extended = np.asarray(extended, dtype=np.float64)
    if extended.ndim != 2 or extended.shape[0] != extended.shape[1]:
        raise ConfigurationError("extended matrix must be square")
    m = extended.shape[0] - 1
    if m < 1:
        raise ConfigurationError("extended matrix must cover at least one server")
    row = extended[m, :m]
    if row.size and not np.allclose(row, row[0]):
        raise ConfigurationError("last row is not a uniform dummy row")
    return extended[:m, :m].copy(), float(row[0]) if row.size else 0.0
