"""Reference topologies beyond the paper's BA tree.

The paper evaluates on one topology family; a reusable library should let
users plug in whatever their deployment looks like. These generators cover
the standard shapes used in replica-placement literature (stars for
hub-and-spoke CDNs, rings/lines for chained PoPs, grids for data-centre
fabrics, Waxman/Erdős–Rényi for random internets).

All generators share the link-cost convention of :mod:`repro.network.brite`:
costs drawn uniformly from ``[cost_low, cost_high]`` (integer by default).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.network.topology import Topology
from repro.util.errors import ConfigurationError
from repro.util.rng import ensure_rng


def _cost(gen, low: float, high: float, integer: bool) -> float:
    if integer:
        return float(gen.integers(int(low), int(high) + 1))
    return float(gen.uniform(low, high))


def star_topology(
    n: int, cost_low: float = 1.0, cost_high: float = 10.0,
    integer_costs: bool = True, rng=None,
) -> Topology:
    """Hub-and-spoke: node 0 is the hub, all others attach to it."""
    if n < 2:
        raise ConfigurationError("star needs at least 2 nodes")
    gen = ensure_rng(rng)
    topo = Topology(n)
    for v in range(1, n):
        topo.add_link(0, v, _cost(gen, cost_low, cost_high, integer_costs))
    return topo


def line_topology(
    n: int, cost_low: float = 1.0, cost_high: float = 10.0,
    integer_costs: bool = True, rng=None,
) -> Topology:
    """Path graph ``0 — 1 — … — n-1``."""
    if n < 2:
        raise ConfigurationError("line needs at least 2 nodes")
    gen = ensure_rng(rng)
    topo = Topology(n)
    for v in range(1, n):
        topo.add_link(v - 1, v, _cost(gen, cost_low, cost_high, integer_costs))
    return topo


def ring_topology(
    n: int, cost_low: float = 1.0, cost_high: float = 10.0,
    integer_costs: bool = True, rng=None,
) -> Topology:
    """Cycle graph: a line plus the closing link ``n-1 — 0``."""
    if n < 3:
        raise ConfigurationError("ring needs at least 3 nodes")
    gen = ensure_rng(rng)
    topo = line_topology(n, cost_low, cost_high, integer_costs, gen)
    topo.add_link(n - 1, 0, _cost(gen, cost_low, cost_high, integer_costs))
    return topo


def grid_topology(
    rows: int, cols: int, cost_low: float = 1.0, cost_high: float = 10.0,
    integer_costs: bool = True, rng=None,
) -> Topology:
    """``rows x cols`` mesh; node ``r*cols + c`` links to its 4-neighbours."""
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise ConfigurationError("grid needs at least 2 nodes")
    gen = ensure_rng(rng)
    topo = Topology(rows * cols)
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            if c + 1 < cols:
                topo.add_link(u, u + 1, _cost(gen, cost_low, cost_high, integer_costs))
            if r + 1 < rows:
                topo.add_link(u, u + cols, _cost(gen, cost_low, cost_high, integer_costs))
    return topo


def complete_topology(
    n: int, cost_low: float = 1.0, cost_high: float = 10.0,
    integer_costs: bool = True, rng=None,
) -> Topology:
    """Full mesh over ``n`` nodes."""
    if n < 2:
        raise ConfigurationError("complete graph needs at least 2 nodes")
    gen = ensure_rng(rng)
    topo = Topology(n)
    for u in range(n):
        for v in range(u + 1, n):
            topo.add_link(u, v, _cost(gen, cost_low, cost_high, integer_costs))
    return topo


def random_tree_topology(
    n: int, cost_low: float = 1.0, cost_high: float = 10.0,
    integer_costs: bool = True, rng=None,
) -> Topology:
    """Uniform random recursive tree: node ``v`` attaches to a uniform
    earlier node (unlike BA, attachment is degree-blind)."""
    if n < 2:
        raise ConfigurationError("tree needs at least 2 nodes")
    gen = ensure_rng(rng)
    topo = Topology(n)
    for v in range(1, n):
        parent = int(gen.integers(0, v))
        topo.add_link(parent, v, _cost(gen, cost_low, cost_high, integer_costs))
    return topo


def erdos_renyi_topology(
    n: int, p: float, cost_low: float = 1.0, cost_high: float = 10.0,
    integer_costs: bool = True, connect: bool = True, rng=None,
) -> Topology:
    """G(n, p) random graph; optionally patched to be connected.

    When ``connect`` is true, any disconnected component is stitched to the
    growing giant component with one extra random link, so downstream
    shortest-path costs stay finite.
    """
    if n < 2:
        raise ConfigurationError("graph needs at least 2 nodes")
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError("p must lie in [0, 1]")
    gen = ensure_rng(rng)
    topo = Topology(n)
    mask = gen.random((n, n)) < p
    for u in range(n):
        for v in range(u + 1, n):
            if mask[u, v]:
                topo.add_link(u, v, _cost(gen, cost_low, cost_high, integer_costs))
    if connect:
        _connect_components(topo, gen, cost_low, cost_high, integer_costs)
    return topo


def waxman_topology(
    n: int, alpha: float = 0.4, beta: float = 0.2,
    cost_low: float = 1.0, cost_high: float = 10.0,
    integer_costs: bool = True, connect: bool = True, rng=None,
) -> Topology:
    """Waxman random graph (the other classic BRITE model).

    Nodes are placed uniformly on the unit square and each pair links with
    probability ``alpha * exp(-d / (beta * L))`` where ``d`` is Euclidean
    distance and ``L`` the diameter of the placement area.
    """
    if n < 2:
        raise ConfigurationError("graph needs at least 2 nodes")
    if alpha <= 0 or beta <= 0:
        raise ConfigurationError("alpha and beta must be positive")
    gen = ensure_rng(rng)
    pts = gen.random((n, 2))
    diam = math.sqrt(2.0)
    topo = Topology(n)
    for u in range(n):
        for v in range(u + 1, n):
            d = float(np.hypot(*(pts[u] - pts[v])))
            if gen.random() < alpha * math.exp(-d / (beta * diam)):
                topo.add_link(u, v, _cost(gen, cost_low, cost_high, integer_costs))
    if connect:
        _connect_components(topo, gen, cost_low, cost_high, integer_costs)
    return topo


def _connect_components(
    topo: Topology, gen, cost_low: float, cost_high: float, integer: bool
) -> None:
    """Stitch disconnected components together with random bridge links."""
    n = topo.num_nodes
    comp = [-1] * n
    n_comp = 0
    for start in range(n):
        if comp[start] != -1:
            continue
        stack = [start]
        comp[start] = n_comp
        while stack:
            u = stack.pop()
            for v in topo.neighbors(u):
                if comp[v] == -1:
                    comp[v] = n_comp
                    stack.append(v)
        n_comp += 1
    if n_comp == 1:
        return
    # Link a random member of each extra component to a random node of
    # component 0's growing union.
    members = [[u for u in range(n) if comp[u] == c] for c in range(n_comp)]
    pool = list(members[0])
    for c in range(1, n_comp):
        a = pool[int(gen.integers(0, len(pool)))]
        b = members[c][int(gen.integers(0, len(members[c])))]
        topo.add_link(a, b, _cost(gen, cost_low, cost_high, integer))
        pool.extend(members[c])
