"""All-pairs shortest paths over a :class:`~repro.network.topology.Topology`.

Server-to-server communication costs in the paper are the aggregated link
costs along shortest paths (§5.1). Two interchangeable implementations are
provided:

* :func:`dijkstra` — binary-heap Dijkstra from one source, O(E log V);
  repeated over sources it is the method of choice for the sparse BA trees
  the paper uses.
* :func:`floyd_warshall` — numpy-vectorised Floyd–Warshall, O(V^3) but with
  tiny constants; preferable for small dense graphs and used to cross-check
  Dijkstra in tests.

:func:`all_pairs_shortest_paths` picks automatically based on density.
"""

from __future__ import annotations

import heapq
from typing import Optional

import numpy as np

from repro.network.topology import Topology
from repro.util.errors import ConfigurationError


def dijkstra(topo: Topology, source: int) -> np.ndarray:
    """Single-source shortest path costs from ``source``.

    Returns a length-``n`` float array; unreachable nodes get ``inf``.
    """
    n = topo.num_nodes
    if not 0 <= source < n:
        raise ConfigurationError(f"source {source} out of range for n={n}")
    dist = np.full(n, np.inf, dtype=np.float64)
    dist[source] = 0.0
    visited = np.zeros(n, dtype=bool)
    heap = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if visited[u]:
            continue
        visited[u] = True
        for v, w in topo.neighbors(u).items():
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


def floyd_warshall(adjacency: np.ndarray) -> np.ndarray:
    """All-pairs shortest paths from a dense adjacency matrix.

    ``adjacency[u, v]`` is the direct link cost (``inf`` if absent, 0 on
    the diagonal). The update over intermediate node ``k`` is vectorised as
    a broadcasted outer sum, which keeps the inner loops in C.
    """
    dist = np.array(adjacency, dtype=np.float64, copy=True)
    n = dist.shape[0]
    if dist.shape != (n, n):
        raise ConfigurationError("adjacency must be square")
    for k in range(n):
        # dist = min(dist, dist[:, k, None] + dist[None, k, :]) in place.
        via_k = dist[:, k, None] + dist[None, k, :]
        np.minimum(dist, via_k, out=dist)
    return dist


def all_pairs_shortest_paths(
    topo: Topology, method: Optional[str] = None
) -> np.ndarray:
    """All-pairs shortest-path cost matrix for ``topo``.

    ``method`` may be ``"dijkstra"``, ``"floyd-warshall"``, or ``None`` to
    choose by density (Dijkstra for sparse graphs, FW for dense).
    """
    n = topo.num_nodes
    if method is None:
        # FW does n^3 work; n runs of Dijkstra do ~n * E log n. Prefer
        # Dijkstra when E is well below n^2.
        method = "dijkstra" if topo.num_links < n * max(1, n // 8) else "floyd-warshall"
    if method == "dijkstra":
        out = np.empty((n, n), dtype=np.float64)
        for s in range(n):
            out[s] = dijkstra(topo, s)
        return out
    if method == "floyd-warshall":
        return floyd_warshall(topo.adjacency_matrix())
    raise ConfigurationError(f"unknown APSP method {method!r}")
