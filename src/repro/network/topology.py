"""Server-network topology container.

A :class:`Topology` is an undirected weighted graph over ``n`` server
nodes. Link weights are the per-data-unit communication costs of the
physical (or virtual) links; end-to-end server costs are derived by the
shortest-path routines in :mod:`repro.network.paths`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Tuple

import networkx as nx
import numpy as np

from repro.util.errors import ConfigurationError

Edge = Tuple[int, int, float]


class Topology:
    """Undirected weighted graph over servers ``0 .. n-1``.

    Parameters
    ----------
    n:
        Number of server nodes.
    edges:
        Iterable of ``(u, v, weight)`` triples. Parallel edges collapse to
        the cheapest weight; self-loops are rejected.
    """

    def __init__(self, n: int, edges: Iterable[Edge] = ()) -> None:
        if n <= 0:
            raise ConfigurationError("topology needs at least one node")
        self._n = int(n)
        self._adj: List[Dict[int, float]] = [dict() for _ in range(self._n)]
        for u, v, w in edges:
            self.add_link(u, v, w)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_link(self, u: int, v: int, weight: float) -> None:
        """Add (or cheapen) the undirected link ``u — v``."""
        u, v = int(u), int(v)
        if not (0 <= u < self._n and 0 <= v < self._n):
            raise ConfigurationError(f"link ({u},{v}) out of range for n={self._n}")
        if u == v:
            raise ConfigurationError("self-loops are not allowed")
        w = float(weight)
        if w < 0:
            raise ConfigurationError("link weights must be non-negative")
        current = self._adj[u].get(v)
        if current is None or w < current:
            self._adj[u][v] = w
            self._adj[v][u] = w

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of server nodes."""
        return self._n

    @property
    def num_links(self) -> int:
        """Number of undirected links."""
        return sum(len(nbrs) for nbrs in self._adj) // 2

    def neighbors(self, u: int) -> Dict[int, float]:
        """Mapping ``neighbor -> link weight`` for node ``u`` (a copy)."""
        return dict(self._adj[u])

    def degree(self, u: int) -> int:
        """Number of links incident to ``u``."""
        return len(self._adj[u])

    def has_link(self, u: int, v: int) -> bool:
        """Whether the undirected link ``u — v`` exists."""
        return v in self._adj[u]

    def link_weight(self, u: int, v: int) -> float:
        """Weight of link ``u — v``; raises ``KeyError`` if absent."""
        return self._adj[u][v]

    def edges(self) -> Iterator[Edge]:
        """Iterate over undirected edges once each, as ``(u, v, w)`` with u < v."""
        for u, nbrs in enumerate(self._adj):
            for v, w in nbrs.items():
                if u < v:
                    yield (u, v, w)

    def is_connected(self) -> bool:
        """Whether every node is reachable from node 0."""
        if self._n == 1:
            return True
        seen = [False] * self._n
        stack = [0]
        seen[0] = True
        count = 1
        while stack:
            u = stack.pop()
            for v in self._adj[u]:
                if not seen[v]:
                    seen[v] = True
                    count += 1
                    stack.append(v)
        return count == self._n

    def is_tree(self) -> bool:
        """Whether the topology is a connected acyclic graph."""
        return self.is_connected() and self.num_links == self._n - 1

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def adjacency_matrix(self, no_link: float = np.inf) -> np.ndarray:
        """Dense ``n x n`` link-weight matrix, ``no_link`` where absent.

        The diagonal is always zero.
        """
        mat = np.full((self._n, self._n), float(no_link), dtype=np.float64)
        np.fill_diagonal(mat, 0.0)
        for u, v, w in self.edges():
            mat[u, v] = w
            mat[v, u] = w
        return mat

    def to_networkx(self) -> nx.Graph:
        """Export as a :class:`networkx.Graph` with ``weight`` edge attributes."""
        g = nx.Graph()
        g.add_nodes_from(range(self._n))
        g.add_weighted_edges_from(self.edges())
        return g

    @classmethod
    def from_networkx(cls, g: nx.Graph, weight: str = "weight") -> "Topology":
        """Build a topology from a networkx graph.

        Node labels must be hashable; they are relabelled to ``0..n-1`` in
        sorted order of their string representation if not already integers.
        """
        nodes = list(g.nodes())
        if all(isinstance(u, (int, np.integer)) for u in nodes) and set(nodes) == set(
            range(len(nodes))
        ):
            index = {u: int(u) for u in nodes}
        else:
            index = {u: i for i, u in enumerate(sorted(nodes, key=str))}
        topo = cls(len(nodes))
        for u, v, data in g.edges(data=True):
            topo.add_link(index[u], index[v], float(data.get(weight, 1.0)))
        return topo

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Topology(n={self._n}, links={self.num_links})"
