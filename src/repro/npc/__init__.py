"""NP-completeness artifacts: 0/1 Knapsack and the Knapsack→RTSP reduction.

Paper §3.4 proves RTSP-decision NP-complete by reducing 0/1
Knapsack-decision to it. This subpackage makes the proof executable:

* :mod:`repro.npc.knapsack` — an exact dynamic-programming solver for
  0/1 Knapsack,
* :mod:`repro.npc.reduction` — builds the paper's RTSP instance from a
  Knapsack instance, produces the canonical optimal-form schedule for a
  chosen subset, and decodes a schedule back into a Knapsack solution.

The test suite round-trips random Knapsack instances through the
reduction and the exact RTSP solver and checks the decoded subset attains
the DP optimum.
"""

from repro.npc.knapsack import KnapsackInstance, KnapsackSolution, solve_knapsack
from repro.npc.reduction import (
    KnapsackReduction,
    reduce_knapsack_to_rtsp,
    canonical_schedule,
    decode_schedule,
    decision_threshold,
)

__all__ = [
    "KnapsackInstance",
    "KnapsackSolution",
    "solve_knapsack",
    "KnapsackReduction",
    "reduce_knapsack_to_rtsp",
    "canonical_schedule",
    "decode_schedule",
    "decision_threshold",
]
