"""Exact 0/1 Knapsack solver (dynamic programming over capacity).

Definitions follow the paper's §3.4 statement [15]: ``n`` objects with
positive integer benefits ``b_i`` and sizes ``s_i``; find a subset ``W``
with ``sum(s_i) <= S`` maximising ``sum(b_i)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class KnapsackInstance:
    """A 0/1 Knapsack instance with positive integer data."""

    benefits: Tuple[int, ...]
    sizes: Tuple[int, ...]
    capacity: int

    def __post_init__(self) -> None:
        if len(self.benefits) != len(self.sizes):
            raise ConfigurationError("benefits and sizes must align")
        if any(b <= 0 for b in self.benefits) or any(s <= 0 for s in self.sizes):
            raise ConfigurationError("benefits and sizes must be positive integers")
        if self.capacity < 0:
            raise ConfigurationError("capacity must be non-negative")

    @property
    def num_objects(self) -> int:
        return len(self.benefits)

    @classmethod
    def create(cls, benefits: Sequence[int], sizes: Sequence[int], capacity: int):
        """Validating constructor from any sequences."""
        return cls(
            tuple(int(b) for b in benefits),
            tuple(int(s) for s in sizes),
            int(capacity),
        )


@dataclass(frozen=True)
class KnapsackSolution:
    """Optimal subset and its value/weight."""

    chosen: Tuple[int, ...]
    value: int
    weight: int


def solve_knapsack(instance: KnapsackInstance) -> KnapsackSolution:
    """Classic O(n * S) DP with backtracking for the chosen subset."""
    n, cap = instance.num_objects, instance.capacity
    # table[i][w] = best value using objects < i within weight w
    table = np.zeros((n + 1, cap + 1), dtype=np.int64)
    for i in range(1, n + 1):
        b, s = instance.benefits[i - 1], instance.sizes[i - 1]
        row, prev = table[i], table[i - 1]
        row[:] = prev
        if s <= cap:
            np.maximum(row[s:], prev[: cap - s + 1] + b, out=row[s:])
    value = int(table[n, cap])

    chosen: List[int] = []
    w = cap
    for i in range(n, 0, -1):
        if table[i, w] != table[i - 1, w]:
            chosen.append(i - 1)
            w -= instance.sizes[i - 1]
    chosen.reverse()
    weight = sum(instance.sizes[i] for i in chosen)
    return KnapsackSolution(tuple(chosen), value, weight)
