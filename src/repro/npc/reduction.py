"""The Knapsack → RTSP reduction of paper §3.4, executable.

Given a 0/1 Knapsack instance with ``n`` objects, the reduction builds an
RTSP instance with ``M = n + 3`` servers and ``N = n + 1`` objects:

* objects ``0..n-1`` are the Knapsack objects (size ``s_i``); object ``n``
  is the "big" object of size ``sum(s_i)``;
* server ``i < n`` holds (only) object ``i`` in both schemes, with
  capacity ``s_i``;
* server ``n`` (the paper's ``S_{n+1}``, capacity ``S + sum(s_i)``) holds
  the big object in ``X_old`` and all Knapsack objects in ``X_new``;
* server ``n+1`` (``S_{n+2}``, capacity ``sum(s_i)``) holds all Knapsack
  objects in ``X_old`` and the big object in ``X_new``;
* server ``n+2`` (``S_{n+3}``) holds the big object in both schemes;
* link costs: ``l(S_{n+1}, S_{n+2}) = 1``,
  ``l(S_i, S_{n+1}) = b'_i = b_i * P / s_i`` with ``P = prod(s_i)``, and
  ``l(S_{n+3}, S_{n+2}) = sum(b'_i + 1)``; other pairs route via shortest
  paths.

An optimal RTSP schedule then has the canonical form: move a subset ``W``
of Knapsack objects from ``S_{n+2}`` into ``S_{n+1}``'s spare space (cost
``s_i`` each), swap the big object across (cost ``sum(s_i)``), and fetch
the remaining Knapsack objects expensively from their home servers (cost
``b_i * P`` each) — so minimising cost maximises ``sum_{i in W} b_i``
subject to ``sum_{i in W} s_i <= S``: exactly Knapsack.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

import numpy as np

from repro.model.actions import Delete, Transfer
from repro.model.instance import RtspInstance
from repro.model.schedule import Schedule
from repro.npc.knapsack import KnapsackInstance
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class KnapsackReduction:
    """The reduction output: the RTSP instance plus decoding metadata."""

    knapsack: KnapsackInstance
    rtsp: RtspInstance
    size_product: int  # the paper's P = prod(s_i)

    @property
    def hub(self) -> int:
        """Index of the paper's ``S_{n+1}`` (receives the Knapsack objects)."""
        return self.knapsack.num_objects

    @property
    def warehouse(self) -> int:
        """Index of ``S_{n+2}`` (initially holds all Knapsack objects)."""
        return self.knapsack.num_objects + 1

    @property
    def archive(self) -> int:
        """Index of ``S_{n+3}`` (remote holder of the big object)."""
        return self.knapsack.num_objects + 2

    @property
    def big_object(self) -> int:
        """Index of the big object ``O_{n+1}``."""
        return self.knapsack.num_objects


def reduce_knapsack_to_rtsp(knapsack: KnapsackInstance) -> KnapsackReduction:
    """Build the paper's RTSP instance for ``knapsack``."""
    n = knapsack.num_objects
    if n < 1:
        raise ConfigurationError("knapsack must have at least one object")
    sizes_k = list(knapsack.sizes)
    total = sum(sizes_k)
    product = math.prod(sizes_k)
    b_prime = [knapsack.benefits[i] * product // sizes_k[i] for i in range(n)]

    m = n + 3
    num_objects = n + 1
    sizes = np.array(sizes_k + [total], dtype=np.float64)
    capacities = np.array(
        sizes_k + [knapsack.capacity + total, total, total], dtype=np.float64
    )

    hub, warehouse, archive = n, n + 1, n + 2
    # Direct links per the paper; remaining pairs use shortest paths.
    direct = np.full((m, m), np.inf)
    np.fill_diagonal(direct, 0.0)
    direct[hub, warehouse] = direct[warehouse, hub] = 1.0
    for i in range(n):
        direct[i, hub] = direct[hub, i] = float(b_prime[i])
    far = float(sum(bp + 1 for bp in b_prime))
    direct[archive, warehouse] = direct[warehouse, archive] = far

    # Floyd-Warshall closure over the sparse link set.
    costs = direct.copy()
    for k in range(m):
        np.minimum(costs, costs[:, k, None] + costs[None, k, :], out=costs)

    x_old = np.zeros((m, num_objects), dtype=np.int8)
    x_new = np.zeros((m, num_objects), dtype=np.int8)
    big = n
    for i in range(n):
        x_old[i, i] = 1
        x_new[i, i] = 1
    x_old[hub, big] = 1
    x_old[warehouse, :n] = 1
    x_old[archive, big] = 1
    x_new[hub, :n] = 1
    x_new[warehouse, big] = 1
    x_new[archive, big] = 1

    rtsp = RtspInstance.create(sizes, capacities, costs, x_old, x_new)
    return KnapsackReduction(knapsack=knapsack, rtsp=rtsp, size_product=product)


def canonical_schedule(
    reduction: KnapsackReduction, subset: Sequence[int]
) -> Schedule:
    """The H-OPT-form schedule for Knapsack subset ``subset``.

    Moves ``subset`` cheaply from the warehouse into the hub's spare
    space, swaps the big object across, then fetches the remaining
    Knapsack objects from their home servers. Raises when ``subset``
    violates the Knapsack capacity (the hub would not have the room).
    """
    knap = reduction.knapsack
    chosen: Set[int] = set(int(i) for i in subset)
    if any(i < 0 or i >= knap.num_objects for i in chosen):
        raise ConfigurationError("subset indices out of range")
    if sum(knap.sizes[i] for i in chosen) > knap.capacity:
        raise ConfigurationError("subset exceeds the knapsack capacity")

    hub, warehouse, big = reduction.hub, reduction.warehouse, reduction.big_object
    actions: List = []
    for i in sorted(chosen):
        actions.append(Transfer(hub, i, warehouse))
    for i in range(knap.num_objects):
        actions.append(Delete(warehouse, i))
    actions.append(Transfer(warehouse, big, hub))
    actions.append(Delete(hub, big))
    for i in range(knap.num_objects):
        if i not in chosen:
            actions.append(Transfer(hub, i, i))
    return Schedule(actions)


def canonical_cost(reduction: KnapsackReduction, subset: Sequence[int]) -> float:
    """Closed-form cost of :func:`canonical_schedule` for ``subset``."""
    knap = reduction.knapsack
    chosen = set(int(i) for i in subset)
    total = sum(knap.sizes)
    cheap = sum(knap.sizes[i] for i in chosen)
    expensive = reduction.size_product * sum(
        knap.benefits[i] for i in range(knap.num_objects) if i not in chosen
    )
    return float(cheap + total + expensive)


def decode_schedule(
    reduction: KnapsackReduction, schedule: Schedule
) -> Tuple[Set[int], int]:
    """Extract the Knapsack subset encoded by an RTSP schedule.

    The subset is the set of Knapsack objects that reached the hub via a
    *cheap* source (the warehouse) rather than their expensive home
    server; returns ``(subset, total_benefit)``.
    """
    knap = reduction.knapsack
    hub, warehouse = reduction.hub, reduction.warehouse
    subset: Set[int] = set()
    for action in schedule:
        if (
            isinstance(action, Transfer)
            and action.target == hub
            and action.obj < knap.num_objects
            and action.source == warehouse
        ):
            subset.add(action.obj)
    value = sum(knap.benefits[i] for i in subset)
    return subset, value


def decision_threshold(knapsack: KnapsackInstance, k: int) -> float:
    """The paper's decision bound: a valid schedule of cost at most
    ``sum(s_i) + (sum(b_i) - K) * P + S`` exists iff a Knapsack subset of
    value at least ``K`` does."""
    total_size = sum(knapsack.sizes)
    total_benefit = sum(knapsack.benefits)
    product = math.prod(knapsack.sizes)
    return float(total_size + (total_benefit - k) * product + knapsack.capacity)
