"""`repro.obs` — observability: tracing, metrics, events and profiling.

A zero-overhead-when-disabled instrumentation layer threaded through
the build → simulate → repair pipeline. Five pillars:

* :mod:`repro.obs.trace` — span-based :class:`Tracer` with nested
  spans, deterministic logical event numbering, versioned JSONL export
  (``rtsp-trace/1``) and Chrome trace-event export; :class:`NullTracer`
  is the free default.
* :mod:`repro.obs.metrics` — a process-local :class:`MetricsRegistry`
  of counters/gauges/histograms whose snapshots merge associatively, so
  parallel figure runs aggregate worker statistics instead of dropping
  them. Wired into the nearest-source index, the builders' selector and
  benefit caches, both simulators, and the repair engine.
* :mod:`repro.obs.events` — a live structured event stream
  (``rtsp-events/1``: shard lifecycle, builder waves, repair rounds,
  invariant failures) with worker-fragment merging, an ``on_event``
  hook for live progress rendering, and the bounded
  :class:`FlightRecorder` ring buffer that dumps the last moments
  before a failure to disk.
* :mod:`repro.obs.export` — Prometheus text exposition and OTLP-style
  JSON for metrics snapshots and span lists, round-trippable for
  validation.
* :mod:`repro.obs.profile` — :class:`StageProfiler` (per-stage wall
  clocks; successor of ``repro.util.timing.Stopwatch``) plus opt-in
  cProfile (:func:`profiled`) and tracemalloc (:func:`trace_memory`)
  context managers.

Activation is context-based (:mod:`repro.obs.context`): install a
tracer/registry with :func:`observed` and every instrumented layer
underneath starts reporting; with nothing installed the hot paths pay
a single ``None`` check. Example::

    from repro.obs import MetricsRegistry, Tracer, observed
    from repro.core.pipeline import build_pipeline

    tracer, metrics = Tracer(), MetricsRegistry()
    with observed(tracer=tracer, metrics=metrics):
        schedule = build_pipeline("GOLCF+H1+H2").run(instance, rng=0)
    tracer.write_jsonl("trace.jsonl")
    metrics.write_json("metrics.json")
"""

from repro.obs.context import (
    current_events,
    current_metrics,
    current_tracer,
    observed,
    use_events,
    use_metrics,
    use_tracer,
)
from repro.obs.events import (
    EVENTS_FORMAT,
    Event,
    EventStream,
    FlightRecorder,
    flight_recorded,
    load_events,
    render_event,
    validate_event_file,
    validate_event_lines,
)
from repro.obs.export import (
    metrics_to_otlp,
    otlp_to_snapshot,
    parse_prometheus_text,
    prometheus_text,
    sanitize_metric_name,
    spans_to_otlp,
    write_otlp,
    write_prometheus,
)
from repro.obs.metrics import (
    METRICS_FORMAT,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import (
    MemorySnapshot,
    ProfileReport,
    StageProfiler,
    profiled,
    timed,
    trace_memory,
)
from repro.obs.summary import (
    ShardRow,
    SpanAggregate,
    TraceSummary,
    render_summary,
    summarize_spans,
)
from repro.obs.trace import (
    NULL_TRACER,
    TRACE_FORMAT,
    NullTracer,
    Span,
    Tracer,
    load_trace,
    validate_trace_file,
    validate_trace_lines,
)

__all__ = [
    # events
    "EVENTS_FORMAT",
    "Event",
    "EventStream",
    "FlightRecorder",
    "flight_recorded",
    "load_events",
    "render_event",
    "validate_event_lines",
    "validate_event_file",
    # export
    "prometheus_text",
    "parse_prometheus_text",
    "metrics_to_otlp",
    "otlp_to_snapshot",
    "spans_to_otlp",
    "sanitize_metric_name",
    "write_prometheus",
    "write_otlp",
    # trace
    "TRACE_FORMAT",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "load_trace",
    "validate_trace_lines",
    "validate_trace_file",
    # metrics
    "METRICS_FORMAT",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    # profile
    "StageProfiler",
    "timed",
    "profiled",
    "ProfileReport",
    "trace_memory",
    "MemorySnapshot",
    # summary
    "ShardRow",
    "SpanAggregate",
    "TraceSummary",
    "summarize_spans",
    "render_summary",
    # context
    "current_tracer",
    "current_metrics",
    "current_events",
    "use_tracer",
    "use_metrics",
    "use_events",
    "observed",
]
