"""Process-local observability context.

Instrumented code never receives a tracer or registry through its
constructor — that would thread observability arguments through every
layer. Instead it asks this module for the *active* instruments:

* :func:`current_tracer` — the active :class:`~repro.obs.trace.Tracer`,
  or the shared :data:`~repro.obs.trace.NULL_TRACER` when tracing is
  off (so callers can use it unconditionally);
* :func:`current_metrics` — the active
  :class:`~repro.obs.metrics.MetricsRegistry`, or ``None`` when metrics
  are off (so hot paths can skip instrumentation with a single ``is
  None`` check, captured once at construction time).

The context is installed with the :func:`use_tracer` / :func:`use_metrics`
/ :func:`observed` context managers. It is deliberately a plain
process-global (not a thread/context variable): the workloads parallelize
over *processes* (fork pools), where each worker installs its own
context, and the zero-overhead-when-off contract rules out contextvar
lookups on hot paths.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "current_tracer",
    "current_metrics",
    "use_tracer",
    "use_metrics",
    "observed",
]

_active_tracer: Union[Tracer, NullTracer] = NULL_TRACER
_active_metrics: Optional[MetricsRegistry] = None


def current_tracer() -> Union[Tracer, NullTracer]:
    """The active tracer (:data:`NULL_TRACER` when tracing is off)."""
    return _active_tracer


def current_metrics() -> Optional[MetricsRegistry]:
    """The active metrics registry, or ``None`` when metrics are off."""
    return _active_metrics


@contextmanager
def use_tracer(tracer: Optional[Union[Tracer, NullTracer]]) -> Iterator[None]:
    """Install ``tracer`` as the active tracer for the ``with`` block.

    ``None`` maps to :data:`NULL_TRACER` (tracing off), so callers can
    pass an optional tracer straight through.
    """
    global _active_tracer
    previous = _active_tracer
    _active_tracer = NULL_TRACER if tracer is None else tracer
    try:
        yield
    finally:
        _active_tracer = previous


@contextmanager
def use_metrics(registry: Optional[MetricsRegistry]) -> Iterator[None]:
    """Install ``registry`` as the active metrics sink for the block.

    ``None`` turns metrics off for the block.
    """
    global _active_metrics
    previous = _active_metrics
    _active_metrics = registry
    try:
        yield
    finally:
        _active_metrics = previous


@contextmanager
def observed(
    tracer: Optional[Union[Tracer, NullTracer]] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> Iterator[None]:
    """Install both instruments at once (either may be ``None``)."""
    with use_tracer(tracer), use_metrics(metrics):
        yield
