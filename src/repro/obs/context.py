"""Process-local observability context.

Instrumented code never receives a tracer or registry through its
constructor — that would thread observability arguments through every
layer. Instead it asks this module for the *active* instruments:

* :func:`current_tracer` — the active :class:`~repro.obs.trace.Tracer`,
  or the shared :data:`~repro.obs.trace.NULL_TRACER` when tracing is
  off (so callers can use it unconditionally);
* :func:`current_metrics` — the active
  :class:`~repro.obs.metrics.MetricsRegistry`, or ``None`` when metrics
  are off (so hot paths can skip instrumentation with a single ``is
  None`` check, captured once at construction time);
* :func:`current_events` — the active
  :class:`~repro.obs.events.EventStream`, or ``None`` when the event
  stream is off (same single ``is None`` check contract as metrics).

The context is installed with the :func:`use_tracer` / :func:`use_metrics`
/ :func:`use_events` / :func:`observed` context managers. It is deliberately a plain
process-global (not a thread/context variable): the workloads parallelize
over *processes* (fork pools), where each worker installs its own
context, and the zero-overhead-when-off contract rules out contextvar
lookups on hot paths.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Union

from repro.obs.events import EventStream
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "current_tracer",
    "current_metrics",
    "current_events",
    "use_tracer",
    "use_metrics",
    "use_events",
    "observed",
]

_active_tracer: Union[Tracer, NullTracer] = NULL_TRACER
_active_metrics: Optional[MetricsRegistry] = None
_active_events: Optional[EventStream] = None


def current_tracer() -> Union[Tracer, NullTracer]:
    """The active tracer (:data:`NULL_TRACER` when tracing is off)."""
    return _active_tracer


def current_metrics() -> Optional[MetricsRegistry]:
    """The active metrics registry, or ``None`` when metrics are off."""
    return _active_metrics


def current_events() -> Optional[EventStream]:
    """The active event stream, or ``None`` when events are off."""
    return _active_events


@contextmanager
def use_tracer(tracer: Optional[Union[Tracer, NullTracer]]) -> Iterator[None]:
    """Install ``tracer`` as the active tracer for the ``with`` block.

    ``None`` maps to :data:`NULL_TRACER` (tracing off), so callers can
    pass an optional tracer straight through.
    """
    global _active_tracer
    previous = _active_tracer
    _active_tracer = NULL_TRACER if tracer is None else tracer
    try:
        yield
    finally:
        _active_tracer = previous


@contextmanager
def use_metrics(registry: Optional[MetricsRegistry]) -> Iterator[None]:
    """Install ``registry`` as the active metrics sink for the block.

    ``None`` turns metrics off for the block.
    """
    global _active_metrics
    previous = _active_metrics
    _active_metrics = registry
    try:
        yield
    finally:
        _active_metrics = previous


@contextmanager
def use_events(stream: Optional[EventStream]) -> Iterator[None]:
    """Install ``stream`` as the active event sink for the block.

    ``None`` turns the event stream off for the block.
    """
    global _active_events
    previous = _active_events
    _active_events = stream
    try:
        yield
    finally:
        _active_events = previous


@contextmanager
def observed(
    tracer: Optional[Union[Tracer, NullTracer]] = None,
    metrics: Optional[MetricsRegistry] = None,
    events: Optional[EventStream] = None,
) -> Iterator[None]:
    """Install all instruments at once (any may be ``None``)."""
    with use_tracer(tracer), use_metrics(metrics), use_events(events):
        yield
