"""Structured event stream (``rtsp-events/1``) and the flight recorder.

Spans (:mod:`repro.obs.trace`) answer "where did the time go"; *events*
answer "what is happening right now". An :class:`EventStream` records a
flat, append-only sequence of named events — shard lifecycle, builder
wave progress, repair rounds, invariant failures — each carrying:

* a **logical** sequence number assigned in emit order. The
  instrumented algorithms are deterministic per seed, so the logical
  event stream is byte-identical across runs, machines and worker
  counts (worker fragments are merged in task order, exactly like span
  fragments);
* a **wall-clock** stamp (``perf_counter``), excluded from the
  deterministic view;
* free-form JSON attributes.

Streams serialize to a versioned JSONL format (``rtsp-events/1``): one
header line, then one line per event in emit order. An ``on_event``
callback turns the same stream into *live progress*: the CLIs install a
renderer that prints heartbeat events (wave boundaries, per-shard
completion) as they arrive.

:class:`FlightRecorder` is the bounded companion: a ring buffer that
keeps the most recent events (plus a drop count) so that when something
goes wrong — an exception, an invariant violation, repair-budget
exhaustion — the last moments before the failure can be dumped to disk
without having paid for unbounded retention. :func:`flight_recorded`
wires both together and auto-dumps on exceptions.

When events are off, :func:`repro.obs.context.current_events` returns
``None`` and instrumented code skips emission with a single ``is
None`` check — the same zero-overhead contract metrics follow.
"""

from __future__ import annotations

import json
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.util.errors import ConfigurationError

__all__ = [
    "EVENTS_FORMAT",
    "Event",
    "EventStream",
    "FlightRecorder",
    "flight_recorded",
    "load_events",
    "render_event",
    "validate_event_lines",
    "validate_event_file",
]

#: Version tag written into (and required of) every event-stream header.
EVENTS_FORMAT = "rtsp-events/1"


@dataclass
class Event:
    """One recorded event: a logical sequence number, a name, attributes."""

    seq: int
    name: str
    attrs: Dict[str, Any] = field(default_factory=dict)
    wall: float = 0.0

    def logical_record(self) -> Dict[str, Any]:
        """The deterministic view: everything except the wall clock."""
        return {
            "type": "event",
            "seq": self.seq,
            "name": self.name,
            "attrs": self.attrs,
        }

    def record(self) -> Dict[str, Any]:
        """The full JSONL record (logical fields plus wall clock)."""
        rec = self.logical_record()
        rec["wall"] = self.wall
        return rec


class EventStream:
    """Append-only event recorder with deterministic sequence numbers.

    Not thread-safe: one stream belongs to one (worker) process. For
    parallel runs each worker records into a fresh stream and the
    parent merges the fragments with :meth:`adopt` in deterministic
    task order, so the merged logical stream is independent of worker
    count (the same contract :class:`~repro.obs.trace.Tracer` honours).

    ``on_event`` (if given) is called with every event as it lands —
    including adopted ones — which is what the CLIs' ``--progress``
    renderers hook into. ``recorder`` (if given) additionally feeds a
    :class:`FlightRecorder` ring buffer.
    """

    enabled = True

    def __init__(
        self,
        meta: Optional[Dict[str, Any]] = None,
        on_event: Optional[Callable[[Event], None]] = None,
        recorder: Optional["FlightRecorder"] = None,
    ) -> None:
        self.meta = dict(meta or {})
        self.events: List[Event] = []
        self.on_event = on_event
        self.recorder = recorder
        self._seq = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def emit(self, name: str, **attrs: Any) -> Event:
        """Record (and forward) one event."""
        event = Event(
            seq=self._seq,
            name=name,
            attrs=attrs,
            wall=time.perf_counter(),
        )
        self._seq += 1
        self.events.append(event)
        if self.recorder is not None:
            self.recorder.record(event)
        if self.on_event is not None:
            self.on_event(event)
        return event

    def adopt(self, events: Iterable[Event]) -> None:
        """Append a worker fragment's events, re-basing sequence numbers.

        Adopting fragments in a deterministic order yields a merged
        logical stream identical to recording everything on this stream
        in that order. Adopted events also flow through ``recorder``
        and ``on_event``, so flight recording and live progress see the
        merged stream too.
        """
        base = self._seq
        max_seq = -1
        for event in events:
            adopted = Event(
                seq=event.seq + base,
                name=event.name,
                attrs=dict(event.attrs),
                wall=event.wall,
            )
            self.events.append(adopted)
            if self.recorder is not None:
                self.recorder.record(adopted)
            if self.on_event is not None:
                self.on_event(adopted)
            if event.seq > max_seq:
                max_seq = event.seq
        if max_seq >= 0:
            self._seq = base + max_seq + 1

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def header(self) -> Dict[str, Any]:
        """The JSONL header record."""
        return {
            "format": EVENTS_FORMAT,
            "meta": self.meta,
            "events": len(self.events),
        }

    def to_lines(self) -> List[str]:
        """Full JSONL lines (header + one line per event, emit order)."""
        lines = [json.dumps(self.header(), sort_keys=True)]
        lines.extend(
            json.dumps(event.record(), sort_keys=True)
            for event in self.events
        )
        return lines

    def logical_lines(self) -> List[str]:
        """The deterministic stream: event records without wall clocks.

        Byte-identical across runs (and worker counts) for the same
        seed; this is what the determinism property tests compare.
        """
        return [
            json.dumps(event.logical_record(), sort_keys=True)
            for event in self.events
        ]

    def write_jsonl(self, path: str) -> None:
        """Write the versioned ``rtsp-events/1`` JSONL file."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(self.to_lines()) + "\n")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EventStream(events={len(self.events)})"


class FlightRecorder:
    """Bounded ring buffer over the most recent events.

    Keeps at most ``capacity`` events (oldest evicted first) plus a
    count of how many were dropped, so a long healthy run costs O(1)
    memory and a crash still has its final moments on record.
    :meth:`dump` writes a valid ``rtsp-events/1`` file whose header
    additionally carries ``capacity``, ``dropped`` and the dump
    ``reason`` — :func:`validate_event_lines` accepts it unchanged.
    """

    def __init__(self, capacity: int = 256, path: Optional[str] = None) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"FlightRecorder capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        #: Default dump destination (``dump()`` may override per call).
        self.path = path
        self.dropped = 0
        self._ring: Deque[Event] = deque(maxlen=capacity)

    def record(self, event: Event) -> None:
        """Push one event, evicting the oldest when full."""
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(event)

    def note(self, name: str, **attrs: Any) -> Event:
        """Record a synthetic event directly on the recorder.

        Used for failure annotations (exception type, dump reason) that
        must land in the dump even when no stream is attached.
        """
        event = Event(
            seq=self._ring[-1].seq + 1 if self._ring else 0,
            name=name,
            attrs=attrs,
            wall=time.perf_counter(),
        )
        self.record(event)
        return event

    @property
    def events(self) -> Tuple[Event, ...]:
        """The retained events, oldest first."""
        return tuple(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def to_lines(self, reason: str = "") -> List[str]:
        """JSONL lines of the retained window (valid ``rtsp-events/1``)."""
        header = {
            "format": EVENTS_FORMAT,
            "meta": {
                "flight_recorder": True,
                "capacity": self.capacity,
                "dropped": self.dropped,
                "reason": reason,
            },
            "events": len(self._ring),
        }
        lines = [json.dumps(header, sort_keys=True)]
        lines.extend(
            json.dumps(event.record(), sort_keys=True) for event in self._ring
        )
        return lines

    def dump(self, path: Optional[str] = None, reason: str = "") -> str:
        """Write the retained window to ``path`` (default: ``self.path``).

        Returns the path written. Raises
        :class:`~repro.util.errors.ConfigurationError` when neither the
        call nor the recorder names a destination.
        """
        target = path or self.path
        if not target:
            raise ConfigurationError(
                "FlightRecorder.dump needs a path (none configured)"
            )
        with open(target, "w", encoding="utf-8") as fh:
            fh.write("\n".join(self.to_lines(reason=reason)) + "\n")
        return target

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FlightRecorder(events={len(self._ring)}/{self.capacity}, "
            f"dropped={self.dropped})"
        )


def render_event(event: Event) -> str:
    """One-line terminal rendering of an event, for ``--progress``.

    Shared by ``rtsp-tool schedule --progress`` and ``repro.experiments
    --progress`` so heartbeats look the same everywhere.
    """
    attrs = " ".join(f"{key}={value}" for key, value in event.attrs.items())
    return f"[{event.seq:>5}] {event.name}" + (f" {attrs}" if attrs else "")


@contextmanager
def flight_recorded(
    path: str,
    capacity: int = 256,
    meta: Optional[Dict[str, Any]] = None,
    on_event: Optional[Callable[[Event], None]] = None,
) -> Iterator[EventStream]:
    """Run a block with an event stream backed by a flight recorder.

    Installs the stream as the active event sink (see
    :mod:`repro.obs.context`). If the block raises, the recorder notes
    the exception and dumps its window to ``path`` before re-raising;
    on clean exit nothing is written. The yielded stream can still be
    exported in full by the caller (``stream.write_jsonl``).
    """
    from repro.obs.context import use_events

    recorder = FlightRecorder(capacity=capacity, path=path)
    stream = EventStream(meta=meta, on_event=on_event, recorder=recorder)
    try:
        with use_events(stream):
            yield stream
    except BaseException as exc:
        recorder.note(
            "exception",
            error=type(exc).__name__,
            message=str(exc)[:500],
        )
        recorder.dump(reason=f"exception: {type(exc).__name__}")
        raise


# ----------------------------------------------------------------------
# loading and validation
# ----------------------------------------------------------------------
def load_events(path: str) -> Tuple[Dict[str, Any], List[Event]]:
    """Read an ``rtsp-events/1`` JSONL file back into (header, events).

    Raises :class:`~repro.util.errors.ConfigurationError` when the file
    does not validate against the schema.
    """
    with open(path, "r", encoding="utf-8") as fh:
        lines = [line for line in fh.read().splitlines() if line.strip()]
    errors = validate_event_lines(lines)
    if errors:
        raise ConfigurationError(
            f"{path} is not a valid {EVENTS_FORMAT} stream: "
            + "; ".join(errors[:5])
        )
    header = json.loads(lines[0])
    events = []
    for line in lines[1:]:
        rec = json.loads(line)
        events.append(
            Event(
                seq=rec["seq"],
                name=rec["name"],
                attrs=rec.get("attrs", {}),
                wall=rec.get("wall", 0.0),
            )
        )
    return header, events


def validate_event_lines(lines: List[str]) -> List[str]:
    """Validate JSONL lines against the ``rtsp-events/1`` schema.

    Returns a (possibly empty) list of human-readable problems; empty
    means schema-valid.
    """
    errors: List[str] = []
    if not lines:
        return ["empty stream (missing header line)"]
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        return [f"header is not valid JSON: {exc}"]
    if not isinstance(header, dict) or header.get("format") != EVENTS_FORMAT:
        errors.append(
            f"header format must be {EVENTS_FORMAT!r}, "
            f"got {header.get('format')!r}"
            if isinstance(header, dict)
            else "header must be a JSON object"
        )
        return errors
    declared = header.get("events")
    if not isinstance(declared, int) or declared < 0:
        errors.append("header 'events' must be a non-negative integer")
    last_seq: Optional[int] = None
    for lineno, line in enumerate(lines[1:], start=2):
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"line {lineno}: not valid JSON: {exc}")
            continue
        if not isinstance(rec, dict) or rec.get("type") != "event":
            errors.append(f"line {lineno}: record type must be 'event'")
            continue
        seq = rec.get("seq")
        if not isinstance(seq, int) or seq < 0:
            errors.append(f"line {lineno}: 'seq' must be a non-negative integer")
        else:
            if last_seq is not None and seq <= last_seq:
                errors.append(
                    f"line {lineno}: 'seq' must be strictly increasing "
                    f"({seq} after {last_seq})"
                )
            last_seq = seq
        if not isinstance(rec.get("name"), str):
            errors.append(f"line {lineno}: 'name' must be a string")
        if "attrs" in rec and not isinstance(rec["attrs"], dict):
            errors.append(f"line {lineno}: 'attrs' must be an object")
        wall = rec.get("wall")
        if wall is not None and not isinstance(wall, (int, float)):
            errors.append(f"line {lineno}: 'wall' must be a number")
    if isinstance(declared, int) and declared != len(lines) - 1:
        errors.append(
            f"header declares {declared} events but file contains "
            f"{len(lines) - 1}"
        )
    return errors


def validate_event_file(path: str) -> List[str]:
    """Validate an event file on disk; returns the list of problems."""
    with open(path, "r", encoding="utf-8") as fh:
        lines = [line for line in fh.read().splitlines() if line.strip()]
    return validate_event_lines(lines)
