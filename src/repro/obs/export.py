"""Exporters: Prometheus text exposition and OTLP-style JSON.

Turns the in-process observability state — a
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` and a span list —
into the two wire formats scrapers and collectors actually ingest:

* :func:`prometheus_text` — the Prometheus text exposition format
  (``# TYPE`` headers, ``_total`` counters, cumulative ``le`` histogram
  buckets). :func:`parse_prometheus_text` reads it back into the same
  snapshot layout, which is how the tests round-trip-validate the
  exposition byte stream.
* :func:`metrics_to_otlp` / :func:`spans_to_otlp` — OTLP-*style* JSON
  (the field layout of ``ExportMetricsServiceRequest`` /
  ``ExportTraceServiceRequest`` JSON encoding; no protobuf dependency).
  :func:`otlp_to_snapshot` inverts the metrics direction for the same
  round-trip guarantee. Span start/end stamps use the deterministic
  logical timeline (sequence numbers as nanoseconds) so the export is
  byte-stable across runs; wall durations ride along as attributes.

Both exporters are pure functions over plain dicts: they never touch
the live registry/tracer and cost nothing unless called.
"""

from __future__ import annotations

import json
import math
import re
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.obs.metrics import METRICS_FORMAT, bucket_upper_bound
from repro.obs.trace import Span
from repro.util.errors import ConfigurationError

__all__ = [
    "prometheus_text",
    "parse_prometheus_text",
    "metrics_to_otlp",
    "otlp_to_snapshot",
    "spans_to_otlp",
    "sanitize_metric_name",
    "write_prometheus",
    "write_otlp",
]

#: Characters legal in a Prometheus metric name after the first.
_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")

_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$"
)


def sanitize_metric_name(name: str, prefix: str = "") -> str:
    """Map a dotted instrument name onto the Prometheus grammar.

    Dots (and anything else illegal) become underscores; an optional
    ``prefix`` is prepended with an underscore separator.
    """
    base = _NAME_OK.sub("_", name)
    if base and base[0].isdigit():
        base = "_" + base
    return f"{prefix}_{base}" if prefix else base


def _fmt(value: float) -> str:
    """Prometheus sample value rendering (repr-exact floats, ints plain)."""
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def prometheus_text(
    snapshot: Mapping[str, Any], prefix: str = "rtsp"
) -> str:
    """Render an ``rtsp-metrics/1`` snapshot as Prometheus exposition text.

    Counters get a ``_total`` suffix, gauges are exported verbatim plus
    a ``_updates_total`` companion, histograms expand to cumulative
    ``_bucket{le="..."}`` series with ``_sum`` and ``_count`` (the
    power-of-two bucket layout maps exactly onto ``le`` upper bounds).
    Families are emitted in sorted name order so the byte stream is
    deterministic.
    """
    fmt = snapshot.get("format")
    if fmt != METRICS_FORMAT:
        raise ConfigurationError(
            f"cannot export snapshot with format {fmt!r} "
            f"(expected {METRICS_FORMAT!r})"
        )
    lines: List[str] = []
    for name in sorted(snapshot.get("counters", {})):
        value = snapshot["counters"][name]
        prom = sanitize_metric_name(name, prefix) + "_total"
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_fmt(float(value))}")
    for name in sorted(snapshot.get("gauges", {})):
        rec = snapshot["gauges"][name]
        prom = sanitize_metric_name(name, prefix)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_fmt(float(rec['value']))}")
        lines.append(f"# TYPE {prom}_updates_total counter")
        lines.append(f"{prom}_updates_total {_fmt(float(rec['updates']))}")
    for name in sorted(snapshot.get("histograms", {})):
        rec = snapshot["histograms"][name]
        prom = sanitize_metric_name(name, prefix)
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        for index in sorted(rec.get("buckets", {}), key=int):
            cumulative += rec["buckets"][index]
            le = _fmt(bucket_upper_bound(int(index)))
            lines.append(f'{prom}_bucket{{le="{le}"}} {cumulative}')
        lines.append(f'{prom}_bucket{{le="+Inf"}} {rec["count"]}')
        lines.append(f"{prom}_sum {_fmt(float(rec['total']))}")
        lines.append(f"{prom}_count {rec['count']}")
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> Dict[str, Any]:
    """Parse :func:`prometheus_text` output back into snapshot layout.

    Supports exactly the subset the exporter emits (no labels other
    than ``le``); used by the round-trip tests. Histogram ``min``/``max``
    are not representable in the exposition format and come back as
    ``None``.
    """
    counters: Dict[str, float] = {}
    gauges: Dict[str, Dict[str, float]] = {}
    histograms: Dict[str, Dict[str, Any]] = {}
    types: Dict[str, str] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        match = _LINE.match(line)
        if match is None:
            raise ConfigurationError(f"unparseable exposition line: {line!r}")
        name = match.group("name")
        value = float(match.group("value"))
        labels = match.group("labels")
        if name.endswith("_bucket"):
            hist = histograms.setdefault(
                name[: -len("_bucket")],
                {"count": 0, "total": 0.0, "min": None, "max": None,
                 "cumulative": []},
            )
            le_raw = (labels or "").split("=", 1)[1].strip('"')
            le = math.inf if le_raw == "+Inf" else float(le_raw)
            hist["cumulative"].append((le, int(value)))
        elif name.endswith("_sum") and name[: -len("_sum")] in histograms:
            histograms[name[: -len("_sum")]]["total"] = value
        elif name.endswith("_count") and name[: -len("_count")] in histograms:
            histograms[name[: -len("_count")]]["count"] = int(value)
        elif types.get(name) == "counter" or name.endswith("_total"):
            counters[name] = value
        else:
            gauges.setdefault(name, {"value": 0.0, "updates": 0})
            gauges[name]["value"] = value
    # Fold gauge _updates_total companions back into their gauge records,
    # undo the counter _total suffix, and de-cumulate histogram buckets
    # into the sparse snapshot layout.
    for name in list(counters):
        if name.endswith("_updates_total"):
            base = name[: -len("_updates_total")]
            if base in gauges:
                gauges[base]["updates"] = int(counters.pop(name))
    counters = {
        (name[: -len("_total")] if name.endswith("_total") else name): value
        for name, value in counters.items()
    }
    for rec in histograms.values():
        sparse: Dict[str, int] = {}
        previous = 0
        for le, cumulative in sorted(rec.pop("cumulative")):
            if math.isinf(le):
                continue
            delta = cumulative - previous
            if delta:
                sparse[str(int(math.log2(le)) if le >= 1 else 0)] = delta
            previous = cumulative
        rec["buckets"] = sparse
    return {
        "format": METRICS_FORMAT,
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
    }


# ----------------------------------------------------------------------
# OTLP-style JSON
# ----------------------------------------------------------------------
_SCOPE = {"name": "repro.obs", "version": "1"}


def _attr_value(value: Any) -> Dict[str, Any]:
    """One OTLP ``AnyValue``; non-scalar attributes serialize as JSON."""
    if isinstance(value, bool):
        return {"boolValue": value}
    if isinstance(value, int):
        return {"intValue": str(value)}
    if isinstance(value, float):
        return {"doubleValue": value}
    if isinstance(value, str):
        return {"stringValue": value}
    return {"stringValue": json.dumps(value, sort_keys=True)}


def _attributes(attrs: Mapping[str, Any]) -> List[Dict[str, Any]]:
    return [
        {"key": key, "value": _attr_value(attrs[key])}
        for key in sorted(attrs)
    ]


def metrics_to_otlp(
    snapshot: Mapping[str, Any], resource: Optional[Mapping[str, Any]] = None
) -> Dict[str, Any]:
    """An OTLP-style ``ExportMetricsServiceRequest`` JSON document.

    Counters become monotonic ``sum`` metrics, gauges become ``gauge``
    metrics, histograms become ``histogram`` data points whose explicit
    bounds are the power-of-two bucket upper bounds. Deterministic:
    metric families are sorted by name and no timestamps are invented
    (``timeUnixNano`` is 0 — the snapshot is a logical point in time).
    """
    fmt = snapshot.get("format")
    if fmt != METRICS_FORMAT:
        raise ConfigurationError(
            f"cannot export snapshot with format {fmt!r} "
            f"(expected {METRICS_FORMAT!r})"
        )
    metrics: List[Dict[str, Any]] = []
    for name in sorted(snapshot.get("counters", {})):
        metrics.append(
            {
                "name": name,
                "sum": {
                    "aggregationTemporality": 2,  # CUMULATIVE
                    "isMonotonic": True,
                    "dataPoints": [
                        {
                            "timeUnixNano": "0",
                            "asDouble": float(snapshot["counters"][name]),
                        }
                    ],
                },
            }
        )
    for name in sorted(snapshot.get("gauges", {})):
        rec = snapshot["gauges"][name]
        metrics.append(
            {
                "name": name,
                "gauge": {
                    "dataPoints": [
                        {
                            "timeUnixNano": "0",
                            "asDouble": float(rec["value"]),
                            "attributes": _attributes(
                                {"updates": int(rec["updates"])}
                            ),
                        }
                    ]
                },
            }
        )
    for name in sorted(snapshot.get("histograms", {})):
        rec = snapshot["histograms"][name]
        indices = sorted(rec.get("buckets", {}), key=int)
        bounds = [bucket_upper_bound(int(i)) for i in indices]
        counts = [rec["buckets"][i] for i in indices]
        overflow = rec["count"] - sum(counts)
        point: Dict[str, Any] = {
            "timeUnixNano": "0",
            "count": str(rec["count"]),
            "sum": float(rec["total"]),
            "explicitBounds": bounds,
            "bucketCounts": [str(c) for c in counts + [overflow]],
        }
        if rec.get("min") is not None:
            point["min"] = float(rec["min"])
        if rec.get("max") is not None:
            point["max"] = float(rec["max"])
        metrics.append(
            {
                "name": name,
                "histogram": {
                    "aggregationTemporality": 2,
                    "dataPoints": [point],
                },
            }
        )
    return {
        "resourceMetrics": [
            {
                "resource": {"attributes": _attributes(dict(resource or {}))},
                "scopeMetrics": [{"scope": dict(_SCOPE), "metrics": metrics}],
            }
        ]
    }


def otlp_to_snapshot(doc: Mapping[str, Any]) -> Dict[str, Any]:
    """Invert :func:`metrics_to_otlp` back into snapshot layout.

    Only reads the subset the exporter writes; used by the round-trip
    tests (``otlp_to_snapshot(metrics_to_otlp(s)) == s``).
    """
    counters: Dict[str, float] = {}
    gauges: Dict[str, Dict[str, Any]] = {}
    histograms: Dict[str, Dict[str, Any]] = {}
    for rm in doc.get("resourceMetrics", []):
        for sm in rm.get("scopeMetrics", []):
            for metric in sm.get("metrics", []):
                name = metric["name"]
                if "sum" in metric:
                    point = metric["sum"]["dataPoints"][0]
                    counters[name] = point["asDouble"]
                elif "gauge" in metric:
                    point = metric["gauge"]["dataPoints"][0]
                    updates = 0
                    for attr in point.get("attributes", []):
                        if attr["key"] == "updates":
                            updates = int(attr["value"]["intValue"])
                    gauges[name] = {
                        "value": point["asDouble"],
                        "updates": updates,
                    }
                elif "histogram" in metric:
                    point = metric["histogram"]["dataPoints"][0]
                    bounds = point.get("explicitBounds", [])
                    bucket_counts = [
                        int(c) for c in point.get("bucketCounts", [])
                    ]
                    sparse = {}
                    for bound, count in zip(bounds, bucket_counts):
                        if count:
                            index = 0 if bound <= 1 else int(math.log2(bound))
                            sparse[str(index)] = count
                    histograms[name] = {
                        "count": int(point["count"]),
                        "total": point["sum"],
                        "min": point.get("min"),
                        "max": point.get("max"),
                        "buckets": sparse,
                    }
    return {
        "format": METRICS_FORMAT,
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
    }


def _span_id(value: Optional[int]) -> str:
    """Fixed-width hex encoding of a logical span id (OTLP wants 8 bytes)."""
    if value is None:
        return ""
    return format(value + 1, "016x")


def spans_to_otlp(
    spans: Sequence[Span],
    meta: Optional[Mapping[str, Any]] = None,
    trace_id: int = 1,
) -> Dict[str, Any]:
    """An OTLP-style ``ExportTraceServiceRequest`` JSON document.

    Start/end stamps come from the deterministic logical timeline
    (sequence numbers as nanoseconds) so the document is byte-stable
    across runs and worker counts; the real wall duration is attached
    as the ``wall_ms`` attribute. Parent links survive verbatim, which
    is what makes cross-process nesting visible to OTLP consumers.
    """
    tid = format(trace_id, "032x")
    out = []
    for span in spans:
        attrs = dict(span.attrs)
        attrs["wall_ms"] = round(max(span.wall_duration, 0.0) * 1e3, 6)
        for key, value in span.counters.items():
            attrs[f"counter.{key}"] = value
        out.append(
            {
                "traceId": tid,
                "spanId": _span_id(span.span_id),
                "parentSpanId": _span_id(span.parent_id),
                "name": span.name,
                "kind": 1,  # INTERNAL
                "startTimeUnixNano": str(span.seq_start),
                "endTimeUnixNano": str(span.seq_end),
                "attributes": _attributes(attrs),
            }
        )
    return {
        "resourceSpans": [
            {
                "resource": {"attributes": _attributes(dict(meta or {}))},
                "scopeSpans": [{"scope": dict(_SCOPE), "spans": out}],
            }
        ]
    }


def write_prometheus(
    snapshot: Mapping[str, Any], path: str, prefix: str = "rtsp"
) -> None:
    """Write :func:`prometheus_text` output to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(prometheus_text(snapshot, prefix=prefix))


def write_otlp(
    path: str,
    snapshot: Optional[Mapping[str, Any]] = None,
    spans: Optional[Iterable[Span]] = None,
    meta: Optional[Mapping[str, Any]] = None,
) -> None:
    """Write one JSON file bundling OTLP metrics and/or trace documents."""
    payload: Dict[str, Any] = {}
    if snapshot is not None:
        payload.update(metrics_to_otlp(snapshot, resource=meta))
    if spans is not None:
        payload.update(spans_to_otlp(list(spans), meta=meta))
    if not payload:
        raise ConfigurationError(
            "write_otlp needs a metrics snapshot, spans, or both"
        )
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
