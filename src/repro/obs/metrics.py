"""Process-local metrics: named counters, gauges and histograms.

A :class:`MetricsRegistry` hands out instruments by name and turns into
a plain-dict :meth:`snapshot` that is (a) JSON-serializable, (b) cheap
to ship across a process pool, and (c) **mergeable**: snapshots from
parallel workers combine associatively into the same totals a serial
run would have produced. That is what lets ``run_figure(workers=N)``
aggregate per-worker statistics instead of dropping them.

Instrument semantics:

* :class:`Counter` — monotonically increasing total; merge adds.
* :class:`Gauge` — last-written value; merge keeps the maximum (the
  only order-independent choice for point-in-time readings) and sums
  the update counts.
* :class:`Histogram` — count/total/min/max plus power-of-two bucket
  counts (bucket ``i`` holds observations ``<= 2**i``); merge adds
  component-wise.

Hot paths grab an instrument once and bump its ``value`` attribute
directly; when observability is off they hold ``None`` and skip the
bump entirely (see :mod:`repro.obs.context`).
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Iterator, List, Mapping, Optional

__all__ = [
    "METRICS_FORMAT",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Version tag of the snapshot/JSON layout.
METRICS_FORMAT = "rtsp-metrics/1"

#: Number of power-of-two histogram buckets (covers values up to 2**63).
_NUM_BUCKETS = 64


class Counter:
    """Monotonic counter. Hot code may bump ``value`` directly."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def inc(self, n: float = 1) -> None:
        """Add ``n`` (default 1) to the counter."""
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """Point-in-time value; remembers how many times it was written."""

    __slots__ = ("name", "value", "updates")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0
        self.updates: int = 0

    def set(self, value: float) -> None:
        """Record the current reading."""
        self.value = value
        self.updates += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """Streaming histogram with power-of-two buckets.

    Designed for cheap ``observe`` calls and loss-free merging: bucket
    ``i`` counts observations ``<= 2**i`` (negative observations land in
    bucket 0 alongside zeros).
    """

    __slots__ = ("name", "count", "total", "vmin", "vmax", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count: int = 0
        self.total: float = 0.0
        self.vmin: float = math.inf
        self.vmax: float = -math.inf
        self.buckets: List[int] = [0] * _NUM_BUCKETS

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value
        self.buckets[_bucket_index(value)] += 1

    @property
    def mean(self) -> float:
        """Mean observation (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name!r}, n={self.count}, mean={self.mean:.4g})"


def _bucket_index(value: float) -> int:
    """Index of the power-of-two bucket ``value`` falls into."""
    if value <= 1:
        return 0
    mantissa, exponent = math.frexp(value)
    if mantissa == 0.5:  # exact powers of two belong in the lower bucket
        exponent -= 1
    return min(_NUM_BUCKETS - 1, exponent)


def bucket_upper_bound(index: int) -> float:
    """Inclusive upper bound of histogram bucket ``index``."""
    return float(2 ** index)


class MetricsRegistry:
    """Named instruments, snapshotting and merging.

    Instruments are created on first use and keep their identity for the
    registry's lifetime, so hot code can cache them. Names are free-form
    dotted strings (``"nearest_index.cache_hits"``).
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # instruments
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on demand)."""
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on demand)."""
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under ``name`` (created on demand)."""
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(name)
        return inst

    def __iter__(self) -> Iterator[str]:
        yield from self._counters
        yield from self._gauges
        yield from self._histograms

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def counter_values(self) -> Dict[str, float]:
        """Plain ``name -> value`` view of every counter."""
        return {name: c.value for name, c in self._counters.items()}

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready, mergeable snapshot of every instrument."""
        return {
            "format": METRICS_FORMAT,
            "counters": self.counter_values(),
            "gauges": {
                name: {"value": g.value, "updates": g.updates}
                for name, g in self._gauges.items()
            },
            "histograms": {
                name: {
                    "count": h.count,
                    "total": h.total,
                    "min": h.vmin if h.count else None,
                    "max": h.vmax if h.count else None,
                    "buckets": {
                        str(i): n for i, n in enumerate(h.buckets) if n
                    },
                }
                for name, h in self._histograms.items()
            },
        }

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold another registry's :meth:`snapshot` into this registry.

        Counters and histograms add; gauges keep the maximum value seen.
        Merging is associative and commutative for counters/histograms,
        so worker snapshots can arrive in any order and still reproduce
        the serial totals.
        """
        fmt = snapshot.get("format")
        if fmt != METRICS_FORMAT:
            raise ValueError(
                f"cannot merge snapshot with format {fmt!r} "
                f"(expected {METRICS_FORMAT!r})"
            )
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).value += value
        for name, rec in snapshot.get("gauges", {}).items():
            gauge = self.gauge(name)
            if rec["updates"] and (
                gauge.updates == 0 or rec["value"] > gauge.value
            ):
                gauge.value = rec["value"]
            gauge.updates += rec["updates"]
        for name, rec in snapshot.get("histograms", {}).items():
            hist = self.histogram(name)
            hist.count += rec["count"]
            hist.total += rec["total"]
            if rec["min"] is not None and rec["min"] < hist.vmin:
                hist.vmin = rec["min"]
            if rec["max"] is not None and rec["max"] > hist.vmax:
                hist.vmax = rec["max"]
            for idx, n in rec.get("buckets", {}).items():
                hist.buckets[int(idx)] += n

    def write_json(self, path: str, indent: Optional[int] = 2) -> None:
        """Write the snapshot as a JSON file."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.snapshot(), fh, indent=indent, sort_keys=True)
            fh.write("\n")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, histograms={len(self._histograms)})"
        )
