"""Opt-in profiling: per-stage wall clocks, cProfile and tracemalloc.

:class:`StageProfiler` is the accumulating named-lap wall-clock profiler
every harness stage uses (it subsumes the old
``repro.util.timing.Stopwatch``, which remains as a deprecated shim).
:func:`profiled` and :func:`trace_memory` wrap a block in cProfile /
tracemalloc and expose the results on a small handle object — both are
strictly opt-in and never touched by default code paths.
"""

from __future__ import annotations

import cProfile
import functools
import io
import pstats
import time
import tracemalloc
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional, TypeVar

__all__ = [
    "StageProfiler",
    "timed",
    "profiled",
    "ProfileReport",
    "trace_memory",
    "MemorySnapshot",
]

F = TypeVar("F", bound=Callable)


class StageProfiler:
    """Accumulating wall-clock profiler with named stages.

    >>> profiler = StageProfiler()
    >>> with profiler.stage("build"):
    ...     pass
    >>> "build" in profiler.laps
    True
    """

    def __init__(self) -> None:
        #: Accumulated seconds per stage name.
        self.laps: Dict[str, float] = {}

    def stage(self, name: str) -> "_Stage":
        """Context manager accumulating elapsed time under ``name``."""
        return _Stage(self, name)

    #: Backwards-compatible alias (the Stopwatch API called stages laps).
    lap = stage

    def add(self, name: str, seconds: float) -> None:
        """Add ``seconds`` to stage ``name`` (creating it if needed)."""
        self.laps[name] = self.laps.get(name, 0.0) + float(seconds)

    @property
    def total(self) -> float:
        """Sum of all recorded stages, in seconds."""
        return sum(self.laps.values())

    def report(self) -> str:
        """Render stages as aligned ``name: seconds`` lines, longest first."""
        if not self.laps:
            return "(no laps recorded)"
        width = max(len(k) for k in self.laps)
        rows = sorted(self.laps.items(), key=lambda kv: -kv[1])
        return "\n".join(f"{k.ljust(width)} : {v:10.4f}s" for k, v in rows)


class _Stage:
    __slots__ = ("_profiler", "_name", "_start", "seconds")

    def __init__(self, profiler: StageProfiler, name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._start: Optional[float] = None
        #: Elapsed seconds of the most recent completed entry.
        self.seconds: float = 0.0

    def __enter__(self) -> "_Stage":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.seconds = time.perf_counter() - self._start
        self._profiler.add(self._name, self.seconds)


def timed(watch, name: Optional[str] = None) -> Callable[[F], F]:
    """Decorator recording each call's duration into ``watch``.

    ``watch`` is anything with an ``add(name, seconds)`` method
    (:class:`StageProfiler` or the legacy ``Stopwatch``); the lap name
    defaults to the wrapped function's ``__name__``.
    """

    def decorate(fn: F) -> F:
        lap_name = name or fn.__name__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            start = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                watch.add(lap_name, time.perf_counter() - start)

        return wrapper  # type: ignore[return-value]

    return decorate


class ProfileReport:
    """Handle filled in when a :func:`profiled` block exits."""

    def __init__(self) -> None:
        self.stats: Optional[pstats.Stats] = None
        self.text: str = ""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ProfileReport(captured={self.stats is not None})"


@contextmanager
def profiled(
    sort: str = "cumulative", limit: int = 25
) -> Iterator[ProfileReport]:
    """Run the block under cProfile; the yielded report carries the stats.

    >>> with profiled(limit=5) as report:
    ...     sum(range(100))
    4950
    >>> "function calls" in report.text
    True
    """
    report = ProfileReport()
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield report
    finally:
        profiler.disable()
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.sort_stats(sort).print_stats(limit)
        report.stats = stats
        report.text = buffer.getvalue()


class MemorySnapshot:
    """Handle filled in when a :func:`trace_memory` block exits."""

    def __init__(self) -> None:
        self.current: int = 0
        self.peak: int = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MemorySnapshot(current={self.current}, peak={self.peak})"


@contextmanager
def trace_memory() -> Iterator[MemorySnapshot]:
    """Measure the block's Python heap usage with tracemalloc.

    Fills ``current``/``peak`` (bytes) on exit. If tracemalloc is
    already tracing (e.g. nested use), the outer session is left
    running and the numbers cover the whole session.
    """
    snapshot = MemorySnapshot()
    started_here = not tracemalloc.is_tracing()
    if started_here:
        tracemalloc.start()
    try:
        yield snapshot
    finally:
        snapshot.current, snapshot.peak = tracemalloc.get_traced_memory()
        if started_here:
            tracemalloc.stop()
