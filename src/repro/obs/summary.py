"""Human-readable summaries of recorded traces.

Backs the ``repro tools trace-summary`` subcommand: aggregates a span
list by name (count, total/mean wall time) and rolls every span's
logical counters into one table, so a single trace file answers "where
did the time go" and "what did the algorithms actually do".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from repro.obs.trace import Span

__all__ = ["SpanAggregate", "TraceSummary", "summarize_spans", "render_summary"]


@dataclass
class SpanAggregate:
    """Aggregate over every span sharing one name."""

    name: str
    count: int = 0
    total_wall: float = 0.0
    max_wall: float = 0.0

    @property
    def mean_wall(self) -> float:
        return self.total_wall / self.count if self.count else 0.0


@dataclass
class TraceSummary:
    """Aggregated view of one trace."""

    header: Dict[str, Any]
    spans: List[SpanAggregate] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)


def summarize_spans(
    header: Dict[str, Any], spans: Sequence[Span]
) -> TraceSummary:
    """Aggregate ``spans`` by name and merge every span's counters."""
    by_name: Dict[str, SpanAggregate] = {}
    counters: Dict[str, float] = dict(header.get("counters", {}))
    for span in spans:
        agg = by_name.get(span.name)
        if agg is None:
            agg = by_name[span.name] = SpanAggregate(span.name)
        agg.count += 1
        duration = max(span.wall_duration, 0.0)
        agg.total_wall += duration
        if duration > agg.max_wall:
            agg.max_wall = duration
        for key, value in span.counters.items():
            counters[key] = counters.get(key, 0) + value
    aggregates = sorted(by_name.values(), key=lambda a: -a.total_wall)
    return TraceSummary(header=header, spans=aggregates, counters=counters)


def render_summary(summary: TraceSummary, top: int = 15) -> str:
    """ASCII rendering: top spans by total wall time + counter table."""
    meta = summary.header.get("meta", {})
    lines = [
        f"Trace summary [{summary.header.get('format', '?')}, "
        f"{summary.header.get('spans', 0)} spans"
        + (f", meta={meta}" if meta else "")
        + "]",
        "",
        f"Top {min(top, len(summary.spans))} spans by total wall time:",
        f"{'span':<28} {'count':>7} {'total':>10} {'mean':>10} {'max':>10}",
        "-" * 69,
    ]
    for agg in summary.spans[:top]:
        lines.append(
            f"{agg.name:<28} {agg.count:>7} {agg.total_wall:>9.4f}s "
            f"{agg.mean_wall:>9.4f}s {agg.max_wall:>9.4f}s"
        )
    if not summary.spans:
        lines.append("(no spans recorded)")
    lines.append("")
    if summary.counters:
        width = max(len(k) for k in summary.counters)
        lines.append("Counters:")
        for name in sorted(summary.counters):
            value = summary.counters[name]
            rendered = f"{value:g}" if isinstance(value, float) else str(value)
            lines.append(f"  {name.ljust(width)} : {rendered}")
    else:
        lines.append("Counters: (none recorded)")
    return "\n".join(lines)
