"""Human-readable summaries of recorded traces.

Backs the ``repro tools trace-summary`` subcommand: aggregates a span
list by name (count, total/mean wall time) and rolls every span's
logical counters into one table, so a single trace file answers "where
did the time go" and "what did the algorithms actually do".

Merged shard traces (from :func:`repro.shard.plan_sharded`) get two
extra sections: a per-shard breakdown keyed by the ``part`` attribute
of the ``shard.plan`` spans (every descendant span is attributed to its
owning shard), and the plan-quality gauges the planner annotates onto
the ``plan_sharded`` root span (cost gap vs the residual lower bound,
dummy-traffic ratio, LPT imbalance).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.trace import Span

__all__ = [
    "ShardRow",
    "SpanAggregate",
    "TraceSummary",
    "summarize_spans",
    "render_summary",
]


@dataclass
class SpanAggregate:
    """Aggregate over every span sharing one name."""

    name: str
    count: int = 0
    total_wall: float = 0.0
    max_wall: float = 0.0

    @property
    def mean_wall(self) -> float:
        return self.total_wall / self.count if self.count else 0.0


@dataclass
class ShardRow:
    """Aggregate over one shard's span subtree in a merged trace."""

    part: int
    servers: int = 0
    spans: int = 0
    wall: float = 0.0


@dataclass
class TraceSummary:
    """Aggregated view of one trace."""

    header: Dict[str, Any]
    spans: List[SpanAggregate] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    shards: List[ShardRow] = field(default_factory=list)
    quality: Dict[str, float] = field(default_factory=dict)


#: Gauges the sharded planner annotates onto its ``plan_sharded`` span.
_QUALITY_KEYS = ("cost", "cost_gap", "dummy_traffic_ratio", "lpt_imbalance")


def _owning_part(
    span: Span, by_id: Dict[int, Span]
) -> Optional[int]:
    """The ``part`` of the nearest enclosing ``shard.plan`` span, if any."""
    current: Optional[Span] = span
    while current is not None:
        if current.name == "shard.plan" and "part" in current.attrs:
            part = current.attrs["part"]
            return int(part) if isinstance(part, (int, float)) else None
        parent = current.parent_id
        current = by_id.get(parent) if parent is not None else None
    return None


def _shard_rows(spans: Sequence[Span]) -> List[ShardRow]:
    """Group merged shard spans by their owning ``shard.plan`` part key."""
    by_id = {span.span_id: span for span in spans}
    rows: Dict[int, ShardRow] = {}
    for span in spans:
        part = _owning_part(span, by_id)
        if part is None:
            continue
        row = rows.get(part)
        if row is None:
            row = rows[part] = ShardRow(part=part)
        row.spans += 1
        if span.name == "shard.plan":
            row.wall += max(span.wall_duration, 0.0)
            servers = span.attrs.get("servers")
            if isinstance(servers, (int, float)):
                row.servers = int(servers)
    return [rows[part] for part in sorted(rows)]


def _quality_attrs(spans: Sequence[Span]) -> Dict[str, float]:
    """Plan-quality gauges from the ``plan_sharded`` root span, if any."""
    for span in spans:
        if span.name == "plan_sharded":
            return {
                key: float(span.attrs[key])
                for key in _QUALITY_KEYS
                if isinstance(span.attrs.get(key), (int, float))
            }
    return {}


def summarize_spans(
    header: Dict[str, Any], spans: Sequence[Span]
) -> TraceSummary:
    """Aggregate ``spans`` by name and merge every span's counters."""
    by_name: Dict[str, SpanAggregate] = {}
    counters: Dict[str, float] = dict(header.get("counters", {}))
    for span in spans:
        agg = by_name.get(span.name)
        if agg is None:
            agg = by_name[span.name] = SpanAggregate(span.name)
        agg.count += 1
        duration = max(span.wall_duration, 0.0)
        agg.total_wall += duration
        if duration > agg.max_wall:
            agg.max_wall = duration
        for key, value in span.counters.items():
            counters[key] = counters.get(key, 0) + value
    aggregates = sorted(by_name.values(), key=lambda a: -a.total_wall)
    return TraceSummary(
        header=header,
        spans=aggregates,
        counters=counters,
        shards=_shard_rows(spans),
        quality=_quality_attrs(spans),
    )


def render_summary(summary: TraceSummary, top: int = 15) -> str:
    """ASCII rendering: top spans by total wall time + counter table."""
    meta = summary.header.get("meta", {})
    lines = [
        f"Trace summary [{summary.header.get('format', '?')}, "
        f"{summary.header.get('spans', 0)} spans"
        + (f", meta={meta}" if meta else "")
        + "]",
        "",
        f"Top {min(top, len(summary.spans))} spans by total wall time:",
        f"{'span':<28} {'count':>7} {'total':>10} {'mean':>10} {'max':>10}",
        "-" * 69,
    ]
    for agg in summary.spans[:top]:
        lines.append(
            f"{agg.name:<28} {agg.count:>7} {agg.total_wall:>9.4f}s "
            f"{agg.mean_wall:>9.4f}s {agg.max_wall:>9.4f}s"
        )
    if not summary.spans:
        lines.append("(no spans recorded)")
    lines.append("")
    if summary.counters:
        width = max(len(k) for k in summary.counters)
        lines.append("Counters:")
        for name in sorted(summary.counters):
            value = summary.counters[name]
            rendered = f"{value:g}" if isinstance(value, float) else str(value)
            lines.append(f"  {name.ljust(width)} : {rendered}")
    else:
        lines.append("Counters: (none recorded)")
    if summary.shards:
        lines.append("")
        lines.append("Per-shard breakdown:")
        lines.append(
            f"{'part':>6} {'servers':>8} {'spans':>7} {'wall':>10}"
        )
        lines.append("-" * 34)
        for row in summary.shards:
            lines.append(
                f"{row.part:>6} {row.servers:>8} {row.spans:>7} "
                f"{row.wall:>9.4f}s"
            )
    if summary.quality:
        lines.append("")
        lines.append("Plan quality:")
        width = max(len(k) for k in summary.quality)
        for name in sorted(summary.quality):
            lines.append(
                f"  {name.ljust(width)} : {summary.quality[name]:g}"
            )
    return "\n".join(lines)
