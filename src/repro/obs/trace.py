"""Span-based execution tracing with deterministic logical timelines.

A :class:`Tracer` records a tree of named spans. Every span carries two
timelines:

* a **logical** one — monotonically increasing event sequence numbers
  (``seq_start``/``seq_end``) assigned in span open/close order, plus
  user-supplied attributes and counters. Because the algorithms under
  observation are deterministic per seed, the logical timeline is
  byte-identical across runs, machines and worker counts (the property
  tests assert this);
* a **wall-clock** one — ``perf_counter`` stamps (``wall_start``/
  ``wall_end``), useful for profiling but explicitly excluded from the
  deterministic view.

Traces serialize to a versioned JSONL format (``rtsp-trace/1``): one
header line followed by one line per span, in span *close* order. The
same span list also exports to the Chrome trace-event format so a run
can be inspected in ``chrome://tracing`` / Perfetto.

:class:`NullTracer` is the default, zero-overhead stand-in: its ``span``
returns a shared no-op context manager and every other method is a
no-op, so instrumented code costs nothing when tracing is off.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.util.errors import ConfigurationError

__all__ = [
    "TRACE_FORMAT",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "load_trace",
    "validate_trace_lines",
    "validate_trace_file",
]

#: Version tag written into (and required of) every trace header.
TRACE_FORMAT = "rtsp-trace/1"


@dataclass
class Span:
    """One traced region; finalized when its context manager exits."""

    span_id: int
    parent_id: Optional[int]
    name: str
    seq_start: int
    seq_end: int = -1
    wall_start: float = 0.0
    wall_end: float = 0.0
    attrs: Dict[str, Any] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)

    @property
    def wall_duration(self) -> float:
        """Wall-clock seconds spent inside the span."""
        return self.wall_end - self.wall_start

    def logical_record(self) -> Dict[str, Any]:
        """The deterministic view: everything except wall-clock fields."""
        return {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "seq": [self.seq_start, self.seq_end],
            "attrs": self.attrs,
            "counters": self.counters,
        }

    def record(self) -> Dict[str, Any]:
        """The full JSONL record (logical fields plus wall-clock)."""
        rec = self.logical_record()
        rec["wall"] = [self.wall_start, self.wall_end]
        return rec


class _SpanContext:
    """Context manager opening/closing one span on its tracer."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        self._span = self._tracer._open(self._name, self._attrs)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._close(self._span)
        return False


class Tracer:
    """Collects spans; export via :meth:`write_jsonl` / :meth:`write_chrome`.

    Not thread-safe: one tracer belongs to one (worker) process. For
    parallel runs each worker records into a fresh tracer and the parent
    stitches the fragments together with :meth:`adopt`, in deterministic
    task order, so the merged logical timeline is independent of worker
    count.
    """

    enabled = True

    def __init__(self, meta: Optional[Dict[str, Any]] = None) -> None:
        self.meta = dict(meta or {})
        #: Completed spans, in close order.
        self.spans: List[Span] = []
        #: Counters recorded outside any open span.
        self.counters: Dict[str, float] = {}
        self._stack: List[Span] = []
        self._next_id = 0
        self._seq = 0
        #: Whether any cross-process fragment was merged in (worker wall
        #: clocks live in foreign perf_counter domains, so the wall
        #: timeline of an adopted trace is incoherent).
        self._adopted = False

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """Open a (possibly nested) span around a ``with`` block."""
        return _SpanContext(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> Span:
        """Record an instantaneous (zero-duration) span."""
        span = self._open(name, attrs)
        self._close(span)
        return span

    def count(self, name: str, n: float = 1) -> None:
        """Add ``n`` to counter ``name`` on the innermost open span
        (or at tracer level when no span is open)."""
        target = self._stack[-1].counters if self._stack else self.counters
        target[name] = target.get(name, 0) + n

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes to the innermost open span (no-op outside)."""
        if self._stack:
            self._stack[-1].attrs.update(attrs)

    def current_span(self) -> Optional[Span]:
        """The innermost open span, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    def _open(self, name: str, attrs: Dict[str, Any]) -> Span:
        span = Span(
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            seq_start=self._seq,
            wall_start=time.perf_counter(),
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._seq += 1
        self._stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        popped = self._stack.pop()
        if popped is not span:  # pragma: no cover - misuse guard
            raise ConfigurationError(
                f"span {span.name!r} closed out of order (open: {popped.name!r})"
            )
        span.seq_end = self._seq
        self._seq += 1
        span.wall_end = time.perf_counter()
        self.spans.append(span)

    # ------------------------------------------------------------------
    # fragment merging (parallel workers)
    # ------------------------------------------------------------------
    def adopt(
        self, spans: Iterable[Span], parent_id: Optional[int] = None
    ) -> None:
        """Append a completed fragment's spans, re-basing ids and seqs.

        Fragments must themselves be closed (every adopted span has a
        ``seq_end``); adopting them in a deterministic order yields a
        merged logical timeline identical to recording everything on
        this tracer in that order.

        ``parent_id`` re-parents the fragment's *root* spans (those with
        ``parent_id is None``) under an existing span of this tracer —
        the cross-process linkage :class:`~repro.shard.pool.WorkQueue`
        uses so worker shard spans nest under the coordinating
        ``plan_sharded`` span instead of merging flat. It may name a
        still-open span: the adopted seqs land inside the open span's
        eventual ``[seq_start, seq_end]`` window (it closes later, at a
        higher seq), preserving timeline containment. Without
        ``parent_id``, adoption while spans are open is rejected —
        silently attaching a fragment to whatever happens to be open
        would make the merged tree depend on call context.
        """
        if self._stack and parent_id is None:
            raise ConfigurationError("cannot adopt spans while spans are open")
        if parent_id is not None and not any(
            s.span_id == parent_id for s in self.spans
        ) and not any(s.span_id == parent_id for s in self._stack):
            raise ConfigurationError(
                f"adopt parent_id {parent_id} references no span of this tracer"
            )
        spans = list(spans)
        if not spans:
            return
        id_base = self._next_id
        seq_base = self._seq
        max_id = -1
        max_seq = -1
        for span in spans:
            if span.seq_end < 0:  # pragma: no cover - misuse guard
                raise ConfigurationError(
                    f"cannot adopt unclosed span {span.name!r}"
                )
            self.spans.append(
                Span(
                    span_id=span.span_id + id_base,
                    parent_id=(
                        parent_id
                        if span.parent_id is None
                        else span.parent_id + id_base
                    ),
                    name=span.name,
                    seq_start=span.seq_start + seq_base,
                    seq_end=span.seq_end + seq_base,
                    wall_start=span.wall_start,
                    wall_end=span.wall_end,
                    attrs=dict(span.attrs),
                    counters=dict(span.counters),
                )
            )
            max_id = max(max_id, span.span_id)
            max_seq = max(max_seq, span.seq_end)
        self._next_id = id_base + max_id + 1
        self._seq = seq_base + max_seq + 1
        self._adopted = True

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def header(self) -> Dict[str, Any]:
        """The JSONL header record."""
        return {
            "format": TRACE_FORMAT,
            "meta": self.meta,
            "spans": len(self.spans),
            "counters": self.counters,
        }

    def to_lines(self) -> List[str]:
        """Full JSONL lines (header + one line per span, close order)."""
        lines = [json.dumps(self.header(), sort_keys=True)]
        lines.extend(
            json.dumps(span.record(), sort_keys=True) for span in self.spans
        )
        return lines

    def logical_lines(self) -> List[str]:
        """The deterministic timeline: span records without wall clocks.

        Byte-identical across runs (and worker counts) for the same seed;
        this is the stream the determinism property tests compare.
        """
        return [
            json.dumps(span.logical_record(), sort_keys=True)
            for span in self.spans
        ]

    def write_jsonl(self, path: str) -> None:
        """Write the versioned ``rtsp-trace/1`` JSONL file."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(self.to_lines()) + "\n")

    def _resolve_clock(self, clock: str) -> str:
        """Resolve a chrome-export clock mode (``auto``/``wall``/``logical``)."""
        if clock == "auto":
            return "logical" if self._adopted else "wall"
        if clock not in ("wall", "logical"):
            raise ConfigurationError(
                f"chrome clock must be 'auto', 'wall' or 'logical', "
                f"got {clock!r}"
            )
        return clock

    def chrome_events(self, clock: str = "auto") -> List[Dict[str, Any]]:
        """Chrome trace-event list (``ph: "X"`` complete events).

        ``clock`` picks the timeline:

        * ``"wall"`` — raw ``perf_counter`` stamps. Correct nesting for
          single-process traces; meaningless once worker fragments with
          foreign clocks were adopted.
        * ``"logical"`` — the deterministic sequence timeline
          (``ts = seq_start``, ``dur = seq_end - seq_start``). Because a
          child's seq window is strictly inside its parent's, Perfetto's
          stack-based nesting reproduces the span tree exactly — adopted
          worker spans nest under their cross-process parent. Wall-clock
          milliseconds are preserved per event in ``args.wall_ms``.
        * ``"auto"`` (default) — ``logical`` when fragments were adopted,
          ``wall`` otherwise.
        """
        mode = self._resolve_clock(clock)
        events = []
        for span in self.spans:
            args = dict(span.attrs)
            if span.counters:
                args["counters"] = span.counters
            if mode == "logical":
                args["wall_ms"] = round(max(span.wall_duration, 0.0) * 1e3, 6)
                ts = float(span.seq_start)
                dur = float(span.seq_end - span.seq_start)
            else:
                ts = span.wall_start * 1e6
                dur = max(span.wall_duration, 0.0) * 1e6
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": ts,
                    "dur": dur,
                    "pid": 0,
                    "tid": 0,
                    "args": args,
                }
            )
        return events

    def write_chrome(self, path: str, clock: str = "auto") -> None:
        """Write a ``chrome://tracing`` / Perfetto compatible JSON file."""
        mode = self._resolve_clock(clock)
        payload = {
            "traceEvents": self.chrome_events(clock=mode),
            "displayTimeUnit": "ms",
            "otherData": dict(self.meta, format=TRACE_FORMAT, clock=mode),
        }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Tracer(spans={len(self.spans)}, open={len(self._stack)})"


class _NullSpanContext:
    """Shared no-op context manager handed out by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpanContext()


class NullTracer:
    """Zero-overhead tracer: every operation is a no-op.

    The module-level singleton :data:`NULL_TRACER` is the default active
    tracer; instrumented code can call it unconditionally.
    """

    enabled = False
    spans: Tuple[Span, ...] = ()
    counters: Dict[str, float] = {}

    __slots__ = ()

    def span(self, name: str, **attrs: Any) -> _NullSpanContext:
        return _NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        return None

    def count(self, name: str, n: float = 1) -> None:
        return None

    def annotate(self, **attrs: Any) -> None:
        return None

    def current_span(self) -> None:
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "NullTracer()"


#: The process-wide default tracer (see :mod:`repro.obs.context`).
NULL_TRACER = NullTracer()


# ----------------------------------------------------------------------
# loading and validation
# ----------------------------------------------------------------------
def load_trace(path: str) -> Tuple[Dict[str, Any], List[Span]]:
    """Read an ``rtsp-trace/1`` JSONL file back into (header, spans).

    Raises :class:`~repro.util.errors.ConfigurationError` when the file
    does not validate against the schema.
    """
    with open(path, "r", encoding="utf-8") as fh:
        lines = [line for line in fh.read().splitlines() if line.strip()]
    errors = validate_trace_lines(lines)
    if errors:
        raise ConfigurationError(
            f"{path} is not a valid {TRACE_FORMAT} trace: " + "; ".join(errors[:5])
        )
    header = json.loads(lines[0])
    spans = []
    for line in lines[1:]:
        rec = json.loads(line)
        spans.append(
            Span(
                span_id=rec["id"],
                parent_id=rec["parent"],
                name=rec["name"],
                seq_start=rec["seq"][0],
                seq_end=rec["seq"][1],
                wall_start=rec["wall"][0],
                wall_end=rec["wall"][1],
                attrs=rec.get("attrs", {}),
                counters=rec.get("counters", {}),
            )
        )
    return header, spans


def validate_trace_lines(lines: List[str]) -> List[str]:
    """Validate JSONL lines against the ``rtsp-trace/1`` schema.

    Returns a (possibly empty) list of human-readable problems; an empty
    list means the trace is schema-valid.
    """
    errors: List[str] = []
    if not lines:
        return ["empty trace (missing header line)"]
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        return [f"header is not valid JSON: {exc}"]
    if not isinstance(header, dict) or header.get("format") != TRACE_FORMAT:
        errors.append(
            f"header format must be {TRACE_FORMAT!r}, "
            f"got {header.get('format')!r}"
            if isinstance(header, dict)
            else "header must be a JSON object"
        )
        return errors
    declared = header.get("spans")
    if not isinstance(declared, int) or declared < 0:
        errors.append("header 'spans' must be a non-negative integer")
    seen_ids = set()
    for lineno, line in enumerate(lines[1:], start=2):
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"line {lineno}: not valid JSON: {exc}")
            continue
        if not isinstance(rec, dict) or rec.get("type") != "span":
            errors.append(f"line {lineno}: record type must be 'span'")
            continue
        if not isinstance(rec.get("id"), int):
            errors.append(f"line {lineno}: 'id' must be an integer")
            continue
        parent = rec.get("parent")
        if parent is not None and not isinstance(parent, int):
            errors.append(f"line {lineno}: 'parent' must be null or an integer")
        if not isinstance(rec.get("name"), str):
            errors.append(f"line {lineno}: 'name' must be a string")
        seq = rec.get("seq")
        if (
            not isinstance(seq, list)
            or len(seq) != 2
            or not all(isinstance(s, int) for s in seq)
            or seq[0] > seq[1]
        ):
            errors.append(
                f"line {lineno}: 'seq' must be [start, end] ints with start <= end"
            )
        wall = rec.get("wall")
        if (
            not isinstance(wall, list)
            or len(wall) != 2
            or not all(isinstance(w, (int, float)) for w in wall)
        ):
            errors.append(f"line {lineno}: 'wall' must be [start, end] numbers")
        for key in ("attrs", "counters"):
            if key in rec and not isinstance(rec[key], dict):
                errors.append(f"line {lineno}: {key!r} must be an object")
        span_id = rec["id"]
        if span_id in seen_ids:
            errors.append(f"line {lineno}: duplicate span id {span_id}")
        seen_ids.add(span_id)
    if isinstance(declared, int) and declared != len(lines) - 1:
        errors.append(
            f"header declares {declared} spans but file contains {len(lines) - 1}"
        )
    for lineno, line in enumerate(lines[1:], start=2):
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            continue
        parent = rec.get("parent") if isinstance(rec, dict) else None
        if parent is not None and parent not in seen_ids:
            errors.append(f"line {lineno}: parent {parent} references no span")
    return errors


def validate_trace_file(path: str) -> List[str]:
    """Validate a trace file on disk; returns the list of problems."""
    with open(path, "r", encoding="utf-8") as fh:
        lines = [line for line in fh.read().splitlines() if line.strip()]
    return validate_trace_lines(lines)
