"""Replica placement substrate.

RTSP consumes the *output* of a replica placement algorithm (§1: "the
latter being presumably the output of a replica placement algorithm").
This subpackage provides that upstream producer so examples and the video
scenario can exercise realistic placement churn:

* :mod:`repro.placement.greedy` — classic greedy benefit placement
  (Qiu-style): repeatedly add the replica with the highest access-cost
  reduction per unit of storage until capacity or benefit runs out,
* :mod:`repro.placement.local_search` — swap-based refinement of an
  existing placement.
"""

from repro.placement.greedy import greedy_placement, access_cost
from repro.placement.local_search import local_search_placement

__all__ = ["greedy_placement", "access_cost", "local_search_placement"]
