"""Greedy benefit replica placement.

The classic greedy algorithm used across the replica-placement literature
(cf. Qiu et al., INFOCOM'01; surveys [10], [18] of the paper): starting
from one mandatory replica per object, repeatedly place the replica with
the largest access-cost reduction per unit of storage until no placement
has positive benefit or capacities are exhausted.

Demand is expressed as a ``num_clients x num_objects`` request-count
matrix where client ``c`` is attached to server ``c`` (the common
server-as-point-of-presence model).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.util.errors import ConfigurationError
from repro.util.validation import check_nonnegative, check_positive


def access_cost(
    x: np.ndarray, costs: np.ndarray, sizes: np.ndarray, demand: np.ndarray
) -> float:
    """Total client access cost of placement ``x``.

    ``sum_{c,k} demand[c,k] * sizes[k] * min_{j: X[j,k]=1} costs[c,j]``.
    Objects with no replica contribute infinity.
    """
    m, n = x.shape
    total = 0.0
    for k in range(n):
        replicators = np.flatnonzero(x[:, k])
        if replicators.size == 0:
            return float("inf")
        per_client = costs[:m, replicators].min(axis=1)
        total += float(sizes[k]) * float(demand[:, k] @ per_client)
    return total


def greedy_placement(
    costs: np.ndarray,
    sizes: np.ndarray,
    capacities: np.ndarray,
    demand: np.ndarray,
    min_replicas: int = 1,
    max_replicas: Optional[int] = None,
    rng=None,
) -> np.ndarray:
    """Greedy benefit placement.

    Parameters
    ----------
    costs:
        Plain ``M x M`` server cost matrix (no dummy row).
    sizes, capacities:
        Object sizes and server capacities.
    demand:
        ``M x N`` request counts (client ``c`` attached to server ``c``).
    min_replicas:
        Mandatory replicas per object (placed first, by highest demand,
        on the least-loaded eligible server).
    max_replicas:
        Optional cap on replicas per object.

    Returns the ``M x N`` placement matrix.
    """
    costs = np.asarray(costs, dtype=np.float64)
    sizes = check_positive(sizes, "sizes")
    capacities = check_nonnegative(capacities, "capacities").copy()
    demand = check_nonnegative(demand, "demand")
    m = costs.shape[0]
    n = sizes.shape[0]
    if demand.shape != (m, n):
        raise ConfigurationError(f"demand must be {m}x{n}, got {demand.shape}")
    cap = max_replicas if max_replicas is not None else m
    if not 1 <= min_replicas <= cap <= m:
        raise ConfigurationError("need 1 <= min_replicas <= max_replicas <= M")

    x = np.zeros((m, n), dtype=np.int8)
    free = capacities.astype(np.float64)

    # Mandatory replicas: most-demanded objects first so the contended
    # storage goes to the objects that matter.
    order = np.argsort(-demand.sum(axis=0), kind="stable")
    for k in order:
        for _ in range(min_replicas):
            # Weight candidate servers by local demand, break ties by space.
            eligible = np.flatnonzero((x[:, k] == 0) & (free >= sizes[k]))
            if eligible.size == 0:
                raise ConfigurationError(
                    f"not enough capacity to place {min_replicas} replica(s) "
                    f"of every object (stuck at object {k})"
                )
            score = demand[eligible, k] + free[eligible] / (free.max() + 1.0)
            i = int(eligible[int(np.argmax(score))])
            x[i, k] = 1
            free[i] -= sizes[k]

    # Nearest-replicator cost per client per object, maintained
    # incrementally as replicas are added.
    best = np.empty((m, n), dtype=np.float64)
    for k in range(n):
        replicators = np.flatnonzero(x[:, k])
        best[:, k] = costs[:, replicators].min(axis=1)

    while True:
        # gain[i,k] = demand-weighted reduction of nearest costs if (i,k)
        # is added. Vectorised over clients.
        best_gain = 0.0
        best_pair = None
        counts = x.sum(axis=0)
        for k in range(n):
            if counts[k] >= cap:
                continue
            size_k = float(sizes[k])
            candidates = np.flatnonzero((x[:, k] == 0) & (free >= size_k))
            if candidates.size == 0:
                continue
            # improvement for client c if replica at i: max(0, best[c,k]-costs[c,i])
            imp = np.maximum(0.0, best[:, k][None, :].T - costs[:, candidates])
            gains = size_k * (demand[:, k] @ imp)  # per candidate
            idx = int(np.argmax(gains))
            gain = float(gains[idx]) / size_k  # benefit per storage unit
            if gain > best_gain + 1e-12:
                best_gain = gain
                best_pair = (int(candidates[idx]), int(k))
        if best_pair is None:
            break
        i, k = best_pair
        x[i, k] = 1
        free[i] -= sizes[k]
        best[:, k] = np.minimum(best[:, k], costs[:, i])
    return x
