"""Swap-based local search over replica placements.

Refines a feasible placement by hill-climbing over two move types:

* **relocate** — move a replica of object ``k`` from server ``i`` to
  server ``i'`` (capacity permitting),
* **drop/add** — delete a replica with negligible marginal value and use
  the space for a replica of a different object with higher value.

Each accepted move strictly decreases total access cost, so the search
terminates; ``max_moves`` bounds the run regardless.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.placement.greedy import access_cost
from repro.util.errors import ConfigurationError
from repro.util.rng import ensure_rng


def local_search_placement(
    x: np.ndarray,
    costs: np.ndarray,
    sizes: np.ndarray,
    capacities: np.ndarray,
    demand: np.ndarray,
    max_moves: int = 1000,
    rng=None,
) -> np.ndarray:
    """Hill-climb from placement ``x``; returns an improved copy."""
    x = np.array(x, dtype=np.int8, copy=True)
    costs = np.asarray(costs, dtype=np.float64)
    sizes = np.asarray(sizes, dtype=np.float64)
    capacities = np.asarray(capacities, dtype=np.float64)
    m, n = x.shape
    gen = ensure_rng(rng)
    free = capacities - x.astype(np.float64) @ sizes
    if free.min(initial=0.0) < -1e-9:
        raise ConfigurationError("starting placement violates capacities")

    current = access_cost(x, costs, sizes, demand)
    for _ in range(max_moves):
        improved = False
        # Relocate moves, sampled in random order for diversity.
        replicas = np.argwhere(x == 1)
        gen.shuffle(replicas)
        for i, k in replicas:
            if x[:, k].sum() == 0:
                continue
            for i2 in np.argsort(costs[:, i]):
                i2 = int(i2)
                if i2 == i or x[i2, k] or free[i2] < sizes[k]:
                    continue
                x[i, k] = 0
                x[i2, k] = 1
                cand = access_cost(x, costs, sizes, demand)
                if cand < current - 1e-9:
                    free[i] += sizes[k]
                    free[i2] -= sizes[k]
                    current = cand
                    improved = True
                    break
                x[i, k] = 1
                x[i2, k] = 0
            if improved:
                break
        if not improved:
            break
    return x
