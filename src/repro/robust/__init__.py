"""Fault injection and online schedule repair (extension).

The paper assumes every transfer succeeds; this subpackage drops that
assumption. A seeded :class:`FaultPlan` injects transfer failures, server
crashes (with replica loss) and link slowdowns into the discrete-event
execution, and :class:`RepairEngine` re-plans the remainder from the
mid-flight state after every detected failure:

* :mod:`repro.robust.faults` — deterministic fault-plan generation,
* :mod:`repro.robust.repair` — the detect / extract-residual / re-plan /
  degrade-to-dummy repair loop.

The failure-aware event loop itself lives in
:mod:`repro.timing.faulted`; residual-instance extraction in
:mod:`repro.model.residual`; overhead metrics in
:mod:`repro.analysis.metrics`; versioned JSON for plans and traces in
:mod:`repro.io`; and the failure-rate sweep in
:mod:`repro.experiments.robust_sweep`.
"""

from repro.robust.faults import (
    FaultPlan,
    LinkSlowdown,
    ServerCrash,
    TransferFault,
)
from repro.robust.repair import (
    RepairEngine,
    RepairPolicy,
    RepairReport,
    execute_with_repair,
)

__all__ = [
    "FaultPlan",
    "LinkSlowdown",
    "ServerCrash",
    "TransferFault",
    "RepairEngine",
    "RepairPolicy",
    "RepairReport",
    "execute_with_repair",
]
