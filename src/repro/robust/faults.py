"""Deterministic fault plans.

A :class:`FaultPlan` is a finite, seed-generated set of fault events to
inject into a simulated execution:

* :class:`TransferFault` — the ``attempt``-th transfer started (counted
  globally across repair rounds) fails after occupying its link for the
  full duration;
* :class:`ServerCrash` — at absolute time ``time`` server ``server``
  loses every replica it holds (storage survives, contents do not);
* :class:`LinkSlowdown` — from ``time`` onward, transfers started on the
  directed link ``source -> target`` take ``factor`` times longer.

Plans are value objects: the same ``(instance, rate, seed, horizon)``
always generates the same plan, and the whole repair pipeline downstream
is deterministic given the plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

import numpy as np

from repro.model.instance import RtspInstance
from repro.util.errors import ConfigurationError


@dataclass(frozen=True, order=True)
class TransferFault:
    """The ``attempt``-th transfer started fails (0-based, global)."""

    attempt: int


@dataclass(frozen=True, order=True)
class ServerCrash:
    """``server`` loses all replicas at absolute time ``time``."""

    time: float
    server: int


@dataclass(frozen=True, order=True)
class LinkSlowdown:
    """Transfers started on ``source -> target`` after ``time`` slow by
    ``factor`` (>= 1)."""

    time: float
    target: int
    source: int
    factor: float


@dataclass(frozen=True)
class FaultPlan:
    """A finite set of fault events plus the knobs that generated it."""

    transfer_faults: Tuple[TransferFault, ...] = ()
    crashes: Tuple[ServerCrash, ...] = ()
    slowdowns: Tuple[LinkSlowdown, ...] = ()
    rate: float = 0.0
    seed: int = 0
    horizon: float = 1.0

    def __post_init__(self) -> None:
        for fault in self.transfer_faults:
            if fault.attempt < 0:
                raise ConfigurationError("transfer-fault attempt must be >= 0")
        for crash in self.crashes:
            if crash.time < 0:
                raise ConfigurationError("crash time must be >= 0")
        for slow in self.slowdowns:
            if slow.factor < 1.0:
                raise ConfigurationError("slowdown factor must be >= 1")
            if slow.time < 0:
                raise ConfigurationError("slowdown time must be >= 0")

    @property
    def is_empty(self) -> bool:
        """Whether the plan injects nothing at all."""
        return not (self.transfer_faults or self.crashes or self.slowdowns)

    @property
    def num_hard_faults(self) -> int:
        """Faults that force a repair round (failures + crashes)."""
        return len(self.transfer_faults) + len(self.crashes)

    def fail_attempts(self) -> FrozenSet[int]:
        """Global attempt indices doomed to fail, as a set."""
        return frozenset(f.attempt for f in self.transfer_faults)

    def crash_events(self) -> List[Tuple[float, int]]:
        """Crashes as sorted ``(time, server)`` tuples."""
        return sorted((c.time, c.server) for c in self.crashes)

    def slowdown_events(self) -> List[Tuple[float, int, int, float]]:
        """Slowdowns as sorted ``(time, target, source, factor)`` tuples."""
        return sorted(
            (s.time, s.target, s.source, s.factor) for s in self.slowdowns
        )

    @classmethod
    def generate(
        cls,
        instance: RtspInstance,
        rate: float,
        seed: int,
        horizon: float = 1.0,
        transfer_rate: Optional[float] = None,
        crash_rate: Optional[float] = None,
        slowdown_rate: Optional[float] = None,
    ) -> "FaultPlan":
        """Sample a plan for ``instance`` at overall fault ``rate``.

        ``rate`` sets the per-attempt transfer-failure probability;
        crashes fire per server with probability ``rate / 4`` and link
        slowdowns per server with probability ``rate / 2`` (each knob
        individually overridable). Crash and slowdown times are uniform
        over ``[0, horizon)`` — pass the fault-free makespan as the
        horizon so faults actually land inside the execution window.

        The attempt budget considered for transfer failures is
        ``2 * outstanding + 8``: enough to hit first attempts *and*
        retries, while keeping the plan (and hence the number of repair
        rounds) finite.
        """
        if not 0.0 <= rate < 1.0:
            raise ConfigurationError("rate must be in [0, 1)")
        if horizon <= 0:
            raise ConfigurationError("horizon must be positive")
        t_rate = rate if transfer_rate is None else transfer_rate
        c_rate = rate / 4.0 if crash_rate is None else crash_rate
        s_rate = rate / 2.0 if slowdown_rate is None else slowdown_rate
        rng = np.random.default_rng(seed)

        max_attempts = 2 * int(instance.outstanding().sum()) + 8
        transfer_faults = tuple(
            TransferFault(attempt)
            for attempt in range(max_attempts)
            if rng.random() < t_rate
        )

        crashes = tuple(
            ServerCrash(time=float(rng.random() * horizon), server=server)
            for server in range(instance.num_servers)
            if rng.random() < c_rate
        )

        slowdowns: List[LinkSlowdown] = []
        for _ in range(instance.num_servers):
            if rng.random() >= s_rate:
                continue
            target = int(rng.integers(0, instance.num_servers))
            # Source may be any other server, the dummy included (index M).
            source = int(rng.integers(0, instance.num_servers + 1))
            if source == target:
                source = instance.dummy
            slowdowns.append(
                LinkSlowdown(
                    time=float(rng.random() * horizon),
                    target=target,
                    source=source,
                    factor=float(2.0 + 6.0 * rng.random()),
                )
            )

        return cls(
            transfer_faults=transfer_faults,
            crashes=crashes,
            slowdowns=tuple(slowdowns),
            rate=rate,
            seed=seed,
            horizon=float(horizon),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FaultPlan(failures={len(self.transfer_faults)}, "
            f"crashes={len(self.crashes)}, slowdowns={len(self.slowdowns)}, "
            f"rate={self.rate:g}, seed={self.seed})"
        )
