"""Online schedule repair under injected faults.

:class:`RepairEngine` executes a pipeline's schedule on the failure-aware
simulator and, every time a hard fault halts the run, (a) captures the
mid-flight :class:`~repro.model.state.SystemState`, (b) extracts the
residual RTSP instance (current placement ``->`` original ``X_new``),
(c) re-plans the remainder with the same pipeline under a bounded
retry/backoff policy, and (d) continues until the state reaches ``X_new``
exactly.

Graceful degradation falls out of the paper's dummy-server construction:
when a crash wipes the last real replicator of an object, the residual
instance simply has no old source for it and every builder emits a dummy
transfer — the extended problem stays solvable whenever ``X_new`` fits
its capacities, so a repaired execution *provably* terminates at
``X_new`` (the fault plan is finite and each repair round consumes at
least one fault).

Everything is deterministic per ``(fault plan, pipeline, seed)``: round
``r``'s re-plan uses the derived seed ``derive_seed(seed, "repair", r)``
and the simulator's tie-breaking is deterministic, so repeated runs
produce identical traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.core.pipeline import Pipeline, build_pipeline
from repro.model.actions import Transfer
from repro.model.instance import RtspInstance
from repro.model.schedule import Schedule
from repro.model.state import SystemState
from repro.obs.context import current_events, current_metrics, current_tracer
from repro.robust.faults import FaultPlan
from repro.timing.bandwidth import bandwidths_from_costs
from repro.timing.executor import simulate_parallel
from repro.timing.faulted import (
    STATUS_LOST,
    STATUS_OK,
    FaultedAction,
    simulate_with_faults,
)
from repro.util.errors import InvalidScheduleError, RepairExhaustedError
from repro.util.rng import derive_seed


@dataclass(frozen=True)
class RepairPolicy:
    """Bounds and pacing of the repair loop.

    ``max_rounds=None`` (the default) auto-bounds to the plan's hard-fault
    count plus one, which is always sufficient; a smaller explicit bound
    makes :class:`~repro.util.errors.RepairExhaustedError` reachable.
    ``backoff_base > 0`` charges simulated downtime before the ``r``-th
    re-plan: ``backoff_base * backoff_factor ** (r - 1)``.
    """

    max_rounds: Optional[int] = None
    backoff_base: float = 0.0
    backoff_factor: float = 2.0

    def bound(self, plan: FaultPlan) -> int:
        """The effective round bound for ``plan``."""
        if self.max_rounds is not None:
            return self.max_rounds
        return plan.num_hard_faults + 1

    def backoff(self, round_index: int) -> float:
        """Simulated delay charged before re-plan number ``round_index``."""
        if self.backoff_base <= 0:
            return 0.0
        return self.backoff_base * self.backoff_factor ** (round_index - 1)


@dataclass
class RepairReport:
    """Everything a repaired execution produced.

    ``events`` is the full chronological log across all rounds: ``ok``
    actions at their finish times, ``failed``/``aborted`` attempts, and
    ``lost`` synthetic deletes from crashes. Replaying the applied subset
    (``ok`` + ``lost``) from ``X_old`` reproduces the final state — see
    :meth:`applied_schedule` / :meth:`revalidate`.
    """

    completed: bool
    rounds: int
    makespan: float
    events: List[FaultedAction] = field(default_factory=list)
    total_cost: float = 0.0
    wasted_cost: float = 0.0
    dummy_transfers: int = 0
    fault_free_cost: float = 0.0
    fault_free_makespan: float = 0.0
    fault_free_dummy_transfers: int = 0
    plan: Optional[FaultPlan] = None
    #: Re-plans actually performed (== ``rounds`` in the current loop, but
    #: kept separate so future policies can retry without re-planning).
    replans: int = 0
    #: Total simulated backoff downtime charged before re-plans.
    backoff_total: float = 0.0

    def applied_schedule(self) -> Schedule:
        """The applied (``ok`` + ``lost``) events as a plain schedule."""
        return Schedule(e.action for e in self.events if e.applied)

    def revalidate(self, instance: RtspInstance, strict: bool = False) -> bool:
        """Whether the applied event log replays from ``X_old`` to ``X_new``.

        With ``strict=True`` the check runs through the independent
        invariant oracle (:func:`repro.exact.validate.check_invariants`)
        instead of the model-layer replay.
        """
        if strict:
            from repro.exact.validate import check_invariants

            return check_invariants(instance, self.applied_schedule()).ok
        return self.applied_schedule().is_valid(instance)

    def require_valid(self, instance: RtspInstance, strict: bool = False) -> None:
        """Raise unless the applied event log re-validates."""
        if strict:
            from repro.exact.validate import assert_invariants

            assert_invariants(
                instance, self.applied_schedule(), context="repaired trace"
            )
            return
        self.applied_schedule().require_valid(instance)


class RepairEngine:
    """Fault-injected execution with online re-planning.

    Parameters
    ----------
    pipeline:
        A :class:`~repro.core.pipeline.Pipeline` or a spec string like
        ``"GOLCF+H1+H2"``; the same pipeline plans round 0 and every
        repair round.
    policy:
        Retry/backoff bounds (see :class:`RepairPolicy`).
    bandwidths:
        Link bandwidth matrix; defaults to
        ``bandwidths_from_costs(instance.costs)`` per execution.
    """

    def __init__(
        self,
        pipeline: Union[str, Pipeline],
        policy: RepairPolicy = RepairPolicy(),
        bandwidths: Optional[np.ndarray] = None,
        out_slots: int = 1,
        in_slots: int = 1,
    ) -> None:
        self.pipeline = (
            build_pipeline(pipeline) if isinstance(pipeline, str) else pipeline
        )
        self.policy = policy
        self.bandwidths = bandwidths
        self.out_slots = out_slots
        self.in_slots = in_slots

    def execute(
        self,
        instance: RtspInstance,
        plan: FaultPlan,
        rng: int = 0,
        validate=True,
    ) -> RepairReport:
        """Run ``instance``'s transition under ``plan``, repairing online.

        ``rng`` must be an integer seed (per-round seeds are derived from
        it, which is what makes re-execution deterministic). ``validate``
        re-checks the applied event log before returning: ``True`` /
        ``"basic"`` replays through the model layer, ``"strict"`` runs
        the independent invariant oracle from
        :mod:`repro.exact.validate`, ``None``/``False`` skips the check.
        """
        seed = int(rng)
        registry = current_metrics()
        tracer = current_tracer()
        stream = current_events()
        bandwidths = (
            bandwidths_from_costs(instance.costs)
            if self.bandwidths is None
            else self.bandwidths
        )

        # Fault-free baseline for overhead metrics: same seed, same
        # pipeline, untouched simulator — byte-identical to what the
        # non-robust path produces.
        baseline_schedule = self.pipeline.run(instance, rng=seed)
        baseline = simulate_parallel(
            baseline_schedule,
            instance,
            bandwidths,
            out_slots=self.out_slots,
            in_slots=self.in_slots,
        )

        report = RepairReport(
            completed=False,
            rounds=0,
            makespan=0.0,
            fault_free_cost=baseline_schedule.cost(instance),
            fault_free_makespan=baseline.makespan,
            fault_free_dummy_transfers=baseline_schedule.count_dummy_transfers(
                instance
            ),
            plan=plan,
        )

        state = SystemState(instance)
        schedule = baseline_schedule
        fail_attempts = plan.fail_attempts()
        remaining_crashes = plan.crash_events()
        slowdowns = plan.slowdown_events()
        clock = 0.0
        attempts = 0
        max_rounds = self.policy.bound(plan)

        while True:
            with tracer.span("repair.round", round=report.rounds):
                result = simulate_with_faults(
                    schedule,
                    instance,
                    bandwidths,
                    state,
                    fail_attempts=fail_attempts,
                    crashes=remaining_crashes,
                    slowdowns=slowdowns,
                    out_slots=self.out_slots,
                    in_slots=self.in_slots,
                    start_time=clock,
                    attempt_offset=attempts,
                )
            report.events.extend(result.trace)
            report.wasted_cost += result.wasted_cost
            attempts += result.attempts
            clock = result.stop_time

            if result.crash_fired is not None:
                remaining_crashes.pop(0)
            if result.completed:
                # Crashes outliving the schedule still fire: the system
                # reached X_new, loses replicas, and must repair again.
                if remaining_crashes:
                    crash_time, server = remaining_crashes.pop(0)
                    clock = max(clock, crash_time)
                    for delete in state.crash_server(server):
                        report.events.append(
                            FaultedAction(-1, delete, clock, clock, STATUS_LOST)
                        )
                elif state.matches(instance.x_new):
                    break
                else:  # pragma: no cover - defensive: builders guarantee X_new
                    raise InvalidScheduleError(
                        "repaired execution completed without reaching X_new"
                    )

            report.rounds += 1
            if registry is not None:
                registry.counter("repair.rounds").inc()
            if stream is not None:
                stream.emit(
                    "repair.round",
                    round=report.rounds,
                    reason=str(result.failure),
                    attempts=attempts,
                )
            if report.rounds > max_rounds:
                if stream is not None:
                    stream.emit(
                        "repair.exhausted",
                        rounds=report.rounds,
                        max_rounds=max_rounds,
                        reason=str(result.failure),
                    )
                    recorder = stream.recorder
                    if recorder is not None and recorder.path is not None:
                        recorder.dump(reason="repair budget exhausted")
                raise RepairExhaustedError(
                    f"gave up after {max_rounds} repair rounds "
                    f"(last failure: {result.failure})"
                )
            backoff = self.policy.backoff(report.rounds)
            if backoff > 0:
                report.backoff_total += backoff
                if registry is not None:
                    registry.counter("repair.backoff_waits").inc()
            clock += backoff
            with tracer.span(
                "repair.replan", round=report.rounds, reason=result.failure
            ):
                schedule = self.pipeline.replan(
                    instance,
                    state.placement(),
                    rng=derive_seed(seed, "repair", report.rounds),
                )
            report.replans += 1
            if registry is not None:
                registry.counter("repair.replans").inc()

        report.completed = True
        report.makespan = clock
        for event in report.events:
            if event.status == STATUS_OK and isinstance(event.action, Transfer):
                report.total_cost += instance.transfer_cost(
                    event.action.target, event.action.obj, event.action.source
                )
                if event.action.source == instance.dummy:
                    report.dummy_transfers += 1
        if validate:
            report.require_valid(instance, strict=(validate == "strict"))
        return report


def execute_with_repair(
    instance: RtspInstance,
    plan: FaultPlan,
    pipeline: Union[str, Pipeline] = "GOLCF+H1+H2",
    rng: int = 0,
    **engine_kwargs,
) -> RepairReport:
    """One-shot convenience wrapper around :class:`RepairEngine`."""
    return RepairEngine(pipeline, **engine_kwargs).execute(
        instance, plan, rng=rng
    )
