"""Planning-as-a-service: the RTSP planner over HTTP (``repro.serve``).

The library solves one X_old → X_new step in-process; a production
deployment re-plans continuously, concurrently and over the wire. This
package is that serving layer, built entirely on the standard library:

* :mod:`repro.serve.schemas` — versioned JSON request/response formats
  (``rtsp-plan-request/1`` ... ``rtsp-error/1``), strictly parsed;
* :mod:`repro.serve.jobs` — the async job queue: bounded worker
  threads, per-job timeout, cooperative cancellation, per-job
  ``rtsp-events/1`` progress streams;
* :mod:`repro.serve.cache` — topology-hash keyed cost-matrix reuse
  (placement deltas re-plan without re-uploading the ``O(M^2)``
  matrix; large matrices spill via
  :class:`~repro.shard.mmapcost.CostMatrixStore`) and a plan-response
  LRU that replays deterministic results byte-identically;
* :mod:`repro.serve.service` — the endpoints as transport-free
  methods, wired to :mod:`repro.core` (plan), :mod:`repro.exact`
  (validate) and :mod:`repro.robust` (repair);
* :mod:`repro.serve.server` — the stdlib ``ThreadingHTTPServer``
  transport (``rtsp-tool serve``);
* :mod:`repro.serve.client` — a stdlib client used by the tests and
  the ``benchmarks/serve_bench.py`` load harness.

Served schedules are byte-identical to the in-process library path for
the same ``(instance, pipeline, seed)`` — see ``tests/serve/``.
"""

from repro.serve.cache import (
    PlanCache,
    TopologyStore,
    instance_fingerprint,
    topology_hash,
)
from repro.serve.client import ServeClient
from repro.serve.jobs import (
    Job,
    JobCancelled,
    JobContext,
    JobNotFound,
    JobQueue,
    JobTimeout,
    QueueFull,
)
from repro.serve.schemas import (
    PLAN_REQUEST_FORMAT,
    PLAN_RESPONSE_FORMAT,
    PlanRequest,
    SchemaError,
    canonical_json,
    check_response_format,
    plan_request_from_dict,
)
from repro.serve.server import (
    PlanningHTTPServer,
    ServerHandle,
    make_server,
    run_server,
)
from repro.serve.service import (
    PlanningService,
    ServeConfig,
    UnknownTopologyError,
)

__all__ = [
    # cache
    "PlanCache",
    "TopologyStore",
    "instance_fingerprint",
    "topology_hash",
    # jobs
    "Job",
    "JobContext",
    "JobQueue",
    "JobCancelled",
    "JobTimeout",
    "JobNotFound",
    "QueueFull",
    # schemas
    "PLAN_REQUEST_FORMAT",
    "PLAN_RESPONSE_FORMAT",
    "PlanRequest",
    "SchemaError",
    "canonical_json",
    "check_response_format",
    "plan_request_from_dict",
    # service + transport
    "PlanningService",
    "ServeConfig",
    "UnknownTopologyError",
    "PlanningHTTPServer",
    "ServerHandle",
    "make_server",
    "run_server",
    "ServeClient",
]
