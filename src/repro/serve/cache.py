"""Topology-hash keyed caching for the planning service.

Two caches sit behind ``POST /v1/plan``:

* :class:`TopologyStore` — the extended cost matrix keyed by its
  canonical :func:`topology_hash`. Matrices are the one ``O(M^2)``
  request component; clients upload them once and re-plan with
  placement deltas that reference the hash. Large matrices spill to a
  read-only memmap via :class:`repro.shard.mmapcost.CostMatrixStore`
  so a busy server does not hold every fleet's matrix in RAM.
* :class:`PlanCache` — finished plan responses keyed by the full
  instance fingerprint plus ``(pipeline, seed, shards)``. Planning is
  deterministic per key, so a hit can replay the canonical response
  bytes without re-running the builder.

Both hashes are canonical: arrays are reduced to a fixed dtype and
C-order before hashing, so the same logical instance hashes identically
regardless of how the client serialised it. Two instances that share a
cost matrix but differ in placements collide on ``topology_hash`` *by
design* (that is the reuse) and are separated by
:func:`instance_fingerprint`.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.model.instance import RtspInstance
from repro.shard.mmapcost import MMAP_DEFAULT_BYTES, CostMatrixStore

__all__ = [
    "topology_hash",
    "instance_fingerprint",
    "TopologyStore",
    "PlanCache",
]


def _digest_arrays(tag: str, *arrays: Tuple[str, np.ndarray, Any]) -> str:
    """sha256 over dtype-normalised array bytes (shape included)."""
    h = hashlib.sha256()
    h.update(tag.encode("ascii"))
    for name, array, dtype in arrays:
        canon = np.ascontiguousarray(np.asarray(array, dtype=dtype))
        h.update(name.encode("ascii"))
        h.update(repr(canon.shape).encode("ascii"))
        h.update(canon.tobytes())
    return "sha256:" + h.hexdigest()


def topology_hash(costs: np.ndarray) -> str:
    """Canonical hash of an extended cost matrix.

    Deterministic across runs and processes; two matrices hash equally
    iff they are element-wise identical after float64 normalisation.
    """
    return _digest_arrays("rtsp-topology/1", ("costs", costs, np.float64))


def instance_fingerprint(instance: RtspInstance) -> str:
    """Canonical hash of a full instance (topology + sizes + placements)."""
    return _digest_arrays(
        "rtsp-instance/1",
        ("costs", instance.costs, np.float64),
        ("sizes", instance.sizes, np.float64),
        ("capacities", instance.capacities, np.float64),
        ("x_old", instance.x_old, np.uint8),
        ("x_new", instance.x_new, np.uint8),
    )


class TopologyStore:
    """Bounded LRU of cost matrices keyed by :func:`topology_hash`.

    ``spill`` follows :meth:`CostMatrixStore.from_matrix` semantics
    (``"auto"`` memmaps matrices above ``threshold_bytes``). Evicted and
    closed entries unlink their spill files. Thread-safe.
    """

    def __init__(
        self,
        max_entries: int = 32,
        spill: object = "auto",
        threshold_bytes: int = MMAP_DEFAULT_BYTES,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.spill = spill
        self.threshold_bytes = threshold_bytes
        self._entries: "OrderedDict[str, CostMatrixStore]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def register(self, costs: np.ndarray) -> Tuple[str, bool]:
        """Remember ``costs``; returns ``(hash, newly_stored)``."""
        key = topology_hash(costs)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                return key, False
        # Spill outside the lock: writing a large matrix to disk must
        # not serialise unrelated lookups.
        store = CostMatrixStore.from_matrix(
            np.asarray(costs, dtype=np.float64),
            spill=self.spill,
            threshold_bytes=self.threshold_bytes,
        )
        evicted = None
        with self._lock:
            if key in self._entries:  # lost a registration race
                self._entries.move_to_end(key)
                evicted = store
            else:
                self._entries[key] = store
                if len(self._entries) > self.max_entries:
                    _, evicted = self._entries.popitem(last=False)
        if evicted is not None:
            evicted.close()
        return key, evicted is not store

    def get(self, key: str) -> Optional[np.ndarray]:
        """The matrix for ``key``, or ``None`` (counts a hit/miss)."""
        with self._lock:
            store = self._entries.get(key)
            if store is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
        return store.matrix

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> Dict[str, int]:
        with self._lock:
            spilled = sum(1 for s in self._entries.values() if s.spilled)
            return {
                "entries": len(self._entries),
                "spilled": spilled,
                "hits": self.hits,
                "misses": self.misses,
            }

    def close(self) -> None:
        """Drop every entry and unlink spill files."""
        with self._lock:
            entries = list(self._entries.values())
            self._entries.clear()
        for store in entries:
            store.close()

    def __enter__(self) -> "TopologyStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class PlanCache:
    """Bounded LRU of canonical plan-response JSON strings.

    Keys are ``(instance_fingerprint, pipeline, seed, shards)``; the
    value is the response's canonical JSON, so :meth:`get` hands back a
    fresh dict each time (callers may annotate it without corrupting
    the cache). Thread-safe.
    """

    def __init__(self, max_entries: int = 128) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple, str]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(
        fingerprint: str, pipeline: str, seed: int, shards: Optional[int]
    ) -> Tuple[str, str, int, Optional[int]]:
        """The cache key for one deterministic planning run."""
        return (fingerprint, pipeline, int(seed), shards)

    def get(self, key: Tuple) -> Optional[Dict[str, Any]]:
        with self._lock:
            blob = self._entries.get(key)
            if blob is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
        return json.loads(blob)

    def put(self, key: Tuple, payload: Dict[str, Any]) -> None:
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        with self._lock:
            self._entries[key] = blob
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
            }
