"""Minimal stdlib HTTP client for the planning service.

Used by the load-test harness (``benchmarks/serve_bench.py``), the
serve test suite and as a reference for external callers: every method
returns ``(status, payload)`` where the payload is the parsed JSON
body — including 4xx/5xx ``rtsp-error/1`` bodies, which are returned,
not raised, so callers can assert on them.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Dict, Optional, Tuple

from repro.io import instance_to_dict
from repro.model.instance import RtspInstance
from repro.serve.schemas import (
    BATCH_REQUEST_FORMAT,
    PLAN_REQUEST_FORMAT,
    REPAIR_REQUEST_FORMAT,
    VALIDATE_REQUEST_FORMAT,
)

__all__ = ["ServeClient"]


class ServeClient:
    """Talk to one serve endpoint (``http://host:port``)."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Any] = None,
    ) -> Tuple[int, Any]:
        """One round trip; JSON bodies in, parsed JSON (or text) out."""
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            self.base_url + path, data=body, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return resp.status, self._decode(resp)
        except urllib.error.HTTPError as exc:
            return exc.code, self._decode(exc)

    @staticmethod
    def _decode(resp: Any) -> Any:
        raw = resp.read()
        content_type = resp.headers.get("Content-Type", "")
        if "json" in content_type:
            return json.loads(raw)
        return raw.decode("utf-8")

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def plan_raw(self, payload: Dict[str, Any]) -> Tuple[int, Any]:
        """POST an already-built plan (or batch) request payload."""
        return self.request("POST", "/v1/plan", payload)

    def plan(
        self,
        instance: Optional[RtspInstance] = None,
        pipeline: str = "GOLCF+H1+H2+OP1",
        seed: int = 0,
        mode: str = "sync",
        shards: Optional[int] = None,
        validate: Optional[str] = None,
        timeout_seconds: Optional[float] = None,
        delta: Optional[Dict[str, Any]] = None,
        instance_dict: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, Any]:
        """Build and POST one ``rtsp-plan-request/1``.

        Pass exactly one of ``instance`` (an in-memory
        :class:`RtspInstance`), ``instance_dict`` (a pre-serialised
        ``rtsp-instance/1`` payload — the bench harness serialises once
        and reuses it), or ``delta``.
        """
        payload: Dict[str, Any] = {
            "format": PLAN_REQUEST_FORMAT,
            "pipeline": pipeline,
            "seed": seed,
            "mode": mode,
        }
        if shards is not None:
            payload["shards"] = shards
        if validate is not None:
            payload["validate"] = validate
        if timeout_seconds is not None:
            payload["timeout_seconds"] = timeout_seconds
        if instance is not None:
            payload["instance"] = instance_to_dict(instance)
        if instance_dict is not None:
            payload["instance"] = instance_dict
        if delta is not None:
            payload["delta"] = delta
        return self.plan_raw(payload)

    def plan_batch(self, requests: list) -> Tuple[int, Any]:
        """POST a ``rtsp-plan-batch-request/1`` of prebuilt entries."""
        return self.plan_raw(
            {"format": BATCH_REQUEST_FORMAT, "requests": requests}
        )

    def validate(
        self,
        instance: RtspInstance,
        schedule: Dict[str, Any],
        strict: bool = False,
    ) -> Tuple[int, Any]:
        return self.request(
            "POST",
            "/v1/validate",
            {
                "format": VALIDATE_REQUEST_FORMAT,
                "instance": instance_to_dict(instance),
                "schedule": schedule,
                "strict": strict,
            },
        )

    def repair(
        self,
        instance: RtspInstance,
        fault_plan: Dict[str, Any],
        pipeline: str = "GOLCF+H1+H2",
        seed: int = 0,
        validate: Optional[str] = "basic",
    ) -> Tuple[int, Any]:
        return self.request(
            "POST",
            "/v1/repair",
            {
                "format": REPAIR_REQUEST_FORMAT,
                "instance": instance_to_dict(instance),
                "fault_plan": fault_plan,
                "pipeline": pipeline,
                "seed": seed,
                "validate": validate,
            },
        )

    def job(self, job_id: str, since: int = 0) -> Tuple[int, Any]:
        suffix = f"?since={since}" if since else ""
        return self.request("GET", f"/v1/jobs/{job_id}{suffix}")

    def cancel(self, job_id: str) -> Tuple[int, Any]:
        return self.request("DELETE", f"/v1/jobs/{job_id}")

    def healthz(self) -> Tuple[int, Any]:
        return self.request("GET", "/healthz")

    def metrics(self) -> Tuple[int, str]:
        status, text = self.request("GET", "/metrics")
        return status, text

    def metrics_parsed(self) -> Dict[str, Any]:
        """The /metrics exposition parsed back into snapshot layout."""
        from repro.obs.export import parse_prometheus_text

        status, text = self.metrics()
        if status != 200:
            raise RuntimeError(f"/metrics returned {status}")
        return parse_prometheus_text(text)
