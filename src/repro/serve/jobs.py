"""Async job queue with bounded workers, timeouts and cancellation.

The planning service runs every plan/repair on this queue: HTTP
handler threads only parse, submit and wait, so plan CPU usage is
bounded by the worker count no matter how many connections are open.

Jobs are cooperative. A running job periodically calls
:meth:`JobContext.check` (the service wires the check into the job's
``rtsp-events/1`` progress stream, so every builder-wave heartbeat and
shard completion is a cancellation point); ``check`` raises
:class:`JobCancelled` / :class:`JobTimeout`, which the worker maps to
the terminal ``cancelled`` / ``timeout`` states. Jobs still pending
when their deadline passes, or cancelled before a worker picks them
up, never run at all.

Job ids are sequential (``job-000001``), not random: the queue is
in-process state, and deterministic ids keep the test suite and the
event streams reproducible.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.obs.events import EventStream
from repro.util.errors import RtspError

__all__ = [
    "PENDING",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "TIMEOUT",
    "TERMINAL_STATES",
    "JobError",
    "JobCancelled",
    "JobTimeout",
    "JobNotFound",
    "QueueFull",
    "Job",
    "JobContext",
    "JobQueue",
]

PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
TIMEOUT = "timeout"

TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED, TIMEOUT})


class JobError(RtspError):
    """Base class for job-lifecycle errors."""


class JobCancelled(JobError):
    """The job was cancelled before it finished."""


class JobTimeout(JobError):
    """The job's deadline expired before it finished."""


class JobNotFound(RtspError):
    """No job with the requested id exists (transport: 404)."""


class QueueFull(RtspError):
    """The pending queue is at capacity (transport: 429)."""


class Job:
    """One unit of queued work and its observable lifecycle."""

    def __init__(
        self,
        job_id: str,
        kind: str,
        fn: Callable[["JobContext"], Any],
        timeout_seconds: Optional[float] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.id = job_id
        self.kind = kind
        self.fn = fn
        self.timeout_seconds = timeout_seconds
        self.state = PENDING
        self.result: Any = None
        self.error: Optional[BaseException] = None
        #: Per-job progress stream (``rtsp-events/1`` records).
        self.stream = EventStream(meta={"job": job_id, "kind": kind, **(meta or {})})
        self.submitted_at = time.monotonic()
        self.deadline = (
            self.submitted_at + timeout_seconds
            if timeout_seconds is not None
            else None
        )
        self.cancel_event = threading.Event()
        self.done_event = threading.Event()
        self._lock = threading.Lock()

    # The queue transitions states under its own lock; these helpers are
    # for readers (HTTP handlers, tests).
    @property
    def finished(self) -> bool:
        return self.state in TERMINAL_STATES

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state."""
        return self.done_event.wait(timeout)

    def events_since(self, since: int = 0) -> List[Dict[str, Any]]:
        """Logical progress records with ``seq >= since`` (poll cursor)."""
        with self._lock:
            events = list(self.stream.events)
        return [e.logical_record() for e in events if e.seq >= since]

    def record(self, name: str, **attrs: Any) -> None:
        """Append one progress event (thread-safe wrapper)."""
        with self._lock:
            self.stream.emit(name, **attrs)

    def snapshot(self, since: int = 0) -> Dict[str, Any]:
        """The ``rtsp-job/1`` view served by ``GET /v1/jobs/{id}``."""
        from repro.serve.schemas import JOB_FORMAT

        events = self.events_since(since)
        payload: Dict[str, Any] = {
            "format": JOB_FORMAT,
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "events": events,
            "next_seq": (events[-1]["seq"] + 1) if events else since,
        }
        if self.state == DONE:
            payload["result"] = self.result
        elif self.state in (FAILED, CANCELLED, TIMEOUT) and self.error is not None:
            payload["error"] = {
                "type": type(self.error).__name__,
                "message": str(self.error),
            }
        return payload


class JobContext:
    """What a running job sees: progress emission and checkpoints."""

    def __init__(self, job: Job) -> None:
        self.job = job

    def check(self) -> None:
        """Raise if the job was cancelled or its deadline passed."""
        if self.job.cancel_event.is_set():
            raise JobCancelled(f"{self.job.id} cancelled")
        deadline = self.job.deadline
        if deadline is not None and time.monotonic() > deadline:
            raise JobTimeout(
                f"{self.job.id} exceeded its "
                f"{self.job.timeout_seconds:g}s timeout"
            )

    def emit(self, name: str, **attrs: Any) -> None:
        """Record progress, then checkpoint (every emit can cancel)."""
        self.job.record(name, **attrs)
        self.check()

    def checkpoint_hook(self) -> Callable[[Any], None]:
        """An ``on_event`` hook turning every event into a checkpoint.

        Install on an :class:`~repro.obs.events.EventStream` that deep
        instrumentation writes to, so builder-wave heartbeats double as
        cancellation points.
        """

        def _hook(_event: Any) -> None:
            self.check()

        return _hook


class JobQueue:
    """FIFO queue drained by a fixed pool of daemon worker threads."""

    def __init__(
        self,
        workers: int = 2,
        max_pending: int = 64,
        max_history: int = 256,
        name: str = "serve",
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.workers = workers
        self.max_pending = max_pending
        self.max_history = max_history
        self._pending: Deque[Job] = deque()
        self._jobs: Dict[str, Job] = {}
        self._order: Deque[str] = deque()
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._next_id = 1
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"{name}-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # submission / lookup
    # ------------------------------------------------------------------
    def submit(
        self,
        fn: Callable[[JobContext], Any],
        kind: str = "plan",
        timeout_seconds: Optional[float] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> Job:
        """Enqueue ``fn``; raises :class:`QueueFull` at capacity."""
        with self._lock:
            if self._closed:
                raise QueueFull("queue is shut down")
            if len(self._pending) >= self.max_pending:
                raise QueueFull(
                    f"pending queue is full ({self.max_pending} jobs)"
                )
            job = Job(
                f"job-{self._next_id:06d}",
                kind,
                fn,
                timeout_seconds=timeout_seconds,
                meta=meta,
            )
            self._next_id += 1
            self._jobs[job.id] = job
            self._order.append(job.id)
            self._pending.append(job)
            self._prune_locked()
            self._wake.notify()
        job.record("job.submitted", kind=kind)
        return job

    def get(self, job_id: str) -> Job:
        """Look a job up by id; raises :class:`JobNotFound`."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFound(f"unknown job id {job_id!r}")
        return job

    def cancel(self, job_id: str) -> bool:
        """Request cancellation; ``True`` if the job will not produce
        a result (it was pending, or the request was delivered to a
        running job), ``False`` if it had already finished."""
        job = self.get(job_id)
        with self._lock:
            if job.state in TERMINAL_STATES:
                return False
            job.cancel_event.set()
            if job.state == PENDING:
                self._finish_locked(
                    job, CANCELLED, error=JobCancelled(f"{job.id} cancelled")
                )
                return True
        job.record("job.cancel_requested")
        return True

    def counts(self) -> Dict[str, int]:
        """``state -> number of jobs`` over the retained history."""
        with self._lock:
            out: Dict[str, int] = {}
            for job in self._jobs.values():
                out[job.state] = out.get(job.state, 0) + 1
            return out

    def shutdown(self, wait: bool = True, timeout: float = 5.0) -> None:
        """Stop accepting work, cancel pending jobs, stop the workers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            while self._pending:
                job = self._pending.popleft()
                if job.state == PENDING:
                    self._finish_locked(
                        job,
                        CANCELLED,
                        error=JobCancelled("queue shut down"),
                    )
            self._wake.notify_all()
        if wait:
            for thread in self._threads:
                thread.join(timeout=timeout)

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _prune_locked(self) -> None:
        """Drop the oldest *terminal* jobs beyond ``max_history``."""
        while len(self._order) > self.max_history:
            for index, job_id in enumerate(self._order):
                job = self._jobs[job_id]
                if job.state in TERMINAL_STATES:
                    del self._order[index]
                    del self._jobs[job_id]
                    break
            else:
                return  # everything retained is still live

    def _finish_locked(
        self, job: Job, state: str, error: Optional[BaseException] = None
    ) -> None:
        job.state = state
        job.error = error
        job.done_event.set()

    def _worker(self) -> None:
        while True:
            with self._lock:
                while not self._pending and not self._closed:
                    self._wake.wait()
                if self._closed and not self._pending:
                    return
                job = self._pending.popleft()
                if job.state != PENDING:
                    continue  # cancelled while queued
                if (
                    job.deadline is not None
                    and time.monotonic() > job.deadline
                ):
                    self._finish_locked(
                        job,
                        TIMEOUT,
                        error=JobTimeout(
                            f"{job.id} expired before a worker picked it up"
                        ),
                    )
                    continue
                job.state = RUNNING
            job.record("job.started")
            ctx = JobContext(job)
            try:
                result = job.fn(ctx)
                ctx.check()  # a cancel/timeout that landed at the finish line
            except JobCancelled as exc:
                job.record("job.cancelled")
                with self._lock:
                    self._finish_locked(job, CANCELLED, error=exc)
            except JobTimeout as exc:
                job.record("job.timeout")
                with self._lock:
                    self._finish_locked(job, TIMEOUT, error=exc)
            except BaseException as exc:  # noqa: BLE001 - worker must survive
                job.record(
                    "job.failed",
                    error=type(exc).__name__,
                    message=str(exc)[:500],
                )
                with self._lock:
                    self._finish_locked(job, FAILED, error=exc)
            else:
                job.record("job.done")
                with self._lock:
                    job.result = result
                    self._finish_locked(job, DONE)
