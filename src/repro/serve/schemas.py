"""Versioned JSON request/response schemas for the planning service.

Every payload that crosses the HTTP boundary carries a ``format`` tag
(``rtsp-plan-request/1``, ``rtsp-plan-response/1``, ...), mirroring the
``rtsp-instance/1`` / ``rtsp-schedule/1`` interchange formats in
:mod:`repro.io`. Parsing is strict: unknown keys, wrong types and
missing fields all raise :class:`SchemaError`, which the transport maps
to a 400 so malformed clients fail loudly instead of planning garbage.

A plan request carries either a full inline ``instance`` or a
``delta`` — new sizes/capacities/placements against a cost matrix the
server already holds (keyed by its canonical topology hash, see
:func:`repro.serve.cache.topology_hash`). Deltas are how a deployment
tool re-plans continuously without re-uploading the ``O(M^2)`` matrix
on every placement epoch.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from repro.io import instance_from_dict, instance_to_dict
from repro.model.instance import RtspInstance
from repro.util.errors import ConfigurationError

__all__ = [
    "PLAN_REQUEST_FORMAT",
    "PLAN_RESPONSE_FORMAT",
    "BATCH_REQUEST_FORMAT",
    "BATCH_RESPONSE_FORMAT",
    "VALIDATE_REQUEST_FORMAT",
    "VALIDATE_RESPONSE_FORMAT",
    "REPAIR_REQUEST_FORMAT",
    "REPAIR_RESPONSE_FORMAT",
    "JOB_FORMAT",
    "ERROR_FORMAT",
    "HEALTH_FORMAT",
    "SchemaError",
    "PlacementDelta",
    "PlanRequest",
    "ValidateRequest",
    "RepairRequest",
    "canonical_json",
    "error_payload",
    "plan_request_from_dict",
    "plan_request_to_dict",
    "batch_request_from_dict",
    "validate_request_from_dict",
    "validate_request_to_dict",
    "repair_request_from_dict",
    "repair_request_to_dict",
    "check_response_format",
]

PLAN_REQUEST_FORMAT = "rtsp-plan-request/1"
PLAN_RESPONSE_FORMAT = "rtsp-plan-response/1"
BATCH_REQUEST_FORMAT = "rtsp-plan-batch-request/1"
BATCH_RESPONSE_FORMAT = "rtsp-plan-batch-response/1"
VALIDATE_REQUEST_FORMAT = "rtsp-validate-request/1"
VALIDATE_RESPONSE_FORMAT = "rtsp-validate-response/1"
REPAIR_REQUEST_FORMAT = "rtsp-repair-request/1"
REPAIR_RESPONSE_FORMAT = "rtsp-repair-response/1"
JOB_FORMAT = "rtsp-job/1"
ERROR_FORMAT = "rtsp-error/1"
HEALTH_FORMAT = "rtsp-health/1"

#: Validation modes a request may ask for (``None`` means none).
VALIDATE_MODES = (None, "basic", "strict")

#: Request modes: ``sync`` blocks until the schedule is ready, ``async``
#: returns a 202 job handle to poll via ``GET /v1/jobs/{id}``.
PLAN_MODES = ("sync", "async")


class SchemaError(ConfigurationError):
    """A request payload failed schema validation (transport: 400)."""


def canonical_json(payload: Mapping[str, Any]) -> str:
    """The canonical byte representation of a JSON payload.

    Sorted keys, compact separators: two payloads are byte-identical
    exactly when this string matches. The differential tests (and the
    plan cache) compare responses through this function.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def error_payload(status: int, code: str, message: str) -> Dict[str, Any]:
    """The ``rtsp-error/1`` body every non-2xx response carries."""
    return {
        "format": ERROR_FORMAT,
        "status": int(status),
        "error": code,
        "message": message,
    }


# ----------------------------------------------------------------------
# strict field helpers
# ----------------------------------------------------------------------
def _require_mapping(data: Any, what: str) -> Mapping[str, Any]:
    if not isinstance(data, Mapping):
        raise SchemaError(f"{what} must be a JSON object, got {type(data).__name__}")
    return data


def _check_format(data: Mapping[str, Any], expected: str) -> None:
    got = data.get("format")
    if got != expected:
        raise SchemaError(f"expected format {expected!r}, got {got!r}")


def _reject_unknown(data: Mapping[str, Any], allowed: frozenset, what: str) -> None:
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise SchemaError(f"{what} has unknown keys: {', '.join(unknown)}")


def _opt_str(data: Mapping[str, Any], key: str, default: Optional[str]) -> Any:
    value = data.get(key, default)
    if value is not None and not isinstance(value, str):
        raise SchemaError(f"{key} must be a string, got {type(value).__name__}")
    return value


def _opt_int(data: Mapping[str, Any], key: str, default: Optional[int]) -> Any:
    value = data.get(key, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise SchemaError(f"{key} must be an integer, got {value!r}")
    return value


def _opt_number(data: Mapping[str, Any], key: str) -> Optional[float]:
    value = data.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SchemaError(f"{key} must be a number, got {value!r}")
    return float(value)


def _number_list(value: Any, key: str) -> List[float]:
    if not isinstance(value, list) or not value:
        raise SchemaError(f"{key} must be a non-empty list")
    out: List[float] = []
    for item in value:
        if isinstance(item, bool) or not isinstance(item, (int, float)):
            raise SchemaError(f"{key} entries must be numbers, got {item!r}")
        out.append(float(item))
    return out


def _binary_matrix(value: Any, key: str) -> List[List[int]]:
    if not isinstance(value, list) or not value:
        raise SchemaError(f"{key} must be a non-empty list of rows")
    rows: List[List[int]] = []
    width = None
    for row in value:
        if not isinstance(row, list):
            raise SchemaError(f"{key} rows must be lists")
        if width is None:
            width = len(row)
        elif len(row) != width:
            raise SchemaError(f"{key} rows must have equal length")
        cells: List[int] = []
        for cell in row:
            if isinstance(cell, bool) or cell not in (0, 1):
                raise SchemaError(f"{key} entries must be 0/1, got {cell!r}")
            cells.append(int(cell))
        rows.append(cells)
    return rows


# ----------------------------------------------------------------------
# plan requests
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlacementDelta:
    """A re-plan against a cost matrix the server already caches.

    ``topology`` is the canonical hash returned in earlier plan
    responses; the remaining fields replace the instance's sizes,
    capacities and placements. The server rebuilds the full
    :class:`~repro.model.instance.RtspInstance` (and re-validates it)
    from its cached matrix.
    """

    topology: str
    sizes: List[float]
    capacities: List[float]
    x_old: List[List[int]]
    x_new: List[List[int]]

    _KEYS = frozenset({"topology", "sizes", "capacities", "x_old", "x_new"})

    @classmethod
    def from_dict(cls, data: Any) -> "PlacementDelta":
        data = _require_mapping(data, "delta")
        _reject_unknown(data, cls._KEYS, "delta")
        topology = data.get("topology")
        if not isinstance(topology, str) or not topology:
            raise SchemaError("delta.topology must be a non-empty string")
        return cls(
            topology=topology,
            sizes=_number_list(data.get("sizes"), "delta.sizes"),
            capacities=_number_list(data.get("capacities"), "delta.capacities"),
            x_old=_binary_matrix(data.get("x_old"), "delta.x_old"),
            x_new=_binary_matrix(data.get("x_new"), "delta.x_new"),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "topology": self.topology,
            "sizes": self.sizes,
            "capacities": self.capacities,
            "x_old": self.x_old,
            "x_new": self.x_new,
        }

    def realize(self, costs: np.ndarray) -> RtspInstance:
        """Build (and fully re-validate) the instance against ``costs``."""
        try:
            return RtspInstance.create(
                sizes=np.asarray(self.sizes, dtype=np.float64),
                capacities=np.asarray(self.capacities, dtype=np.float64),
                costs=np.asarray(costs, dtype=np.float64),
                x_old=np.asarray(self.x_old, dtype=np.int8),
                x_new=np.asarray(self.x_new, dtype=np.int8),
            )
        except ConfigurationError:
            raise
        except ValueError as exc:
            raise SchemaError(f"delta does not form a valid instance: {exc}") from exc


@dataclass(frozen=True)
class PlanRequest:
    """One ``POST /v1/plan`` submission, parsed and type-checked."""

    pipeline: str = "GOLCF+H1+H2+OP1"
    seed: int = 0
    mode: str = "sync"
    shards: Optional[int] = None
    validate: Optional[str] = None
    timeout_seconds: Optional[float] = None
    instance: Optional[RtspInstance] = None
    delta: Optional[PlacementDelta] = None

    _KEYS = frozenset(
        {
            "format",
            "pipeline",
            "seed",
            "mode",
            "shards",
            "validate",
            "timeout_seconds",
            "instance",
            "delta",
        }
    )


def plan_request_from_dict(data: Any) -> PlanRequest:
    """Parse and strictly validate a ``rtsp-plan-request/1`` payload."""
    data = _require_mapping(data, "plan request")
    _check_format(data, PLAN_REQUEST_FORMAT)
    _reject_unknown(data, PlanRequest._KEYS, "plan request")
    pipeline = _opt_str(data, "pipeline", "GOLCF+H1+H2+OP1")
    if not pipeline:
        raise SchemaError("pipeline must be a non-empty string")
    seed = _opt_int(data, "seed", 0)
    mode = _opt_str(data, "mode", "sync")
    if mode not in PLAN_MODES:
        raise SchemaError(f"mode must be one of {PLAN_MODES}, got {mode!r}")
    shards = _opt_int(data, "shards", None)
    if shards is not None and shards < 1:
        raise SchemaError(f"shards must be >= 1, got {shards}")
    validate = _opt_str(data, "validate", None)
    if validate not in VALIDATE_MODES:
        raise SchemaError(
            f"validate must be one of {VALIDATE_MODES}, got {validate!r}"
        )
    timeout = _opt_number(data, "timeout_seconds")
    if timeout is not None and timeout <= 0:
        raise SchemaError(f"timeout_seconds must be > 0, got {timeout}")
    has_instance = data.get("instance") is not None
    has_delta = data.get("delta") is not None
    if has_instance == has_delta:
        raise SchemaError("exactly one of 'instance' and 'delta' is required")
    instance = None
    delta = None
    if has_instance:
        try:
            instance = instance_from_dict(
                _require_mapping(data["instance"], "instance")
            )
        except SchemaError:
            raise
        except ConfigurationError as exc:
            raise SchemaError(f"invalid embedded instance: {exc}") from exc
        except (TypeError, ValueError) as exc:
            raise SchemaError(f"invalid embedded instance: {exc}") from exc
    else:
        delta = PlacementDelta.from_dict(data["delta"])
    return PlanRequest(
        pipeline=pipeline,
        seed=int(seed) if seed is not None else 0,
        mode=mode,
        shards=shards,
        validate=validate,
        timeout_seconds=timeout,
        instance=instance,
        delta=delta,
    )


def plan_request_to_dict(request: PlanRequest) -> Dict[str, Any]:
    """Serialise a :class:`PlanRequest` back to its wire form."""
    payload: Dict[str, Any] = {
        "format": PLAN_REQUEST_FORMAT,
        "pipeline": request.pipeline,
        "seed": request.seed,
        "mode": request.mode,
    }
    if request.shards is not None:
        payload["shards"] = request.shards
    if request.validate is not None:
        payload["validate"] = request.validate
    if request.timeout_seconds is not None:
        payload["timeout_seconds"] = request.timeout_seconds
    if request.instance is not None:
        payload["instance"] = instance_to_dict(request.instance)
    if request.delta is not None:
        payload["delta"] = request.delta.to_dict()
    return payload


def batch_request_from_dict(data: Any) -> List[PlanRequest]:
    """Parse a ``rtsp-plan-batch-request/1`` into its plan requests.

    The whole batch is parsed up front: one malformed entry rejects the
    batch (the server must not plan half a submission).
    """
    data = _require_mapping(data, "batch request")
    _check_format(data, BATCH_REQUEST_FORMAT)
    _reject_unknown(data, frozenset({"format", "requests"}), "batch request")
    entries = data.get("requests")
    if not isinstance(entries, list) or not entries:
        raise SchemaError("batch request needs a non-empty 'requests' list")
    requests = []
    for index, entry in enumerate(entries):
        try:
            requests.append(plan_request_from_dict(entry))
        except SchemaError as exc:
            raise SchemaError(f"requests[{index}]: {exc}") from exc
    for request in requests:
        if request.mode != "sync":
            raise SchemaError("batch entries must use mode 'sync'")
    return requests


# ----------------------------------------------------------------------
# validate / repair requests
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ValidateRequest:
    """One ``POST /v1/validate`` submission."""

    instance: RtspInstance
    schedule: Dict[str, Any] = field(default_factory=dict)
    strict: bool = False

    _KEYS = frozenset({"format", "instance", "schedule", "strict"})


def validate_request_from_dict(data: Any) -> ValidateRequest:
    """Parse and strictly validate a ``rtsp-validate-request/1``."""
    data = _require_mapping(data, "validate request")
    _check_format(data, VALIDATE_REQUEST_FORMAT)
    _reject_unknown(data, ValidateRequest._KEYS, "validate request")
    strict = data.get("strict", False)
    if not isinstance(strict, bool):
        raise SchemaError(f"strict must be a boolean, got {strict!r}")
    try:
        instance = instance_from_dict(
            _require_mapping(data.get("instance"), "instance")
        )
    except SchemaError:
        raise
    except ConfigurationError as exc:
        raise SchemaError(f"invalid embedded instance: {exc}") from exc
    except (TypeError, ValueError) as exc:
        raise SchemaError(f"invalid embedded instance: {exc}") from exc
    schedule = _require_mapping(data.get("schedule"), "schedule")
    return ValidateRequest(instance=instance, schedule=dict(schedule), strict=strict)


def validate_request_to_dict(request: ValidateRequest) -> Dict[str, Any]:
    """Serialise a :class:`ValidateRequest` back to its wire form."""
    return {
        "format": VALIDATE_REQUEST_FORMAT,
        "instance": instance_to_dict(request.instance),
        "schedule": request.schedule,
        "strict": request.strict,
    }


@dataclass(frozen=True)
class RepairRequest:
    """One ``POST /v1/repair`` submission."""

    instance: RtspInstance
    fault_plan: Dict[str, Any] = field(default_factory=dict)
    pipeline: str = "GOLCF+H1+H2"
    seed: int = 0
    validate: Optional[str] = "basic"

    _KEYS = frozenset(
        {"format", "instance", "fault_plan", "pipeline", "seed", "validate"}
    )


def repair_request_from_dict(data: Any) -> RepairRequest:
    """Parse and strictly validate a ``rtsp-repair-request/1``."""
    data = _require_mapping(data, "repair request")
    _check_format(data, REPAIR_REQUEST_FORMAT)
    _reject_unknown(data, RepairRequest._KEYS, "repair request")
    pipeline = _opt_str(data, "pipeline", "GOLCF+H1+H2")
    if not pipeline:
        raise SchemaError("pipeline must be a non-empty string")
    seed = _opt_int(data, "seed", 0)
    validate = _opt_str(data, "validate", "basic")
    if validate not in VALIDATE_MODES:
        raise SchemaError(
            f"validate must be one of {VALIDATE_MODES}, got {validate!r}"
        )
    try:
        instance = instance_from_dict(
            _require_mapping(data.get("instance"), "instance")
        )
    except SchemaError:
        raise
    except ConfigurationError as exc:
        raise SchemaError(f"invalid embedded instance: {exc}") from exc
    except (TypeError, ValueError) as exc:
        raise SchemaError(f"invalid embedded instance: {exc}") from exc
    fault_plan = _require_mapping(data.get("fault_plan"), "fault_plan")
    return RepairRequest(
        instance=instance,
        fault_plan=dict(fault_plan),
        pipeline=pipeline,
        seed=int(seed) if seed is not None else 0,
        validate=validate,
    )


def repair_request_to_dict(request: RepairRequest) -> Dict[str, Any]:
    """Serialise a :class:`RepairRequest` back to its wire form."""
    return {
        "format": REPAIR_REQUEST_FORMAT,
        "instance": instance_to_dict(request.instance),
        "fault_plan": request.fault_plan,
        "pipeline": request.pipeline,
        "seed": request.seed,
        "validate": request.validate,
    }


# ----------------------------------------------------------------------
# response checking (used by clients, tests and the bench harness)
# ----------------------------------------------------------------------
_RESPONSE_REQUIRED: Dict[str, frozenset] = {
    PLAN_RESPONSE_FORMAT: frozenset(
        {
            "format",
            "job_id",
            "pipeline",
            "seed",
            "topology",
            "fingerprint",
            "cache_hit",
            "cost",
            "dummy_transfers",
            "num_actions",
            "schedule",
            "elapsed_seconds",
        }
    ),
    BATCH_RESPONSE_FORMAT: frozenset({"format", "responses"}),
    VALIDATE_RESPONSE_FORMAT: frozenset({"format", "ok", "strict", "violations"}),
    REPAIR_RESPONSE_FORMAT: frozenset(
        {
            "format",
            "completed",
            "rounds",
            "replans",
            "makespan",
            "total_cost",
            "wasted_cost",
            "dummy_transfers",
            "fault_free_cost",
            "fault_free_makespan",
            "backoff_total",
            "applied_schedule",
        }
    ),
    JOB_FORMAT: frozenset({"format", "id", "kind", "state", "events", "next_seq"}),
    HEALTH_FORMAT: frozenset({"format", "status", "jobs", "cache", "uptime_seconds"}),
    ERROR_FORMAT: frozenset({"format", "status", "error", "message"}),
}


def check_response_format(payload: Any, expected: str) -> Dict[str, Any]:
    """Assert ``payload`` is a well-formed response of kind ``expected``.

    Returns the payload (typed as a dict) so callers can chain; raises
    :class:`SchemaError` listing what is missing otherwise.
    """
    payload = _require_mapping(payload, "response")
    _check_format(payload, expected)
    required = _RESPONSE_REQUIRED.get(expected)
    if required is None:
        raise SchemaError(f"unknown response format {expected!r}")
    missing = sorted(required - set(payload))
    if missing:
        raise SchemaError(
            f"{expected} response missing keys: {', '.join(missing)}"
        )
    return dict(payload)
