"""Stdlib HTTP transport for :class:`~repro.serve.service.PlanningService`.

A :class:`ThreadingHTTPServer` (one daemon thread per connection)
routing to the transport-independent service — no dependencies beyond
the standard library, per the repository's no-new-hard-deps rule.

Routes::

    POST   /v1/plan         rtsp-plan-request/1 | rtsp-plan-batch-request/1
    POST   /v1/validate     rtsp-validate-request/1
    POST   /v1/repair       rtsp-repair-request/1
    GET    /v1/jobs/{id}    rtsp-job/1 (?since=N for incremental events)
    DELETE /v1/jobs/{id}    request cancellation
    GET    /healthz         rtsp-health/1
    GET    /metrics         Prometheus text exposition (repro.obs.export)

Every non-2xx body is an ``rtsp-error/1`` JSON object. Connection
handling is HTTP/1.1 with explicit ``Content-Length`` on every
response, so keep-alive clients (the bench harness's closed-loop
workers) can pipeline requests over one socket.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.serve.schemas import error_payload
from repro.serve.service import PlanningService, ServeConfig

__all__ = ["PlanningHTTPServer", "ServerHandle", "make_server", "run_server"]


class PlanningHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that owns a :class:`PlanningService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service: PlanningService) -> None:
        super().__init__(address, _Handler)
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    server_version = "rtsp-serve/1"
    protocol_version = "HTTP/1.1"

    # `self.server` is always a PlanningHTTPServer here.
    @property
    def service(self) -> PlanningService:
        return self.server.service  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:
        """Silence per-request stderr logging; /metrics is the log."""

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, code: str, message: str) -> None:
        self._send_json(status, error_payload(status, code, message))

    def _read_json(self) -> Optional[Any]:
        """The request body as parsed JSON, or ``None`` after an error
        response has already been sent."""
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            self._send_error_json(411, "length-required",
                                  "Content-Length header is required")
            return None
        try:
            length = int(length_header)
        except ValueError:
            self._send_error_json(400, "bad-request",
                                  f"bad Content-Length {length_header!r}")
            return None
        if length < 0 or length > self.service.config.max_body_bytes:
            self._send_error_json(
                413,
                "payload-too-large",
                f"body of {length} bytes exceeds the "
                f"{self.service.config.max_body_bytes}-byte limit",
            )
            return None
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send_error_json(400, "bad-json",
                                  f"request body is not valid JSON: {exc}")
            return None

    def _job_route(self, path: str) -> Optional[str]:
        """The job id for ``/v1/jobs/{id}`` paths, else ``None``."""
        prefix = "/v1/jobs/"
        if path.startswith(prefix):
            job_id = path[len(prefix):]
            if job_id and "/" not in job_id:
                return job_id
        return None

    # ------------------------------------------------------------------
    # methods
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        parts = urlsplit(self.path)
        path = parts.path
        if path == "/healthz":
            status, payload = self.service.healthz()
            self._send_json(status, payload)
            return
        if path == "/metrics":
            text = self.service.metrics_text()
            self._send_text(200, text, "text/plain; version=0.0.4")
            return
        job_id = self._job_route(path)
        if job_id is not None:
            since = 0
            raw_since = parse_qs(parts.query).get("since")
            if raw_since:
                try:
                    since = int(raw_since[0])
                except ValueError:
                    self._send_error_json(
                        400, "bad-request",
                        f"since must be an integer, got {raw_since[0]!r}",
                    )
                    return
            status, payload = self.service.job(job_id, since=since)
            self._send_json(status, payload)
            return
        self._send_error_json(404, "not-found", f"no route for GET {path}")

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = urlsplit(self.path).path
        handlers = {
            "/v1/plan": self.service.plan,
            "/v1/validate": self.service.validate,
            "/v1/repair": self.service.repair,
        }
        handler = handlers.get(path)
        if handler is None:
            if path in ("/healthz", "/metrics") or self._job_route(path):
                self._send_error_json(405, "method-not-allowed",
                                      f"POST not allowed for {path}")
            else:
                self._send_error_json(404, "not-found",
                                      f"no route for POST {path}")
            return
        data = self._read_json()
        if data is None:
            return
        status, payload = handler(data)
        self._send_json(status, payload)

    def do_DELETE(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = urlsplit(self.path).path
        job_id = self._job_route(path)
        if job_id is None:
            self._send_error_json(404, "not-found",
                                  f"no route for DELETE {path}")
            return
        status, payload = self.service.cancel_job(job_id)
        self._send_json(status, payload)


class ServerHandle:
    """A running server plus the thread driving ``serve_forever``.

    Use as a context manager (the bench harness and the tests do)::

        with ServerHandle.start(service) as handle:
            client = ServeClient(handle.url)
    """

    def __init__(self, server: PlanningHTTPServer, thread: threading.Thread):
        self.server = server
        self.thread = thread

    @classmethod
    def start(
        cls,
        service: Optional[PlanningService] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        config: Optional[ServeConfig] = None,
    ) -> "ServerHandle":
        """Boot a server on ``host:port`` (0 picks a free port)."""
        if service is None:
            service = PlanningService(config)
        server = make_server(service, host=host, port=port)
        thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="rtsp-serve",
            daemon=True,
        )
        thread.start()
        return cls(server, thread)

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self.server.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    @property
    def service(self) -> PlanningService:
        return self.server.service

    def stop(self) -> None:
        """Stop serving, join the thread, shut the service down."""
        self.server.shutdown()
        self.thread.join(timeout=5.0)
        self.server.server_close()
        self.server.service.close()

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def make_server(
    service: PlanningService, host: str = "127.0.0.1", port: int = 0
) -> PlanningHTTPServer:
    """Bind (but do not run) a planning server."""
    return PlanningHTTPServer((host, port), service)


def run_server(
    host: str = "127.0.0.1",
    port: int = 8323,
    config: Optional[ServeConfig] = None,
    quiet: bool = False,
) -> int:
    """Blocking entry point used by ``rtsp-tool serve``."""
    service = PlanningService(config)
    server = make_server(service, host=host, port=port)
    bound_host, bound_port = server.server_address[:2]
    if not quiet:
        print(f"rtsp-serve listening on http://{bound_host}:{bound_port}")
        print("endpoints: POST /v1/plan /v1/validate /v1/repair | "
              "GET /v1/jobs/{id} /healthz /metrics")
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        if not quiet:
            print("shutting down")
    finally:
        server.server_close()
        service.close()
    return 0
