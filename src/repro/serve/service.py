"""Transport-independent planning service.

:class:`PlanningService` is everything behind the HTTP endpoints with
the sockets stripped away: it parses versioned payloads
(:mod:`repro.serve.schemas`), runs plans on a bounded
:class:`~repro.serve.jobs.JobQueue`, caches by topology hash
(:mod:`repro.serve.cache`) and answers ``(status, payload)`` tuples.
The HTTP layer (:mod:`repro.serve.server`) and the tests drive the
same object, so every 4xx/5xx path is testable without a socket.

Determinism contract: a served schedule is **byte-identical** to what
``build_pipeline(spec).run(instance, rng=seed)`` produces in-process
for the same ``(instance, pipeline, seed)`` — cached or not, sharded
or not (sharded planning is itself byte-identical to direct planning
per part-count, see :mod:`repro.shard`). The differential tests in
``tests/serve/`` enforce this.

Deep progress: at most one running job at a time additionally installs
its progress stream as the process-global observability context (the
context is deliberately a plain global, see :mod:`repro.obs.context`),
so builder-wave heartbeats and shard completions flow into the job's
``rtsp-events/1`` stream — and every such event doubles as a
cancellation/timeout checkpoint. Concurrent jobs still plan correctly;
they just report coarser (job-level) progress.
"""

from __future__ import annotations

import threading
import time
from contextlib import ExitStack
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.analysis.metrics import schedule_stats
from repro.core.pipeline import build_pipeline
from repro.io import fault_plan_from_dict, schedule_from_dict, schedule_to_dict
from repro.model.instance import RtspInstance
from repro.obs.context import use_events, use_metrics
from repro.obs.events import EventStream
from repro.obs.export import prometheus_text
from repro.obs.metrics import MetricsRegistry
from repro.serve.cache import (
    PlanCache,
    TopologyStore,
    instance_fingerprint,
)
from repro.serve.jobs import (
    DONE,
    JobCancelled,
    JobContext,
    JobNotFound,
    JobQueue,
    JobTimeout,
    QueueFull,
)
from repro.serve.schemas import (
    BATCH_REQUEST_FORMAT,
    BATCH_RESPONSE_FORMAT,
    HEALTH_FORMAT,
    PLAN_RESPONSE_FORMAT,
    REPAIR_RESPONSE_FORMAT,
    VALIDATE_RESPONSE_FORMAT,
    PlanRequest,
    SchemaError,
    error_payload,
    plan_request_from_dict,
    repair_request_from_dict,
    validate_request_from_dict,
)
from repro.util.errors import (
    ConfigurationError,
    InfeasibleInstanceError,
    InvalidActionError,
    InvalidScheduleError,
    RepairExhaustedError,
    RtspError,
)

__all__ = ["ServeConfig", "PlanningService", "UnknownTopologyError"]


class UnknownTopologyError(RtspError):
    """A delta referenced a topology hash the server does not hold."""


@dataclass(frozen=True)
class ServeConfig:
    """Tunables for one :class:`PlanningService`."""

    #: Worker threads draining the job queue (bounds plan concurrency).
    workers: int = 2
    #: Back-pressure bound: submissions beyond this return 429.
    max_pending: int = 64
    #: Finished plan responses kept for replay.
    plan_cache_entries: int = 128
    #: Cost matrices kept for delta re-planning.
    topology_entries: int = 32
    #: Default per-job timeout (seconds); ``None`` means unbounded.
    default_timeout: Optional[float] = None
    #: Reject request bodies larger than this (transport-enforced).
    max_body_bytes: int = 64 * 1024 * 1024
    #: Allow one job at a time to install deep (builder-level) progress.
    deep_progress: bool = True
    #: Cost-matrix spill policy (see :class:`CostMatrixStore`).
    spill: object = "auto"


def _status_for(exc: BaseException) -> Tuple[int, str]:
    """Map an exception to ``(http status, stable error code)``."""
    if isinstance(exc, SchemaError):
        return 400, "bad-request"
    if isinstance(exc, UnknownTopologyError):
        return 404, "unknown-topology"
    if isinstance(exc, JobNotFound):
        return 404, "unknown-job"
    if isinstance(exc, QueueFull):
        return 429, "queue-full"
    if isinstance(exc, JobTimeout):
        return 504, "timeout"
    if isinstance(exc, JobCancelled):
        return 409, "cancelled"
    if isinstance(exc, InfeasibleInstanceError):
        return 422, "infeasible-instance"
    if isinstance(exc, (InvalidScheduleError, InvalidActionError)):
        return 422, "invalid-schedule"
    if isinstance(exc, RepairExhaustedError):
        return 422, "repair-exhausted"
    if isinstance(exc, ConfigurationError):
        return 400, "bad-request"
    if isinstance(exc, RtspError):
        return 422, "unprocessable"
    return 500, "internal-error"


class PlanningService:
    """The planning endpoints as plain methods returning (status, payload)."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.queue = JobQueue(
            workers=self.config.workers, max_pending=self.config.max_pending
        )
        self.plan_cache = PlanCache(max_entries=self.config.plan_cache_entries)
        self.topologies = TopologyStore(
            max_entries=self.config.topology_entries, spill=self.config.spill
        )
        self.metrics = MetricsRegistry()
        self._mlock = threading.Lock()
        self._deep_lock = threading.Lock()
        self._started = time.monotonic()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the queue down and drop cached matrices."""
        self.queue.shutdown()
        self.topologies.close()

    def __enter__(self) -> "PlanningService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # metrics helpers (serve-side instruments share the registry with
    # builder-side deep instrumentation; guard our own bumps)
    # ------------------------------------------------------------------
    def _count(self, name: str, n: float = 1) -> None:
        with self._mlock:
            self.metrics.counter(name).inc(n)

    def _observe_ms(self, name: str, seconds: float) -> None:
        with self._mlock:
            self.metrics.histogram(name).observe(seconds * 1000.0)

    # ------------------------------------------------------------------
    # POST /v1/plan
    # ------------------------------------------------------------------
    def plan(self, data: Any) -> Tuple[int, Dict[str, Any]]:
        """Handle one plan (or batch) submission."""
        self._count("serve.requests.plan")
        try:
            if (
                isinstance(data, Mapping)
                and data.get("format") == BATCH_REQUEST_FORMAT
            ):
                return self._plan_batch(data)
            request = plan_request_from_dict(data)
            return self._plan_one(request)
        except BaseException as exc:  # noqa: BLE001 - mapped to a status
            return self._error(exc)

    def _plan_batch(self, data: Mapping[str, Any]) -> Tuple[int, Dict[str, Any]]:
        from repro.serve.schemas import batch_request_from_dict

        requests = batch_request_from_dict(data)
        responses: List[Dict[str, Any]] = []
        worst = 200
        for request in requests:
            try:
                status, payload = self._plan_one(request)
            except BaseException as exc:  # noqa: BLE001 - mapped per entry
                status, payload = self._error(exc)
            responses.append({"status": status, "response": payload})
            worst = max(worst, status)
        # The batch itself succeeded if it parsed; per-entry statuses
        # ride inside. 200 iff every entry planned.
        status = 200 if worst < 300 else 207
        return status, {"format": BATCH_RESPONSE_FORMAT, "responses": responses}

    def _plan_one(self, request: PlanRequest) -> Tuple[int, Dict[str, Any]]:
        started = time.perf_counter()
        instance, topo_key = self._resolve_instance(request)
        fingerprint = instance_fingerprint(instance)
        key = PlanCache.key(
            fingerprint, request.pipeline, request.seed, request.shards
        )
        # Fail fast on a bad pipeline spec (400) before queueing work.
        build_pipeline(request.pipeline)
        if request.mode == "sync":
            cached = self._cache_lookup(key, started)
            if cached is not None:
                return 200, cached
        timeout = (
            request.timeout_seconds
            if request.timeout_seconds is not None
            else self.config.default_timeout
        )
        job = self.queue.submit(
            lambda ctx: self._run_plan(
                ctx, request, instance, fingerprint, topo_key, key
            ),
            kind="plan",
            timeout_seconds=timeout,
            meta={"pipeline": request.pipeline, "seed": request.seed},
        )
        self._count("serve.jobs.submitted")
        if request.mode == "async":
            return 202, job.snapshot()
        job.wait()
        self._count(f"serve.jobs.{job.state}")
        if job.state == DONE:
            self._observe_ms(
                "serve.plan.millis", time.perf_counter() - started
            )
            return 200, job.result
        assert job.error is not None
        return self._error(job.error)

    def _cache_lookup(
        self, key: Tuple, started: float
    ) -> Optional[Dict[str, Any]]:
        payload = self.plan_cache.get(key)
        if payload is None:
            self._count("serve.cache.plan.misses")
            return None
        self._count("serve.cache.plan.hits")
        payload["cache_hit"] = True
        payload["elapsed_seconds"] = time.perf_counter() - started
        self._observe_ms("serve.plan.millis", payload["elapsed_seconds"])
        return payload

    def _resolve_instance(
        self, request: PlanRequest
    ) -> Tuple[RtspInstance, str]:
        """The full instance plus its (registered) topology hash."""
        if request.instance is not None:
            instance = request.instance
            topo_key, _ = self.topologies.register(instance.costs)
            return instance, topo_key
        assert request.delta is not None
        costs = self.topologies.get(request.delta.topology)
        if costs is None:
            raise UnknownTopologyError(
                f"no cached cost matrix for {request.delta.topology!r}; "
                "submit a full instance first"
            )
        instance = request.delta.realize(costs)
        return instance, request.delta.topology

    def _run_plan(
        self,
        ctx: JobContext,
        request: PlanRequest,
        instance: RtspInstance,
        fingerprint: str,
        topo_key: str,
        key: Tuple,
    ) -> Dict[str, Any]:
        started = time.perf_counter()
        # Async submissions race sync ones for the same key; replay a
        # response that landed while this job sat in the queue.
        payload = self.plan_cache.get(key)
        if payload is not None:
            self._count("serve.cache.plan.hits")
            ctx.emit("plan.cached", fingerprint=fingerprint)
            payload["cache_hit"] = True
            payload["elapsed_seconds"] = time.perf_counter() - started
            return payload
        self._count("serve.cache.plan.misses")
        ctx.emit(
            "plan.start",
            pipeline=request.pipeline,
            seed=request.seed,
            servers=instance.num_servers,
            objects=instance.num_objects,
            shards=request.shards or 0,
        )
        schedule = self._build_schedule(ctx, request, instance)
        ctx.check()
        self._validate_schedule(request.validate, instance, schedule)
        stats = schedule_stats(schedule, instance)
        elapsed = time.perf_counter() - started
        ctx.emit(
            "plan.done",
            actions=stats.num_actions,
            cost=stats.cost,
            dummy_transfers=stats.num_dummy_transfers,
        )
        payload = {
            "format": PLAN_RESPONSE_FORMAT,
            "job_id": ctx.job.id,
            "pipeline": request.pipeline,
            "seed": request.seed,
            "topology": topo_key,
            "fingerprint": fingerprint,
            "cache_hit": False,
            "cost": stats.cost,
            "dummy_transfers": stats.num_dummy_transfers,
            "num_actions": stats.num_actions,
            "schedule": schedule_to_dict(schedule),
            "elapsed_seconds": elapsed,
        }
        if request.shards is not None:
            payload["shards"] = request.shards
        self.plan_cache.put(key, payload)
        return payload

    def _build_schedule(
        self, ctx: JobContext, request: PlanRequest, instance: RtspInstance
    ):
        deep = self.config.deep_progress and self._deep_lock.acquire(
            blocking=False
        )
        try:
            with ExitStack() as stack:
                if deep:
                    # Builder heartbeats land on the job stream and act
                    # as cancellation checkpoints. One deep job at a
                    # time: the obs context is process-global.
                    def _forward(event: Any) -> None:
                        ctx.job.record(event.name, **event.attrs)
                        ctx.check()

                    deep_stream = EventStream(
                        meta={"job": ctx.job.id}, on_event=_forward
                    )
                    stack.enter_context(use_events(deep_stream))
                    stack.enter_context(use_metrics(self.metrics))
                if request.shards is not None:
                    from repro.shard import plan_sharded

                    plan = plan_sharded(
                        instance,
                        request.pipeline,
                        shards=request.shards,
                        workers=1,
                        rng=request.seed,
                        mmap_costs=False,
                    )
                    return plan.schedule
                pipeline = build_pipeline(request.pipeline)
                return pipeline.run(instance, rng=request.seed)
        finally:
            if deep:
                self._deep_lock.release()

    @staticmethod
    def _validate_schedule(mode: Optional[str], instance, schedule) -> None:
        if mode is None:
            return
        if mode == "basic":
            report = schedule.validate(instance)
            if not report.ok:
                raise InvalidScheduleError(report.message, report.position)
            return
        from repro.exact.validate import check_invariants

        strict = check_invariants(instance, schedule)
        if not strict.ok:
            raise InvalidScheduleError(strict.summary())

    # ------------------------------------------------------------------
    # POST /v1/validate
    # ------------------------------------------------------------------
    def validate(self, data: Any) -> Tuple[int, Dict[str, Any]]:
        """Replay a schedule against an instance; optionally strict."""
        self._count("serve.requests.validate")
        try:
            request = validate_request_from_dict(data)
            schedule = schedule_from_dict(request.schedule)
        except BaseException as exc:  # noqa: BLE001 - mapped to a status
            return self._error(exc)
        report = schedule.validate(request.instance)
        violations: List[Dict[str, Any]] = []
        if not report.ok:
            violations.append(
                {
                    "rule": "model-replay",
                    "position": report.position,
                    "message": report.message,
                }
            )
        payload: Dict[str, Any] = {
            "format": VALIDATE_RESPONSE_FORMAT,
            "ok": report.ok,
            "strict": request.strict,
            "cost": report.cost,
            "dummy_transfers": report.dummy_transfers,
            "num_actions": len(schedule),
            "violations": violations,
        }
        if request.strict and report.ok:
            from repro.exact.validate import check_invariants

            strict_report = check_invariants(request.instance, schedule)
            payload["ok"] = strict_report.ok
            payload["cost"] = strict_report.cost
            payload["dummy_transfers"] = strict_report.dummy_transfers
            payload["violations"] = [
                {
                    "rule": v.rule,
                    "position": v.position,
                    "message": v.message,
                }
                for v in strict_report.violations
            ]
        return 200, payload

    # ------------------------------------------------------------------
    # POST /v1/repair
    # ------------------------------------------------------------------
    def repair(self, data: Any) -> Tuple[int, Dict[str, Any]]:
        """Execute a faulted transition with online repair."""
        self._count("serve.requests.repair")
        try:
            request = repair_request_from_dict(data)
            plan = fault_plan_from_dict(request.fault_plan)
            build_pipeline(request.pipeline)
        except BaseException as exc:  # noqa: BLE001 - mapped to a status
            return self._error(exc)
        job = None
        try:
            job = self.queue.submit(
                lambda ctx: self._run_repair(ctx, request, plan),
                kind="repair",
                timeout_seconds=self.config.default_timeout,
                meta={"pipeline": request.pipeline},
            )
            self._count("serve.jobs.submitted")
            job.wait()
        except BaseException as exc:  # noqa: BLE001 - mapped to a status
            return self._error(exc)
        self._count(f"serve.jobs.{job.state}")
        if job.state == DONE:
            return 200, job.result
        assert job.error is not None
        return self._error(job.error)

    def _run_repair(self, ctx: JobContext, request, plan) -> Dict[str, Any]:
        from repro.robust import RepairEngine

        ctx.emit("repair.start", pipeline=request.pipeline, seed=request.seed)
        engine = RepairEngine(request.pipeline)
        validate = request.validate if request.validate is not None else False
        report = engine.execute(
            request.instance, plan, rng=request.seed, validate=validate
        )
        ctx.emit(
            "repair.done", rounds=report.rounds, completed=report.completed
        )
        return {
            "format": REPAIR_RESPONSE_FORMAT,
            "completed": report.completed,
            "rounds": report.rounds,
            "replans": report.replans,
            "makespan": report.makespan,
            "total_cost": report.total_cost,
            "wasted_cost": report.wasted_cost,
            "dummy_transfers": report.dummy_transfers,
            "fault_free_cost": report.fault_free_cost,
            "fault_free_makespan": report.fault_free_makespan,
            "backoff_total": report.backoff_total,
            "applied_schedule": schedule_to_dict(report.applied_schedule()),
        }

    # ------------------------------------------------------------------
    # GET /v1/jobs/{id} and DELETE /v1/jobs/{id}
    # ------------------------------------------------------------------
    def job(self, job_id: str, since: int = 0) -> Tuple[int, Dict[str, Any]]:
        """The ``rtsp-job/1`` status view with an event cursor."""
        self._count("serve.requests.jobs")
        try:
            job = self.queue.get(job_id)
        except JobNotFound as exc:
            return self._error(exc)
        return 200, job.snapshot(since=since)

    def cancel_job(self, job_id: str) -> Tuple[int, Dict[str, Any]]:
        """Request cancellation; returns the (possibly updated) view."""
        self._count("serve.requests.jobs")
        try:
            job = self.queue.get(job_id)
            accepted = self.queue.cancel(job_id)
        except JobNotFound as exc:
            return self._error(exc)
        payload = job.snapshot()
        payload["cancel_accepted"] = accepted
        return (202 if accepted else 409), payload

    # ------------------------------------------------------------------
    # GET /healthz and GET /metrics
    # ------------------------------------------------------------------
    def healthz(self) -> Tuple[int, Dict[str, Any]]:
        """Liveness plus queue/cache occupancy."""
        self._count("serve.requests.health")
        return 200, {
            "format": HEALTH_FORMAT,
            "status": "ok",
            "jobs": self.queue.counts(),
            "cache": {
                "plan": self.plan_cache.stats(),
                "topology": self.topologies.stats(),
            },
            "uptime_seconds": time.monotonic() - self._started,
        }

    def metrics_text(self) -> str:
        """Prometheus text exposition of the service registry."""
        self._count("serve.requests.metrics")
        # A deep-instrumented job may be registering instruments while
        # we snapshot; registries are plain dicts, so retry the rare
        # changed-size race instead of locking the builder hot path.
        for _ in range(5):
            try:
                snapshot = self.metrics.snapshot()
                break
            except RuntimeError:  # pragma: no cover - timing-dependent
                continue
        else:  # pragma: no cover - timing-dependent
            snapshot = self.metrics.snapshot()
        return prometheus_text(snapshot)

    # ------------------------------------------------------------------
    # shared error path
    # ------------------------------------------------------------------
    def _error(self, exc: BaseException) -> Tuple[int, Dict[str, Any]]:
        status, code = _status_for(exc)
        if status >= 500:
            self._count("serve.responses.5xx")
        else:
            self._count("serve.responses.4xx")
        return status, error_payload(status, code, str(exc))
