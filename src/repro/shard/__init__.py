"""Sharded fleet-scale planning.

Partition an :class:`~repro.model.instance.RtspInstance` into
independently plannable parts, plan them in parallel on a deterministic
fork pool, stitch the per-part schedules into one global schedule, and
verify it with the exact invariant oracle. Entry point:
:func:`plan_sharded`; see :mod:`repro.shard.planner` for the
determinism contract.
"""

from repro.shard.compose import compose_instances, component_slices
from repro.shard.mmapcost import MMAP_DEFAULT_BYTES, CostMatrixStore
from repro.shard.partition import (
    Partition,
    ShardPart,
    pack_parts,
    partition_by_object_family,
    partition_by_zone,
    partition_connected,
    resolve_partition,
)
from repro.shard.planner import ShardStats, ShardedPlan, plan_sharded
from repro.shard.pool import WorkQueue, fork_available

__all__ = [
    "CostMatrixStore",
    "MMAP_DEFAULT_BYTES",
    "Partition",
    "ShardPart",
    "ShardStats",
    "ShardedPlan",
    "WorkQueue",
    "component_slices",
    "compose_instances",
    "fork_available",
    "pack_parts",
    "partition_by_object_family",
    "partition_by_zone",
    "partition_connected",
    "plan_sharded",
    "resolve_partition",
]
