"""Composing disconnected instances into one multi-component instance.

Sharding tests and benchmarks need instances whose placement interaction
graph has several connected components with known structure.
:func:`compose_instances` builds one by block-diagonal concatenation of
smaller instances: servers and objects are renumbered block by block,
``X_old``/``X_new`` become block-diagonal, and cross-block cost entries
are filled with a constant (they are never exercised by an exact
partition — no object has cells in two blocks — but keep the matrix
dense and valid).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.model.instance import RtspInstance
from repro.util.errors import ConfigurationError

__all__ = ["compose_instances", "component_slices"]


def compose_instances(
    instances: Sequence[RtspInstance],
    cross_cost: float = 1.0,
    dummy_cost: float | None = None,
) -> RtspInstance:
    """Block-diagonal composition of ``instances`` into one instance.

    Block ``b``'s servers occupy the next ``M_b`` global indices (in
    input order) and likewise its objects, so
    :func:`repro.analysis.transfer_graph.placement_components` recovers
    exactly the blocks (assuming each input is itself connected).
    ``cross_cost`` fills cost entries between servers of different
    blocks; ``dummy_cost`` sets the dummy row/column (default: the
    maximum of the inputs' dummy costs, so dummy transfers stay as
    unattractive as in the originals).
    """
    if not instances:
        raise ConfigurationError("compose_instances needs at least one instance")
    m_total = sum(inst.num_servers for inst in instances)
    n_total = sum(inst.num_objects for inst in instances)
    sizes = np.concatenate([inst.sizes for inst in instances])
    capacities = np.concatenate([inst.capacities for inst in instances])
    x_old = np.zeros((m_total, n_total), dtype=np.int8)
    x_new = np.zeros((m_total, n_total), dtype=np.int8)
    costs = np.full((m_total + 1, m_total + 1), float(cross_cost))
    if dummy_cost is None:
        dummy_cost = max(inst.dummy_cost for inst in instances)
    costs[m_total, :] = float(dummy_cost)
    costs[:, m_total] = float(dummy_cost)
    server_base = 0
    object_base = 0
    for inst in instances:
        m, n = inst.num_servers, inst.num_objects
        x_old[server_base:server_base + m, object_base:object_base + n] = (
            inst.x_old
        )
        x_new[server_base:server_base + m, object_base:object_base + n] = (
            inst.x_new
        )
        costs[server_base:server_base + m, server_base:server_base + m] = (
            inst.costs[:m, :m]
        )
        server_base += m
        object_base += n
    np.fill_diagonal(costs, 0.0)
    costs[m_total, m_total] = 0.0
    return RtspInstance.create(
        sizes=sizes,
        capacities=capacities,
        costs=costs,
        x_old=x_old,
        x_new=x_new,
    )


def component_slices(
    instances: Sequence[RtspInstance],
) -> List[Tuple[List[int], List[int]]]:
    """The (servers, objects) global index lists per composed block."""
    slices = []
    server_base = 0
    object_base = 0
    for inst in instances:
        slices.append(
            (
                list(range(server_base, server_base + inst.num_servers)),
                list(range(object_base, object_base + inst.num_objects)),
            )
        )
        server_base += inst.num_servers
        object_base += inst.num_objects
    return slices
