"""Memory-mapped cost-matrix slicing for fleet-scale instances.

The extended cost matrix is the one ``O(M^2)`` input of an
:class:`~repro.model.instance.RtspInstance`; at fleet scale (``M`` in
the tens of thousands) it dwarfs the placement matrices and must not be
copied per shard or pickled per pool task. :class:`CostMatrixStore`
spills the matrix once to an ``.npy`` file and answers shard slices
from a read-only memmap: a slice touches only the shard's rows, the
file is shared page-cache-backed across fork workers, and the parent's
in-memory matrix can be dropped entirely.
"""

from __future__ import annotations

import os
import tempfile
from typing import Optional, Sequence

import numpy as np

__all__ = ["CostMatrixStore", "MMAP_DEFAULT_BYTES"]

#: Matrices at or above this many bytes are worth spilling (64 MiB —
#: roughly ``M >= 2900`` at float64).
MMAP_DEFAULT_BYTES = 64 * 1024 * 1024


class CostMatrixStore:
    """A cost matrix served from RAM or from a read-only memmap file.

    Build one with :meth:`from_matrix`; ``spill=True`` forces the memmap
    path, ``False`` keeps the array in RAM, ``"auto"`` (default) spills
    only when the matrix crosses ``threshold_bytes``. Use as a context
    manager (or call :meth:`close`) so the backing file is unlinked.
    """

    def __init__(
        self, matrix: np.ndarray, path: Optional[str] = None
    ) -> None:
        self._matrix = matrix
        self._path = path

    @classmethod
    def from_matrix(
        cls,
        matrix: np.ndarray,
        spill: object = "auto",
        threshold_bytes: int = MMAP_DEFAULT_BYTES,
    ) -> "CostMatrixStore":
        """Wrap ``matrix``, spilling it to a memmap file when asked.

        The spill file is written once with :func:`numpy.save` and
        reopened with ``mmap_mode="r"``, so subsequent slicing performs
        page-granular reads instead of holding the full matrix.
        """
        if spill not in (True, False, "auto"):
            raise ValueError(f"spill must be True/False/'auto', got {spill!r}")
        want = spill is True or (
            spill == "auto" and matrix.nbytes >= threshold_bytes
        )
        if not want:
            return cls(matrix)
        fd, path = tempfile.mkstemp(prefix="rtsp-costs-", suffix=".npy")
        try:
            with os.fdopen(fd, "wb") as fh:
                np.save(fh, np.ascontiguousarray(matrix))
            mapped = np.load(path, mmap_mode="r")
        except BaseException:
            os.unlink(path)
            raise
        return cls(mapped, path=path)

    @property
    def spilled(self) -> bool:
        """Whether the matrix lives in a memmap file."""
        return self._path is not None

    @property
    def shape(self):
        return self._matrix.shape

    @property
    def matrix(self) -> np.ndarray:
        """The full matrix (a read-only memmap view when spilled).

        Callers that need the whole matrix — e.g. the serve layer
        rebuilding an instance from a placement delta — read through
        the page cache instead of forcing a dense copy; use
        :meth:`slice` for shard submatrices.
        """
        return self._matrix

    def slice(self, indices: Sequence[int]) -> np.ndarray:
        """The dense ``len(indices) x len(indices)`` submatrix.

        The result is a small in-RAM copy (a shard's extended matrix):
        fancy indexing on the memmap reads only the selected rows.
        """
        rows = np.asarray(indices, dtype=np.intp)
        return np.asarray(self._matrix[np.ix_(rows, rows)], dtype=np.float64)

    def close(self) -> None:
        """Release the memmap and unlink the backing file (idempotent)."""
        if self._path is not None:
            self._matrix = np.zeros((0, 0))
            try:
                os.unlink(self._path)
            except OSError:
                pass
            self._path = None

    def __enter__(self) -> "CostMatrixStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
