"""Partitioning an :class:`~repro.model.instance.RtspInstance` into shards.

A *part* is a set of servers plus the set of objects planned with them;
a *partition* is a list of parts that together cover every placement
cell (``server x object``) exactly once. Three partitioners are
provided, in decreasing order of strength:

* :func:`partition_connected` — one part per connected component of the
  placement interaction graph
  (:func:`repro.analysis.transfer_graph.placement_components`). Always
  *exact*: no object's footprint crosses a part boundary, so every
  transfer keeps its real sources and stitched plans match unsharded
  planning of each part byte-for-byte.
* :func:`partition_by_zone` — explicit server→zone labels (topology
  zones, racks, regions). Server-disjoint by construction, but an
  object replicated in several zones is split: each zone plans its own
  cells, and targets whose only old sources live in another zone fall
  back to dummy transfers. Exact iff no object spans zones.
* :func:`partition_by_object_family` — object→family labels over the
  *full* server set with sequentially split capacities. Useful when the
  interaction graph is one blob but memory forces decomposition; never
  exact (the stitch order is canonicalised), though no sources are lost
  because every part keeps the full server set.

Exactness is what :func:`repro.shard.planner.plan_sharded` keys its
byte-identity guarantee on; inexact partitions still stitch into valid
(invariant-clean) schedules, with the dummy surcharge reported through
cross-shard accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.transfer_graph import placement_components
from repro.model.instance import RtspInstance
from repro.util.errors import ConfigurationError

__all__ = [
    "ShardPart",
    "Partition",
    "partition_connected",
    "partition_by_zone",
    "partition_by_object_family",
    "resolve_partition",
    "pack_parts",
]


@dataclass(frozen=True)
class ShardPart:
    """One independently planned slice of an instance.

    ``servers`` and ``objects`` are sorted tuples of *global* indices.
    ``weight`` estimates the part's planning work (outstanding +
    superfluous cells) and drives the bin-packing of parts into shards;
    it never influences the planned actions.
    """

    servers: Tuple[int, ...]
    objects: Tuple[int, ...]
    weight: int

    @property
    def key(self) -> Tuple[int, int]:
        """Stable identity used for canonical ordering and seed derivation.

        ``(first server, first object)``: parts of a server-disjoint
        partition differ in the first coordinate, parts of an
        object-family partition (which share all servers) in the second.
        """
        return (
            self.servers[0] if self.servers else -1,
            self.objects[0] if self.objects else -1,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ShardPart(servers={len(self.servers)}, "
            f"objects={len(self.objects)}, weight={self.weight})"
        )


@dataclass(frozen=True)
class Partition:
    """An ordered list of parts plus the guarantees they carry.

    ``exact`` means every object's old+new footprint lies inside a
    single part: sub-plans then compose without losing any transfer
    source, and the stitched schedule is byte-identical to planning each
    part unsharded. ``scheme`` names the partitioner for reports.
    ``capacities`` optionally overrides per-part server capacities
    (object-family partitioning splits each server's budget between
    parts); ``None`` entries mean "use the instance's capacities".
    """

    parts: Tuple[ShardPart, ...]
    exact: bool
    scheme: str
    capacities: Optional[Tuple[Optional[Tuple[float, ...]], ...]] = None

    def __len__(self) -> int:
        return len(self.parts)

    def part_capacities(self, index: int) -> Optional[Tuple[float, ...]]:
        """Capacity override for part ``index`` (``None``: instance caps)."""
        if self.capacities is None:
            return None
        return self.capacities[index]


def _part_weight(instance: RtspInstance, servers, objects) -> int:
    """Outstanding + superfluous cells inside the part's rectangle."""
    if len(servers) == 0 or len(objects) == 0:
        return 0
    grid = np.ix_(np.asarray(servers), np.asarray(objects))
    return int(
        instance.outstanding()[grid].sum() + instance.superfluous()[grid].sum()
    )


def _objects_on(instance: RtspInstance, servers: Sequence[int]) -> List[int]:
    """Objects with any old or new replica on ``servers`` (sorted)."""
    rows = np.asarray(servers, dtype=np.intp)
    footprint = (
        instance.x_old[rows].any(axis=0) | instance.x_new[rows].any(axis=0)
    )
    return [int(k) for k in np.flatnonzero(footprint)]


def partition_connected(instance: RtspInstance) -> Partition:
    """One part per placement-interaction component (always exact).

    Objects whose footprint is empty (no replica old or new) belong to
    no part — they require no actions. Parts are ordered by smallest
    server index, the canonical stitch order.
    """
    parts = []
    for servers in placement_components(instance):
        objects = _objects_on(instance, servers)
        parts.append(
            ShardPart(
                servers=tuple(servers),
                objects=tuple(objects),
                weight=_part_weight(instance, servers, objects),
            )
        )
    return Partition(parts=tuple(parts), exact=True, scheme="components")


def partition_by_zone(
    instance: RtspInstance, zones: Sequence[object]
) -> Partition:
    """Group servers by ``zones`` labels (one label per server).

    Each part owns its zone's servers and every object with a cell
    there; objects spanning zones appear in several parts, each planning
    only its own cells (that is what makes the partition inexact — a
    zone whose targets lost their out-of-zone sources pulls from the
    dummy server instead). Parts are ordered by smallest server index.
    """
    if len(zones) != instance.num_servers:
        raise ConfigurationError(
            f"expected {instance.num_servers} zone labels, got {len(zones)}"
        )
    by_zone: Dict[object, List[int]] = {}
    for server, zone in enumerate(zones):
        by_zone.setdefault(zone, []).append(server)
    parts = []
    seen_objects: Dict[int, int] = {}
    exact = True
    for servers in sorted(by_zone.values(), key=lambda group: group[0]):
        objects = _objects_on(instance, servers)
        for obj in objects:
            seen_objects[obj] = seen_objects.get(obj, 0) + 1
        parts.append(
            ShardPart(
                servers=tuple(servers),
                objects=tuple(objects),
                weight=_part_weight(instance, servers, objects),
            )
        )
    if any(count > 1 for count in seen_objects.values()):
        exact = False
    return Partition(parts=tuple(parts), exact=exact, scheme="zone")


def partition_by_object_family(
    instance: RtspInstance, families: Union[int, Sequence[object]]
) -> Partition:
    """Split the *objects* into families, each planned over all servers.

    ``families`` is either a label per object or an integer ``F`` (the
    objects are chunked into ``F`` contiguous ranges). Because parts
    share every server, each server's capacity is divided sequentially
    along the stitch order: part ``p`` plans against
    ``cap - sum(new loads of earlier parts) - sum(old loads of later
    parts)`` — exactly the storage left over while earlier families have
    already landed and later families still hold their old replicas.
    The split can be infeasible even when the instance is (families may
    *need* interleaving to fit); that surfaces as
    :class:`~repro.util.errors.ConfigurationError` from sub-instance
    extraction, and the caller should fall back to fewer families or the
    component partitioner.
    """
    n = instance.num_objects
    if isinstance(families, (int, np.integer)):
        count = int(families)
        if count < 1:
            raise ConfigurationError("family count must be >= 1")
        labels: List[object] = [
            min(k * count // max(n, 1), count - 1) for k in range(n)
        ]
    else:
        labels = list(families)
        if len(labels) != n:
            raise ConfigurationError(
                f"expected {n} family labels, got {len(labels)}"
            )
    by_family: Dict[object, List[int]] = {}
    for obj, label in enumerate(labels):
        by_family.setdefault(label, []).append(obj)
    servers = tuple(range(instance.num_servers))
    ordered = sorted(by_family.values(), key=lambda objs: objs[0])
    sizes = instance.sizes
    old_loads = [
        instance.x_old[:, objs].astype(np.float64) @ sizes[objs]
        for objs in ordered
    ]
    new_loads = [
        instance.x_new[:, objs].astype(np.float64) @ sizes[objs]
        for objs in ordered
    ]
    parts = []
    capacities = []
    for index, objs in enumerate(ordered):
        parts.append(
            ShardPart(
                servers=servers,
                objects=tuple(objs),
                weight=_part_weight(instance, servers, objs),
            )
        )
        reserved = np.zeros(instance.num_servers, dtype=np.float64)
        for earlier in range(index):
            reserved += new_loads[earlier]
        for later in range(index + 1, len(ordered)):
            reserved += old_loads[later]
        caps = np.asarray(instance.capacities, dtype=np.float64) - reserved
        capacities.append(tuple(float(c) for c in caps))
    exact = len(parts) == 1
    return Partition(
        parts=tuple(parts),
        exact=exact,
        scheme="family",
        capacities=tuple(capacities),
    )


PartitionerSpec = Union[
    str, Partition, Callable[[RtspInstance], Partition]
]


def resolve_partition(
    instance: RtspInstance, partitioner: PartitionerSpec = "components"
) -> Partition:
    """Normalise a partitioner spec into a concrete :class:`Partition`.

    Accepts the string ``"components"``, a ready-made :class:`Partition`
    (e.g. from :func:`partition_by_zone`), or a callable
    ``instance -> Partition``.
    """
    if isinstance(partitioner, Partition):
        return partitioner
    if callable(partitioner):
        partition = partitioner(instance)
        if not isinstance(partition, Partition):
            raise ConfigurationError(
                "partitioner callable must return a Partition, "
                f"got {type(partition).__name__}"
            )
        return partition
    if partitioner == "components":
        return partition_connected(instance)
    raise ConfigurationError(
        f"unknown partitioner {partitioner!r}; pass 'components', a "
        "Partition, or a callable (see partition_by_zone / "
        "partition_by_object_family)"
    )


def pack_parts(
    partition: Partition, shards: Optional[int]
) -> List[List[int]]:
    """Pack part indices into at most ``shards`` execution bins.

    Longest-processing-time assignment on part weight: heaviest part
    first, each into the currently lightest bin, so bins stay balanced.
    Packing only groups *work* for the pool — each part keeps its own
    sub-instance and derived seed, so the stitched schedule is identical
    for every ``shards`` value. ``shards=None`` means one bin per part.
    """
    count = len(partition.parts)
    if count == 0:
        return []
    if shards is not None and shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    if shards is None or shards >= count:
        return [[index] for index in range(count)]
    order = sorted(
        range(count),
        key=lambda index: (-partition.parts[index].weight, index),
    )
    bins: List[List[int]] = [[] for _ in range(shards)]
    loads = [0.0] * shards
    for index in order:
        lightest = min(range(shards), key=lambda b: (loads[b], b))
        bins[lightest].append(index)
        loads[lightest] += partition.parts[index].weight
    for b in bins:
        b.sort()
    return sorted((b for b in bins if b), key=lambda b: b[0])
