"""Sharded planning: partition, plan in parallel, stitch, verify.

:func:`plan_sharded` is the fleet-scale entry point: it partitions an
instance (connected components of the placement interaction graph by
default), plans every part independently with the requested builder or
pipeline, stitches the per-part schedules into one global
:class:`~repro.model.schedule.Schedule`, and runs the independent
invariant oracle (:func:`repro.exact.validate.check_invariants`) over
the stitched result.

Determinism contract
--------------------
* The stitched schedule is **byte-identical for every** ``shards`` and
  ``workers`` value: parts are the planning unit (bins only group work
  for the pool), each part's seed is derived from the caller's seed and
  the part's stable key, and parts are stitched in canonical order.
* When the partition has a **single part** (connected instances — the
  common case) the planner runs the builder directly on the original
  instance with the caller's ``rng``, so the result is byte-identical
  to unsharded planning.
* When the partition is **exact** (disconnected components), each
  part's slice of the stitched schedule is byte-identical to unsharded
  planning of that part's sub-instance, and no transfer loses a source
  to the shard boundary (zero cross-shard dummies).
* Inexact partitions (zone cuts, object families) still stitch into a
  valid schedule; targets whose only sources live in another shard pull
  from the dummy server, and that surcharge is reported per shard as
  ``cross_shard_dummies``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.quality import plan_quality, record_plan_quality
from repro.core.base import ScheduleBuilder
from repro.core.pipeline import Pipeline, build_pipeline
from repro.model.instance import RtspInstance
from repro.model.schedule import KIND_TRANSFER, Schedule
from repro.obs.context import current_events, current_metrics, current_tracer
from repro.obs.events import EventStream
from repro.shard.mmapcost import CostMatrixStore
from repro.shard.partition import (
    Partition,
    PartitionerSpec,
    pack_parts,
    resolve_partition,
)
from repro.shard.pool import WorkQueue
from repro.shard.subinstance import SubInstance, extract_subinstance
from repro.util.errors import ConfigurationError, InvalidScheduleError
from repro.util.rng import derive_seed

__all__ = ["ShardStats", "ShardedPlan", "plan_sharded"]


@dataclass(frozen=True)
class ShardStats:
    """Accounting for one planned part.

    ``cross_shard_dummies`` counts transfers that had to source from the
    dummy server *because of the shard boundary*: the object has no old
    holder inside the part but does have one globally. Dummy transfers
    the unsharded planner would also need (objects with no old holder
    anywhere) are excluded.
    """

    index: int
    key: Tuple[int, int]
    num_servers: int
    num_objects: int
    num_actions: int
    cost: float
    dummy_transfers: int
    cross_shard_dummies: int
    seconds: float


@dataclass
class ShardedPlan:
    """Everything :func:`plan_sharded` produced."""

    schedule: Schedule
    partition: Partition
    shards: List[List[int]]
    stats: List[ShardStats]
    invariant_report: Optional[Any]
    seconds: float

    @property
    def cost(self) -> float:
        """Implementation cost of the stitched schedule."""
        return self._cost

    @property
    def num_actions(self) -> int:
        return len(self.schedule)

    @property
    def dummy_transfers(self) -> int:
        return sum(stat.dummy_transfers for stat in self.stats)

    @property
    def cross_shard_dummies(self) -> int:
        return sum(stat.cross_shard_dummies for stat in self.stats)

    _cost: float = 0.0


def _as_pipeline(builder: Union[str, ScheduleBuilder, Pipeline]) -> Pipeline:
    """Normalise the ``builder`` argument into a :class:`Pipeline`."""
    if isinstance(builder, Pipeline):
        return builder
    if isinstance(builder, ScheduleBuilder):
        return Pipeline(builder)
    if isinstance(builder, str):
        return build_pipeline(builder)
    raise ConfigurationError(
        "builder must be a pipeline spec string, a ScheduleBuilder, or a "
        f"Pipeline, got {type(builder).__name__}"
    )


Columns = Tuple[List[int], List[int], List[int], List[int]]
PartResult = Tuple[int, Columns, ShardStats]

#: Context tuple threaded through the work queue to `_plan_bin`.
_BinContext = Tuple[
    RtspInstance, Partition, Pipeline, int, Optional[CostMatrixStore], Any
]


def _part_seed(seed: int, key: Tuple[int, int]) -> int:
    """The derived seed planning part ``key`` under base ``seed``."""
    return derive_seed(seed, "shard", key)


def _plan_part(
    instance: RtspInstance,
    partition: Partition,
    pipeline: Pipeline,
    seed: int,
    index: int,
    cost_store: Optional[CostMatrixStore],
    global_has_source: np.ndarray,
) -> PartResult:
    """Plan one part on its sub-instance and return global columns."""
    part = partition.parts[index]
    tracer = current_tracer()
    t0 = time.perf_counter()
    with tracer.span("shard.plan", part=index, servers=len(part.servers)):
        sub = extract_subinstance(
            instance,
            part,
            capacities=partition.part_capacities(index),
            cost_store=cost_store,
        )
        schedule = pipeline.run(
            sub.instance, rng=_part_seed(seed, part.key)
        )
        stats = _part_stats(sub, schedule, index, global_has_source)
        columns = sub.globalize(schedule)
    seconds = time.perf_counter() - t0
    registry = current_metrics()
    if registry is not None:
        registry.counter("shard.parts_planned").inc()
        registry.counter("shard.cross_dummies").inc(
            stats.cross_shard_dummies
        )
        registry.histogram("shard.plan.seconds").observe(seconds)
    stream = current_events()
    if stream is not None:
        # Per-shard completion heartbeat: recorded into the worker's
        # fragment, merged in task order, so the stream is identical
        # for any worker count.
        stream.emit(
            "shard.part",
            part=index,
            servers=stats.num_servers,
            actions=stats.num_actions,
            cost=stats.cost,
            cross_shard_dummies=stats.cross_shard_dummies,
        )
    return (
        index,
        columns,
        ShardStats(
            index=stats.index,
            key=stats.key,
            num_servers=stats.num_servers,
            num_objects=stats.num_objects,
            num_actions=stats.num_actions,
            cost=stats.cost,
            dummy_transfers=stats.dummy_transfers,
            cross_shard_dummies=stats.cross_shard_dummies,
            seconds=seconds,
        ),
    )


def _part_stats(
    sub: SubInstance,
    schedule: Schedule,
    index: int,
    global_has_source: np.ndarray,
) -> ShardStats:
    """Local accounting for one planned part (seconds filled by caller)."""
    local = sub.instance
    dummy = local.dummy
    cost = schedule.cost(local)
    local_has_source = local.x_old.any(axis=0)
    dummies = 0
    cross = 0
    from repro.model.actions import Transfer

    for action in schedule:
        if isinstance(action, Transfer) and action.source == dummy:
            dummies += 1
            obj = action.obj
            if not local_has_source[obj] and global_has_source[
                sub.objects[obj]
            ]:
                cross += 1
    return ShardStats(
        index=index,
        key=(sub.servers[0], sub.objects[0] if sub.objects else -1),
        num_servers=len(sub.servers),
        num_objects=len(sub.objects),
        num_actions=len(schedule),
        cost=cost,
        dummy_transfers=dummies,
        cross_shard_dummies=cross,
        seconds=0.0,
    )


def _plan_bin(context: _BinContext, bin_indices: List[int]) -> List[PartResult]:
    """Work-queue task: plan every part of one shard bin, in order."""
    instance, partition, pipeline, seed, cost_store, has_source = context
    return [
        _plan_part(
            instance, partition, pipeline, seed, index, cost_store, has_source
        )
        for index in bin_indices
    ]


def plan_sharded(
    instance: RtspInstance,
    builder: Union[str, ScheduleBuilder, Pipeline] = "GOLCF",
    shards: Optional[int] = None,
    workers: int = 1,
    partitioner: PartitionerSpec = "components",
    rng: Optional[int] = 0,
    validate: bool = True,
    mmap_costs: object = "auto",
    progress: Optional[Any] = None,
) -> ShardedPlan:
    """Partition ``instance``, plan the parts in parallel, stitch, verify.

    Parameters
    ----------
    builder:
        Pipeline spec string (``"GOLCF+H1+H2+OP1"``), a
        :class:`~repro.core.base.ScheduleBuilder`, or a ready
        :class:`~repro.core.pipeline.Pipeline`.
    shards:
        Maximum number of parallel work units; parts are bin-packed into
        at most this many bins by estimated work. Never changes the
        stitched schedule. ``None``: one bin per part.
    workers:
        Pool processes; falls back to serial (loudly) without ``fork``.
    partitioner:
        ``"components"`` (default), a :class:`~repro.shard.partition.
        Partition`, or a callable — see :mod:`repro.shard.partition`.
    rng:
        Integer base seed (``None`` means 0). Multi-part planning
        derives one stream per part, so a generator object is rejected:
        its state could not be split deterministically.
    validate:
        Run :func:`repro.exact.validate.check_invariants` over the
        stitched schedule and raise
        :class:`~repro.util.errors.InvalidScheduleError` on violations.
    mmap_costs:
        ``"auto"`` (default) spills the extended cost matrix to a
        memory-mapped file once it crosses
        :data:`~repro.shard.mmapcost.MMAP_DEFAULT_BYTES`, so shard
        extraction reads only its own rows; ``True``/``False`` force.
    """
    pipeline = _as_pipeline(builder)
    partition = resolve_partition(instance, partitioner)
    tracer = current_tracer()
    registry = current_metrics()
    stream = current_events()

    with tracer.span(
        "plan_sharded", parts=len(partition.parts), workers=int(workers)
    ):
        # The event stream deliberately omits the worker count: events
        # describe the *plan*, which is byte-identical for any pool
        # size, so the logical stream must be too. The span records the
        # execution config instead.
        if stream is not None:
            stream.emit(
                "plan.start",
                parts=len(partition.parts),
                shards=0 if shards is None else int(shards),
            )
        plan = _plan_partitioned(
            instance,
            pipeline,
            partition,
            shards,
            workers,
            rng,
            validate,
            mmap_costs,
            progress,
            tracer,
            registry,
            stream,
        )
        quality = plan_quality(
            instance,
            plan.schedule,
            cost=plan.cost,
            partition=partition,
            bins=plan.shards,
        )
        record_plan_quality(quality, registry)
        finite_gap = quality.cost_gap != float("inf")
        tracer.annotate(
            cost=plan.cost,
            cost_gap=quality.cost_gap if finite_gap else -1.0,
            dummy_traffic_ratio=quality.dummy_traffic_ratio,
            lpt_imbalance=quality.lpt_imbalance,
        )
        if stream is not None:
            stream.emit(
                "plan.done",
                parts=len(partition.parts),
                actions=plan.num_actions,
                cost=plan.cost,
                cost_gap=quality.cost_gap if finite_gap else -1.0,
                dummy_traffic_ratio=quality.dummy_traffic_ratio,
                lpt_imbalance=quality.lpt_imbalance,
            )
    return plan


def _plan_partitioned(
    instance: RtspInstance,
    pipeline: Pipeline,
    partition: Partition,
    shards: Optional[int],
    workers: int,
    rng: Optional[int],
    validate: bool,
    mmap_costs: object,
    progress: Optional[Any],
    tracer: Any,
    registry: Any,
    stream: Optional[EventStream],
) -> ShardedPlan:
    """Plan a resolved partition (the body under the ``plan_sharded`` span)."""
    t_start = time.perf_counter()

    if len(partition.parts) <= 1:
        # Single part: plan the original instance with the caller's rng,
        # byte-identical to unsharded planning.
        with tracer.span("shard.plan", part=0, servers=instance.num_servers):
            schedule = pipeline.run(instance, rng=rng)
        report = _verify(instance, schedule, validate, stream)
        stats = [
            ShardStats(
                index=0,
                key=(0, 0),
                num_servers=instance.num_servers,
                num_objects=instance.num_objects,
                num_actions=len(schedule),
                cost=schedule.cost(instance),
                dummy_transfers=schedule.count_dummy_transfers(instance),
                cross_shard_dummies=0,
                seconds=time.perf_counter() - t_start,
            )
        ]
        return ShardedPlan(
            schedule=schedule,
            partition=partition,
            shards=[[0]] if partition.parts else [],
            stats=stats,
            invariant_report=report,
            seconds=time.perf_counter() - t_start,
            _cost=stats[0].cost,
        )

    if rng is None:
        seed = 0
    elif isinstance(rng, (int, np.integer)):
        seed = int(rng)
    else:
        raise ConfigurationError(
            "plan_sharded needs an integer seed (or None) for multi-part "
            "instances; per-part streams are derived from it"
        )

    bins = pack_parts(partition, shards)
    store = CostMatrixStore.from_matrix(instance.costs, spill=mmap_costs)
    has_source = instance.x_old.any(axis=0)
    context: _BinContext = (
        instance, partition, pipeline, seed, store, has_source,
    )
    queue = WorkQueue(workers=workers, progress=progress)
    try:
        with tracer.span("shard.pool", bins=len(bins), workers=workers):
            bin_results = queue.run(
                _plan_bin,
                bins,
                context=context,
                metrics=registry,
                tracer=tracer if getattr(tracer, "enabled", False) else None,
                events=stream,
            )
    finally:
        store.close()

    results: List[PartResult] = [
        result for bin_result in bin_results for result in bin_result
    ]
    results.sort(key=lambda item: item[0])

    kinds: List[int] = []
    primary: List[int] = []
    objs: List[int] = []
    sources: List[int] = []
    stats = []
    for _, columns, stat in results:
        kinds.extend(columns[0])
        primary.extend(columns[1])
        objs.extend(columns[2])
        sources.extend(columns[3])
        stats.append(stat)
        if progress is not None:
            progress(
                f"shard {stat.index}: {stat.num_servers} servers, "
                f"{stat.num_actions} actions, cost={stat.cost:.6g}, "
                f"cross-shard dummies={stat.cross_shard_dummies}"
            )
    if stream is not None:
        stream.emit("plan.stitch", parts=len(results), actions=len(kinds))
    schedule = Schedule.from_arrays(kinds, primary, objs, sources)
    report = _verify(instance, schedule, validate, stream)
    if registry is not None:
        registry.counter("shard.plans").inc()
    return ShardedPlan(
        schedule=schedule,
        partition=partition,
        shards=bins,
        stats=stats,
        invariant_report=report,
        seconds=time.perf_counter() - t_start,
        _cost=_stitched_cost(instance, kinds, primary, objs, sources),
    )


def _stitched_cost(
    instance: RtspInstance,
    kinds: Sequence[int],
    primary: Sequence[int],
    objs: Sequence[int],
    sources: Sequence[int],
) -> float:
    """Left-to-right implementation cost of the stitched columns."""
    kind_arr = np.asarray(kinds, dtype=np.int64)
    mask = kind_arr == KIND_TRANSFER
    if not mask.any():
        return 0.0
    target_arr = np.asarray(primary, dtype=np.intp)[mask]
    obj_arr = np.asarray(objs, dtype=np.intp)[mask]
    source_arr = np.asarray(sources, dtype=np.intp)[mask]
    terms = instance.sizes[obj_arr] * instance.costs[target_arr, source_arr]
    total = 0.0
    for term in terms.tolist():
        total += term
    return total


def _verify(
    instance: RtspInstance,
    schedule: Schedule,
    validate: bool,
    stream: Optional[EventStream] = None,
) -> Optional[Any]:
    """Run the strict invariant oracle over the stitched schedule.

    On violation, records an ``invariant.violation`` event and — when
    the active stream is backed by a :class:`~repro.obs.events.
    FlightRecorder` with a dump path — flushes the recorder's ring to
    disk before re-raising, so the final moments before the bad stitch
    survive the crash.
    """
    if not validate:
        return None
    from repro.exact.validate import assert_invariants

    try:
        return assert_invariants(
            instance, schedule, context="plan_sharded stitch"
        )
    except InvalidScheduleError as exc:
        if stream is not None:
            stream.emit(
                "invariant.violation",
                context="plan_sharded stitch",
                error=str(exc),
            )
            recorder = stream.recorder
            if recorder is not None and recorder.path is not None:
                recorder.dump(reason="invariant violation")
        raise
