"""A reusable deterministic fork-pool work queue.

Generalises the process pool that :func:`repro.experiments.runner.
run_figure` grew for figure sweeps into a component every fan-out in the
library shares (figure repetitions, shard planning):

* tasks are mapped over a fork-based :class:`~concurrent.futures.
  ProcessPoolExecutor`, with results returned in **input order** so any
  downstream merge is independent of scheduling;
* the callable and its context are installed in a module global just
  before the pool starts (fork workers inherit them), so closures over
  non-picklable state never cross a pickle boundary;
* when an observability registry/tracer/event stream is supplied, every
  task records into *fresh* fragments whose snapshots are merged back in
  task order — counter totals, the logical trace stream and the logical
  event stream are identical for any worker count (the PR 4 contract);
* when the supplied tracer has an open span (e.g. ``plan_sharded``'s
  ``shard.pool`` span), adopted worker fragments are re-parented under
  it, so cross-process spans nest in the merged tree instead of
  becoming disconnected roots;
* platforms without the ``fork`` start method (or with it monkeypatched
  away) degrade to serial execution with a :class:`RuntimeWarning` and
  a ``progress`` line, never an exception — the PR 3 serial-fallback
  contract, now honoured on spawn-only platforms too.
"""

from __future__ import annotations

import multiprocessing
import warnings
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.obs.context import observed
from repro.obs.events import Event, EventStream
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, Tracer

__all__ = ["WorkQueue", "fork_available"]


def fork_available() -> bool:
    """Whether the ``fork`` start method can actually be used.

    Consults :func:`multiprocessing.get_all_start_methods` (spawn-only
    platforms such as Windows — and tests that monkeypatch it — report
    no ``fork``) and then confirms :func:`multiprocessing.get_context`
    agrees, so both discovery paths stay honest.
    """
    if "fork" not in multiprocessing.get_all_start_methods():
        return False
    try:
        multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform-specific
        return False
    return True


#: Installed immediately before the pool forks; inherited by workers so
#: the task function and its context never need to be pickled.
_WORKER_STATE: Optional[Tuple[Callable[..., Any], Any, bool, bool, bool]] = None

TaskOutput = Tuple[
    Any, Optional[dict], Optional[List[Span]], Optional[List[Event]]
]


def _run_one(task: Any) -> TaskOutput:
    """Execute one task under :data:`_WORKER_STATE` with fresh fragments."""
    assert _WORKER_STATE is not None, "WorkQueue worker state not installed"
    fn, context, want_metrics, want_trace, want_events = _WORKER_STATE
    registry = MetricsRegistry() if want_metrics else None
    tracer = Tracer() if want_trace else None
    stream = EventStream() if want_events else None
    with observed(tracer=tracer, metrics=registry, events=stream):
        result = fn(context, task)
    return (
        result,
        registry.snapshot() if registry is not None else None,
        tracer.spans if tracer is not None else None,
        stream.events if stream is not None else None,
    )


class WorkQueue:
    """Deterministic map over tasks, parallel when the platform allows.

    ``workers <= 1`` always runs serially; ``workers > 1`` uses a
    fork-based process pool, or falls back to serial execution (with a
    :class:`RuntimeWarning` and an optional ``progress`` line) when
    ``fork`` is unavailable. Results, observability merges, and
    therefore every downstream artifact are byte-identical for any
    worker count.
    """

    def __init__(
        self,
        workers: int = 1,
        progress: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.workers = max(int(workers), 1)
        self.progress = progress

    def run(
        self,
        fn: Callable[[Any, Any], Any],
        tasks: Sequence[Any],
        context: Any = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        events: Optional[EventStream] = None,
    ) -> List[Any]:
        """Map ``fn(context, task)`` over ``tasks`` in input order.

        ``fn`` must be a module-level callable (workers resolve it
        through the inherited module state, not a pickle). When
        ``metrics``/``tracer``/``events`` are supplied, each task runs
        inside a fresh fragment — also on the serial path, so totals
        never depend on the worker count — and the fragments are merged
        into the supplied instruments in task order. Trace fragments
        are re-parented under the tracer's innermost open span (if
        any), so worker spans nest under the coordinating span in the
        merged tree.
        """
        global _WORKER_STATE
        tasks = list(tasks)
        if not tasks:
            return []
        want_metrics = metrics is not None
        want_trace = tracer is not None and getattr(tracer, "enabled", False)
        want_events = events is not None
        state = (fn, context, want_metrics, want_trace, want_events)
        workers = min(self.workers, len(tasks))
        if workers > 1 and not fork_available():
            message = (
                f"WorkQueue(workers={workers}): the 'fork' start method is "
                "unavailable on this platform; falling back to serial "
                "execution"
            )
            warnings.warn(message, RuntimeWarning, stacklevel=3)
            if self.progress is not None:
                self.progress(message)
            workers = 1
        if workers > 1:
            ctx = multiprocessing.get_context("fork")
            _WORKER_STATE = state
            try:
                with ProcessPoolExecutor(
                    max_workers=workers, mp_context=ctx
                ) as pool:
                    outputs = list(pool.map(_run_one, tasks))
            finally:
                _WORKER_STATE = None
        else:
            previous = _WORKER_STATE
            _WORKER_STATE = state
            try:
                outputs = [_run_one(task) for task in tasks]
            finally:
                _WORKER_STATE = previous
        results: List[Any] = []
        # Merge fragments in task order — pool.map preserves input
        # order, so the merged stream is independent of scheduling.
        # Worker span fragments nest under the tracer's innermost open
        # span (the coordinating span, e.g. plan_sharded's shard.pool);
        # the link is identical on the serial path, so the merged tree
        # never depends on the worker count.
        # getattr: callers may pass duck-typed disabled tracers that
        # predate current_span (NullTracer returns None anyway).
        current_span = getattr(tracer, "current_span", None)
        open_span = current_span() if current_span is not None else None
        parent_id = open_span.span_id if open_span is not None else None
        for result, snapshot, spans, task_events in outputs:
            results.append(result)
            if snapshot is not None and metrics is not None:
                metrics.merge(snapshot)
            if spans is not None and tracer is not None:
                tracer.adopt(spans, parent_id=parent_id)
            if task_events is not None and events is not None:
                events.adopt(task_events)
        return results
