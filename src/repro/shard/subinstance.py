"""Extracting a plannable sub-instance for one shard part.

A :class:`SubInstance` bundles the local :class:`~repro.model.instance.
RtspInstance` for a :class:`~repro.shard.partition.ShardPart` with the
index maps needed to lift its schedule back into global coordinates.
Local server ``i`` is ``part.servers[i]``, local object ``k`` is
``part.objects[k]``, and the local dummy index maps to the global one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.model.instance import RtspInstance
from repro.model.schedule import KIND_TRANSFER, Schedule
from repro.shard.mmapcost import CostMatrixStore
from repro.shard.partition import ShardPart
from repro.util.errors import ConfigurationError, InfeasibleInstanceError

__all__ = ["SubInstance", "extract_subinstance"]

Columns = Tuple[List[int], List[int], List[int], List[int]]


@dataclass(frozen=True)
class SubInstance:
    """A shard's local instance plus its global index maps."""

    instance: RtspInstance
    servers: Tuple[int, ...]
    objects: Tuple[int, ...]
    global_dummy: int

    def globalize(self, schedule: Schedule) -> Columns:
        """Map a local schedule to global flat action columns.

        Returns ``(kinds, primary, objs, sources)`` lists of plain ints
        in the global index space, ready for
        :meth:`repro.model.schedule.Schedule.from_arrays` (directly or
        concatenated with other shards' columns). Works on any
        schedule; :class:`~repro.flat.buffers.FlatSchedule` instances
        that have not materialized are remapped straight from their
        arena columns, vectorized.
        """
        server_map = np.asarray(
            self.servers + (self.global_dummy,), dtype=np.int64
        )
        object_map = np.asarray(self.objects, dtype=np.int64)
        local_dummy = self.instance.dummy
        columns = _local_columns(schedule, local_dummy)
        kinds, primary, objs, sources = columns
        kind_arr = np.asarray(kinds, dtype=np.int64)
        primary_arr = server_map[np.asarray(primary, dtype=np.int64)]
        obj_arr = object_map[np.asarray(objs, dtype=np.int64)]
        source_local = np.asarray(sources, dtype=np.int64)
        # Deletions carry source 0; keep them 0 globally rather than
        # remapping a meaningless field.
        source_arr = np.where(
            kind_arr == KIND_TRANSFER, server_map[source_local], 0
        )
        return (
            kind_arr.tolist(),
            primary_arr.tolist(),
            obj_arr.tolist(),
            source_arr.tolist(),
        )


def _local_columns(schedule: Schedule, local_dummy: int) -> Columns:
    """Flat ``(kinds, primary, objs, sources)`` columns of ``schedule``."""
    try:
        from repro.flat.buffers import FlatSchedule
    except ImportError:  # pragma: no cover - flat core always ships
        FlatSchedule = None  # type: ignore[assignment]
    if (
        FlatSchedule is not None
        and isinstance(schedule, FlatSchedule)
        and not schedule.materialized
    ):
        kind, primary, obj, source = schedule._buffer.columns()
        return (
            kind.tolist(),
            primary.tolist(),
            obj.tolist(),
            source.tolist(),
        )
    kinds: List[int] = []
    primary: List[int] = []
    objs: List[int] = []
    sources: List[int] = []
    from repro.model.actions import Transfer

    for action in schedule:
        if isinstance(action, Transfer):
            kinds.append(KIND_TRANSFER)
            primary.append(action.target)
            objs.append(action.obj)
            sources.append(action.source)
        else:
            kinds.append(1)  # KIND_DELETE
            primary.append(action.server)
            objs.append(action.obj)
            sources.append(0)
    return kinds, primary, objs, sources


def extract_subinstance(
    instance: RtspInstance,
    part: ShardPart,
    capacities: Optional[Sequence[float]] = None,
    cost_store: Optional[CostMatrixStore] = None,
) -> SubInstance:
    """Build the local instance for ``part``.

    The extended cost matrix is sliced to the part's servers plus the
    dummy (through ``cost_store`` when given, so fleet-scale matrices
    are read from their memmap instead of RAM); placements are the
    part's ``servers x objects`` rectangle of ``X_old``/``X_new``.
    ``capacities`` overrides the per-server budgets (the object-family
    partitioner's sequential split); an infeasible override is reported
    as :class:`~repro.util.errors.ConfigurationError` naming the part.
    """
    if not part.servers:
        raise ConfigurationError("cannot extract a part with no servers")
    servers = np.asarray(part.servers, dtype=np.intp)
    objects = np.asarray(part.objects, dtype=np.intp)
    extended = list(part.servers) + [instance.dummy]
    if cost_store is not None:
        costs = cost_store.slice(extended)
    else:
        idx = np.asarray(extended, dtype=np.intp)
        costs = np.asarray(instance.costs[np.ix_(idx, idx)], dtype=np.float64)
    caps = (
        np.asarray(instance.capacities, dtype=np.float64)[servers]
        if capacities is None
        else np.asarray(capacities, dtype=np.float64)[servers]
    )
    if objects.size:
        grid = np.ix_(servers, objects)
        x_old = np.ascontiguousarray(instance.x_old[grid])
        x_new = np.ascontiguousarray(instance.x_new[grid])
        sizes = np.asarray(instance.sizes, dtype=np.float64)[objects]
    else:
        x_old = np.zeros((servers.size, 0), dtype=instance.x_old.dtype)
        x_new = np.zeros((servers.size, 0), dtype=instance.x_new.dtype)
        sizes = np.zeros(0, dtype=np.float64)
    try:
        local = RtspInstance.create(
            sizes=sizes,
            capacities=caps,
            costs=costs,
            x_old=x_old,
            x_new=x_new,
        )
    except InfeasibleInstanceError as exc:
        raise ConfigurationError(
            f"shard part {part.key} is infeasible under its capacity "
            f"split: {exc}; use fewer parts or the component partitioner"
        ) from exc
    return SubInstance(
        instance=local,
        servers=part.servers,
        objects=part.objects,
        global_dummy=instance.dummy,
    )
