"""Transfer timing: makespan analysis of RTSP schedules (extension).

The paper minimises *communication cost* and explicitly defers timing:
"as part of our future work we plan to study RTSP when X_new must be
reached within a time deadline" (§2.2). This subpackage builds that
study's substrate:

* :mod:`repro.timing.bandwidth` — link bandwidth models,
* :mod:`repro.timing.dag` — a conservative dependency DAG extracted from
  a sequential schedule (any topological execution order is valid),
* :mod:`repro.timing.executor` — a discrete-event simulator executing a
  schedule with per-server transfer-slot constraints, reporting makespan
  and per-action start/finish times,
* :mod:`repro.timing.faulted` — the failure-aware variant of that event
  loop (transfer failures, server crashes, link slowdowns) feeding
  :mod:`repro.robust`,
* :mod:`repro.timing.deadline` — deadline checks and per-pipeline
  makespan comparison helpers,
* :mod:`repro.timing.gantt` — ASCII Gantt rendering of executions.

Everything here is an *extension* beyond the paper's evaluation and is
benchmarked separately (``benchmarks/test_makespan.py``).
"""

from repro.timing.bandwidth import bandwidths_from_costs, uniform_bandwidths
from repro.timing.dag import build_dependency_dag, critical_path_length
from repro.timing.executor import (
    ExecutionResult,
    TimedAction,
    sequential_makespan,
    simulate_parallel,
)
from repro.timing.faulted import (
    FaultedAction,
    FaultedResult,
    simulate_with_faults,
)
from repro.timing.deadline import meets_deadline, makespan_by_pipeline
from repro.timing.gantt import render_gantt

__all__ = [
    "bandwidths_from_costs",
    "uniform_bandwidths",
    "build_dependency_dag",
    "critical_path_length",
    "ExecutionResult",
    "TimedAction",
    "sequential_makespan",
    "simulate_parallel",
    "FaultedAction",
    "FaultedResult",
    "simulate_with_faults",
    "meets_deadline",
    "makespan_by_pipeline",
    "render_gantt",
]
