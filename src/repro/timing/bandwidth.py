"""Link bandwidth models.

A bandwidth matrix ``B`` gives data units per time unit between each
server pair (and the dummy server, which models a slow archival tier).
Transfer duration is ``s(O_k) / B[target, source]``.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.util.errors import ConfigurationError


def uniform_bandwidths(num_servers: int, rate: float = 1.0,
                       dummy_rate: Optional[float] = None) -> np.ndarray:
    """Same bandwidth on every pair; the dummy tier defaults to rate/10.

    Returns an extended ``(M+1) x (M+1)`` matrix (dummy last, matching the
    instance's extended cost matrix).
    """
    if num_servers < 1:
        raise ConfigurationError("need at least one server")
    if not math.isfinite(rate) or rate <= 0:
        raise ConfigurationError("rate must be a positive finite number")
    dummy = rate / 10.0 if dummy_rate is None else float(dummy_rate)
    if not math.isfinite(dummy) or dummy <= 0:
        raise ConfigurationError("dummy_rate must be a positive finite number")
    out = np.full((num_servers + 1, num_servers + 1), float(rate))
    out[num_servers, :] = dummy
    out[:, num_servers] = dummy
    np.fill_diagonal(out, np.inf)
    return out


def bandwidths_from_costs(costs: np.ndarray, scale: float = 1.0) -> np.ndarray:
    """Bandwidth inversely proportional to communication cost.

    ``B[i, j] = scale / l[i, j]`` — the natural reading of the paper's
    cost metric as per-unit transfer *effort*: expensive paths are slow
    paths. Accepts the instance's extended cost matrix (dummy included);
    the diagonal gets infinite bandwidth (no self transfers anyway).

    Off-diagonal costs must be positive and finite: a zero cost would
    yield infinite bandwidth and zero-duration transfers, silently
    collapsing makespans, so it is rejected here rather than downstream.
    """
    costs = np.asarray(costs, dtype=np.float64)
    if costs.ndim != 2 or costs.shape[0] != costs.shape[1]:
        raise ConfigurationError("cost matrix must be square")
    if not math.isfinite(scale) or scale <= 0:
        raise ConfigurationError("scale must be a positive finite number")
    off_diagonal = costs.copy()
    np.fill_diagonal(off_diagonal, 1.0)
    if not np.isfinite(off_diagonal).all():
        raise ConfigurationError("cost matrix contains non-finite entries")
    if (off_diagonal <= 0).any():
        raise ConfigurationError(
            "off-diagonal costs must be positive (zero cost would mean "
            "infinite bandwidth / zero-duration transfers)"
        )
    out = scale / off_diagonal
    np.fill_diagonal(out, np.inf)
    return out


def transfer_duration(
    bandwidths: np.ndarray, size: float, target: int, source: int
) -> float:
    """Duration of moving ``size`` units from ``source`` to ``target``."""
    rate = float(bandwidths[target, source])
    if math.isnan(rate):
        raise ConfigurationError(f"NaN bandwidth on ({target},{source})")
    if rate <= 0:
        raise ConfigurationError(f"non-positive bandwidth on ({target},{source})")
    if np.isinf(rate):
        return 0.0
    return float(size) / rate
