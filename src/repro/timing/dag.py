"""Dependency DAGs over sequential schedules.

A valid sequential schedule implies a partial order: many actions can run
concurrently without violating any precondition. :func:`build_dependency_dag`
extracts a *conservative* DAG — every topological execution order of it is
a valid sequential schedule — with these edges (positions ``p < q``):

* **source availability** — a transfer depends on the earlier transfer
  that created its source replica (if the source did not hold the object
  from the start);
* **source liveness** — a deletion ``D(j,k)`` depends on every earlier
  transfer sourced from ``(j,k)`` (the replica must outlive its reads)
  and on the transfer that created ``(j,k)`` if any;
* **space accounting** — a transfer into server ``i`` depends on every
  earlier deletion at ``i`` and every earlier transfer into ``i`` (the
  sequential prefix's space budget at ``i`` is what made it valid);
* **replay-order ties** — a deletion of ``(i,k)`` depends on earlier
  transfers into ``(i,k)`` and a transfer into ``(i,k)`` depends on
  earlier deletions of ``(i,k)`` (create/delete alternation per cell).

Space edges are conservative (they serialise same-target transfers'
*admission*, not their network time), which is exactly the property that
makes every linearisation valid without re-checking capacities.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import networkx as nx

from repro.model.actions import Action, Delete, Transfer
from repro.model.instance import RtspInstance


def build_dependency_dag(
    actions: Sequence[Action], instance: RtspInstance
) -> nx.DiGraph:
    """Build the conservative dependency DAG (nodes are positions)."""
    g = nx.DiGraph()
    g.add_nodes_from(range(len(actions)))

    last_creation: Dict[Tuple[int, int], int] = {}  # (server, obj) -> pos
    last_deletion: Dict[Tuple[int, int], int] = {}
    readers: Dict[Tuple[int, int], List[int]] = {}  # transfers reading a cell
    server_space_events: Dict[int, List[int]] = {}  # deletions/arrivals per server

    for pos, action in enumerate(actions):
        if isinstance(action, Transfer):
            i, k, j = action.target, action.obj, action.source
            # source availability: created earlier, or held from X_old
            if j != instance.dummy:
                created = last_creation.get((j, k))
                if created is not None:
                    g.add_edge(created, pos)
                readers.setdefault((j, k), []).append(pos)
            # space accounting at the target
            for prior in server_space_events.get(i, ()):
                g.add_edge(prior, pos)
            # create/delete alternation on the target cell
            deleted = last_deletion.get((i, k))
            if deleted is not None:
                g.add_edge(deleted, pos)
            last_creation[(i, k)] = pos
            server_space_events.setdefault(i, []).append(pos)
        elif isinstance(action, Delete):
            i, k = action.server, action.obj
            created = last_creation.get((i, k))
            if created is not None:
                g.add_edge(created, pos)
            for reader in readers.get((i, k), ()):
                g.add_edge(reader, pos)
            readers[(i, k)] = []
            last_deletion[(i, k)] = pos
            server_space_events.setdefault(i, []).append(pos)
    return g


def critical_path_length(
    dag: nx.DiGraph, durations: Sequence[float]
) -> float:
    """Longest duration-weighted path through the DAG.

    A lower bound on any execution's makespan, regardless of how many
    transfers can run concurrently.
    """
    longest = {node: 0.0 for node in dag.nodes}
    for node in nx.topological_sort(dag):
        finish = longest[node] + float(durations[node])
        for succ in dag.successors(node):
            if finish > longest[succ]:
                longest[succ] = finish
    if not longest:
        return 0.0
    return max(longest[node] + float(durations[node]) for node in dag.nodes)
