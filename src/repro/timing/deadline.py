"""Deadline analysis over RTSP schedules (extension).

Answers the question the paper poses as future work: *can this
transition be implemented within a time budget?* — and compares how the
cost-minimising pipelines fare on makespan.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from repro.core.pipeline import build_pipeline
from repro.model.instance import RtspInstance
from repro.model.schedule import Schedule
from repro.timing.bandwidth import bandwidths_from_costs
from repro.timing.executor import ExecutionResult, simulate_parallel


def meets_deadline(
    schedule: Schedule,
    instance: RtspInstance,
    deadline: float,
    bandwidths: Optional[np.ndarray] = None,
    out_slots: int = 1,
    in_slots: int = 1,
) -> bool:
    """Whether the schedule's simulated makespan fits within ``deadline``."""
    if bandwidths is None:
        bandwidths = bandwidths_from_costs(instance.costs)
    result = simulate_parallel(
        schedule, instance, bandwidths, out_slots=out_slots, in_slots=in_slots
    )
    # Relative tolerance: an absolute 1e-9 slack is meaningless against
    # large makespans (float spacing near 1e9 already exceeds it).
    tolerance = 1e-9 * max(1.0, abs(deadline))
    return result.makespan <= deadline + tolerance


def makespan_by_pipeline(
    instance: RtspInstance,
    pipelines: Iterable[str],
    bandwidths: Optional[np.ndarray] = None,
    rng=0,
    out_slots: int = 1,
    in_slots: int = 1,
) -> Dict[str, ExecutionResult]:
    """Simulate every pipeline's schedule; returns results keyed by spec.

    Useful for studying the cost/makespan trade-off: cost-optimal
    schedules chain transfers through fresh replicas (long dependency
    paths), while naive schedules are flatter but costlier.
    """
    if bandwidths is None:
        bandwidths = bandwidths_from_costs(instance.costs)
    out: Dict[str, ExecutionResult] = {}
    for spec in pipelines:
        schedule = build_pipeline(spec).run(instance, rng=rng)
        out[spec] = simulate_parallel(
            schedule, instance, bandwidths, out_slots=out_slots, in_slots=in_slots
        )
    return out
