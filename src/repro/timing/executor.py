"""Discrete-event execution of RTSP schedules.

:func:`simulate_parallel` list-schedules a sequential schedule's
dependency DAG onto a system where each server can run a bounded number
of concurrent incoming/outgoing transfers ("NIC slots"). Because the DAG
is conservative (see :mod:`repro.timing.dag`), the produced timed trace
respects every RTSP precondition by construction.

Deletions are instantaneous (metadata operations); transfers take
``size / bandwidth`` time units.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.model.actions import Action, Delete, Transfer
from repro.model.instance import RtspInstance
from repro.model.schedule import Schedule
from repro.obs.context import current_metrics
from repro.timing.bandwidth import transfer_duration
from repro.timing.dag import build_dependency_dag, critical_path_length
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class TimedAction:
    """One action with its simulated start/finish times."""

    position: int
    action: Action
    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of a simulated execution."""

    makespan: float
    trace: List[TimedAction]
    critical_path: float
    sequential_time: float

    @property
    def speedup(self) -> float:
        """Sequential time over parallel makespan (1.0 when serialised)."""
        if self.makespan <= 0:
            return 1.0
        return self.sequential_time / self.makespan


def _durations(
    actions: Sequence[Action], instance: RtspInstance, bandwidths: np.ndarray
) -> List[float]:
    out: List[float] = []
    for action in actions:
        if isinstance(action, Transfer):
            out.append(
                transfer_duration(
                    bandwidths,
                    float(instance.sizes[action.obj]),
                    action.target,
                    action.source,
                )
            )
        else:
            out.append(0.0)
    return out


def sequential_makespan(
    schedule: Schedule, instance: RtspInstance, bandwidths: np.ndarray
) -> float:
    """Total time when actions run strictly one after another."""
    return float(sum(_durations(schedule.actions(), instance, bandwidths)))


def simulate_parallel(
    schedule: Schedule,
    instance: RtspInstance,
    bandwidths: np.ndarray,
    out_slots: int = 1,
    in_slots: int = 1,
) -> ExecutionResult:
    """List-schedule the dependency DAG with per-server NIC constraints.

    Parameters
    ----------
    out_slots, in_slots:
        Maximum concurrent outgoing / incoming transfers per server (the
        dummy server is unconstrained — an archival tier serving many
        streams).

    Ready actions start as soon as their dependencies finished and both
    endpoints have a free slot; ties break by schedule position, making
    the policy deterministic.
    """
    if out_slots < 1 or in_slots < 1:
        raise ConfigurationError("slot counts must be >= 1")
    registry = current_metrics()
    if registry is None:
        c_started = h_queue = h_flight = None
    else:
        c_started = registry.counter("executor.transfers_started")
        h_queue = registry.histogram("executor.queue_depth")
        h_flight = registry.histogram("executor.in_flight")
    actions = schedule.actions()
    n = len(actions)
    dag = build_dependency_dag(actions, instance)
    durations = _durations(actions, instance, bandwidths)

    indegree = {node: dag.in_degree(node) for node in range(n)}
    ready = [node for node in range(n) if indegree[node] == 0]
    heapq.heapify(ready)

    dummy = instance.dummy
    out_used = np.zeros(instance.num_servers + 1, dtype=np.int64)
    in_used = np.zeros(instance.num_servers + 1, dtype=np.int64)

    #: (finish_time, position) of running transfers
    running: List[tuple] = []
    trace: List[Optional[TimedAction]] = [None] * n
    now = 0.0
    completed = 0
    blocked: List[int] = []  # ready but waiting for a slot

    def try_start(pos: int) -> bool:
        action = actions[pos]
        if isinstance(action, Transfer):
            i, j = action.target, action.source
            if j != dummy and out_used[j] >= out_slots:
                return False
            if in_used[i] >= in_slots:
                return False
            if j != dummy:
                out_used[j] += 1
            in_used[i] += 1
            if c_started is not None:
                c_started.value += 1
            finish = now + durations[pos]
            heapq.heappush(running, (finish, pos))
            trace[pos] = TimedAction(pos, action, now, finish)
            return True
        # deletions complete instantly
        trace[pos] = TimedAction(pos, action, now, now)
        heapq.heappush(running, (now, pos))
        return True

    while completed < n:
        # admit every ready action a slot allows, in schedule order
        still_blocked: List[int] = []
        candidates = sorted(blocked + [heapq.heappop(ready) for _ in range(len(ready))])
        if h_queue is not None:
            h_queue.observe(len(candidates))
        for pos in candidates:
            if not try_start(pos):
                still_blocked.append(pos)
        blocked = still_blocked
        if h_flight is not None:
            h_flight.observe(len(running))

        if not running:
            raise ConfigurationError(
                "execution stalled: dependency DAG has no runnable action"
            )
        now, pos = heapq.heappop(running)
        completed += 1
        action = actions[pos]
        if isinstance(action, Transfer):
            if action.source != dummy:
                out_used[action.source] -= 1
            in_used[action.target] -= 1
        for succ in dag.successors(pos):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                heapq.heappush(ready, succ)

    makespan = max((t.finish for t in trace if t is not None), default=0.0)
    return ExecutionResult(
        makespan=makespan,
        trace=[t for t in trace if t is not None],
        critical_path=critical_path_length(dag, durations),
        sequential_time=float(sum(durations)),
    )
