"""Failure-aware discrete-event execution of RTSP schedules.

:func:`simulate_with_faults` extends :func:`repro.timing.executor.
simulate_parallel`'s event loop with three injected fault primitives:

* **transfer failures** — the ``n``-th transfer *started* (a global
  attempt counter, so retried transfers in later repair rounds get fresh
  indices) occupies its link for the full duration and then fails,
  producing no replica;
* **server crashes** — at an absolute simulated time a server loses every
  replica it holds (recorded as synthetic ``Delete`` actions with status
  ``"lost"``) and every in-flight transfer is aborted;
* **link slowdowns** — from an absolute time onward, transfers *started*
  on a directed link take ``factor`` times longer (already-running
  transfers keep their original finish time).

The loop drives a live :class:`~repro.model.state.SystemState` — actions
are applied at their finish times, so the caller ends up with the exact
mid-flight placement when the simulation halts at the first hard fault
(transfer failure or crash). With no faults injected the loop is
byte-identical to ``simulate_parallel``: same admission order, same
tie-breaking, same float arithmetic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import AbstractSet, Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.model.actions import Action, Delete, Transfer
from repro.model.instance import RtspInstance
from repro.model.schedule import Schedule
from repro.model.state import SystemState
from repro.obs.context import current_metrics
from repro.timing.bandwidth import transfer_duration
from repro.timing.dag import build_dependency_dag
from repro.util.errors import ConfigurationError

#: Statuses a :class:`FaultedAction` can carry.
STATUS_OK = "ok"            #: completed and applied to the state
STATUS_FAILED = "failed"    #: ran to its finish time, produced nothing
STATUS_ABORTED = "aborted"  #: cut short when the round halted
STATUS_LOST = "lost"        #: synthetic Delete describing crash data loss

#: Heap priorities: crashes preempt same-time action completions, so a
#: transfer finishing exactly at the crash instant counts as in-flight.
_CRASH_PRIORITY = 0
_FINISH_PRIORITY = 1


@dataclass(frozen=True)
class FaultedAction:
    """One event of a failure-aware trace.

    ``position`` is the index within the round's schedule, or ``-1`` for
    synthetic crash-loss deletes. ``start``/``finish`` are absolute
    simulated times (the round's ``start_time`` offset included).
    """

    position: int
    action: Action
    start: float
    finish: float
    status: str

    @property
    def applied(self) -> bool:
        """Whether this event mutated the system state."""
        return self.status in (STATUS_OK, STATUS_LOST)


@dataclass(frozen=True)
class FaultedResult:
    """Outcome of one failure-aware simulation round.

    Attributes
    ----------
    trace:
        Events in state-application order (ok/lost entries replay
        stepwise-valid against the round's starting state).
    stop_time:
        Absolute time the round ended — the last finish when
        ``completed``, the detection time of the hard fault otherwise.
    completed:
        True iff every scheduled action finished successfully.
    failure:
        Human-readable description of the hard fault, or ``None``.
    crash_fired:
        The ``(time, server)`` crash consumed this round, if any.
    failed_attempt:
        Global attempt index of the transfer that failed, if any.
    attempts:
        Number of transfers *started* this round (advances the caller's
        global attempt counter).
    wasted_cost:
        Implementation cost spent on failed transfers (full cost) plus
        the pro-rata cost of aborted in-flight transfers.
    """

    trace: Tuple[FaultedAction, ...]
    stop_time: float
    completed: bool
    failure: Optional[str]
    crash_fired: Optional[Tuple[float, int]]
    failed_attempt: Optional[int]
    attempts: int
    wasted_cost: float


def _slowdown_factor(
    slowdowns: Sequence[Tuple[float, int, int, float]],
    target: int,
    source: int,
    now: float,
) -> float:
    """Product of active slowdown factors on the directed link, at ``now``."""
    factor = 1.0
    for at_time, slow_target, slow_source, slow_factor in slowdowns:
        if slow_target == target and slow_source == source and at_time <= now:
            factor *= slow_factor
    return factor


def simulate_with_faults(
    schedule: Schedule,
    instance: RtspInstance,
    bandwidths: np.ndarray,
    state: SystemState,
    fail_attempts: AbstractSet[int] = frozenset(),
    crashes: Sequence[Tuple[float, int]] = (),
    slowdowns: Sequence[Tuple[float, int, int, float]] = (),
    out_slots: int = 1,
    in_slots: int = 1,
    start_time: float = 0.0,
    attempt_offset: int = 0,
) -> FaultedResult:
    """Run ``schedule`` under injected faults, halting at the first hard one.

    ``state`` must be the system state the schedule was planned from; it
    is mutated in place (successful actions at their finish times, crash
    losses at the crash time), so after a halt it holds exactly the
    mid-flight placement a repair engine needs. ``crashes`` only
    contributes its earliest entry (any crash halts the round; later ones
    belong to later rounds); a crash time before ``start_time`` fires
    immediately at ``start_time``.
    """
    if out_slots < 1 or in_slots < 1:
        raise ConfigurationError("slot counts must be >= 1")
    registry = current_metrics()
    if registry is None:
        c_started = c_aborted = c_failed = c_lost = h_queue = h_flight = None
    else:
        c_started = registry.counter("executor.transfers_started")
        c_aborted = registry.counter("executor.aborted_transfers")
        c_failed = registry.counter("executor.failed_transfers")
        c_lost = registry.counter("executor.crash_losses")
        h_queue = registry.histogram("executor.queue_depth")
        h_flight = registry.histogram("executor.in_flight")
    actions = schedule.actions()
    n = len(actions)
    dag = build_dependency_dag(actions, instance)

    indegree = {node: dag.in_degree(node) for node in range(n)}
    ready = [node for node in range(n) if indegree[node] == 0]
    heapq.heapify(ready)

    dummy = instance.dummy
    out_used = np.zeros(instance.num_servers + 1, dtype=np.int64)
    in_used = np.zeros(instance.num_servers + 1, dtype=np.int64)

    #: (time, priority, payload): payload is a position for finishes and a
    #: server index for the crash sentinel.
    running: List[tuple] = []
    starts: Dict[int, float] = {}
    will_fail: Dict[int, int] = {}  # position -> global attempt index
    trace: List[FaultedAction] = []
    now = start_time
    completed = 0
    attempts = 0
    blocked: List[int] = []

    crash_entry: Optional[Tuple[float, int]] = None
    if crashes:
        earliest = min(crashes)
        crash_entry = (max(float(earliest[0]), start_time), int(earliest[1]))
        heapq.heappush(
            running, (crash_entry[0], _CRASH_PRIORITY, crash_entry[1])
        )

    def action_cost(action: Transfer) -> float:
        return instance.transfer_cost(action.target, action.obj, action.source)

    def abort_running(halt: float) -> float:
        """Mark still-running transfers aborted; return their wasted cost."""
        wasted = 0.0
        for finish, priority, payload in sorted(running):
            if priority != _FINISH_PRIORITY:
                continue
            action = actions[payload]
            start = starts[payload]
            trace.append(
                FaultedAction(payload, action, start, halt, STATUS_ABORTED)
            )
            if c_aborted is not None:
                c_aborted.value += 1
            if isinstance(action, Transfer) and finish > start:
                wasted += action_cost(action) * (halt - start) / (finish - start)
        return wasted

    def try_start(pos: int) -> bool:
        nonlocal attempts
        action = actions[pos]
        if isinstance(action, Transfer):
            i, j = action.target, action.source
            if j != dummy and out_used[j] >= out_slots:
                return False
            if in_used[i] >= in_slots:
                return False
            if j != dummy:
                out_used[j] += 1
            in_used[i] += 1
            duration = transfer_duration(
                bandwidths, float(instance.sizes[action.obj]), i, j
            )
            factor = _slowdown_factor(slowdowns, i, j, now)
            if factor != 1.0:
                duration *= factor
            if c_started is not None:
                c_started.value += 1
            attempt = attempt_offset + attempts
            attempts += 1
            if attempt in fail_attempts:
                will_fail[pos] = attempt
            starts[pos] = now
            heapq.heappush(running, (now + duration, _FINISH_PRIORITY, pos))
            return True
        # deletions complete instantly
        starts[pos] = now
        heapq.heappush(running, (now, _FINISH_PRIORITY, pos))
        return True

    wasted_cost = 0.0
    while completed < n:
        # admit every ready action a slot allows, in schedule order
        still_blocked: List[int] = []
        candidates = sorted(blocked + [heapq.heappop(ready) for _ in range(len(ready))])
        if h_queue is not None:
            h_queue.observe(len(candidates))
        for pos in candidates:
            if not try_start(pos):
                still_blocked.append(pos)
        blocked = still_blocked
        if h_flight is not None:
            h_flight.observe(len(running))

        if not running:
            raise ConfigurationError(
                "execution stalled: dependency DAG has no runnable action"
            )
        time, priority, payload = heapq.heappop(running)

        if priority == _CRASH_PRIORITY:
            now = time
            server = payload
            wasted_cost += abort_running(now)
            for delete in state.crash_server(server):
                trace.append(FaultedAction(-1, delete, now, now, STATUS_LOST))
                if c_lost is not None:
                    c_lost.value += 1
            return FaultedResult(
                trace=tuple(trace),
                stop_time=now,
                completed=False,
                failure=f"server S_{server} crashed at t={now:g}",
                crash_fired=crash_entry,
                failed_attempt=None,
                attempts=attempts,
                wasted_cost=wasted_cost,
            )

        now = time
        pos = payload
        completed += 1
        action = actions[pos]
        if isinstance(action, Transfer):
            if action.source != dummy:
                out_used[action.source] -= 1
            in_used[action.target] -= 1
            if pos in will_fail:
                trace.append(
                    FaultedAction(pos, action, starts[pos], now, STATUS_FAILED)
                )
                if c_failed is not None:
                    c_failed.value += 1
                wasted_cost += action_cost(action)
                wasted_cost += abort_running(now)
                return FaultedResult(
                    trace=tuple(trace),
                    stop_time=now,
                    completed=False,
                    failure=(
                        f"transfer {action} failed at t={now:g} "
                        f"(attempt #{will_fail[pos]})"
                    ),
                    crash_fired=None,
                    failed_attempt=will_fail[pos],
                    attempts=attempts,
                    wasted_cost=wasted_cost,
                )
        state.apply(action, position=pos)
        trace.append(FaultedAction(pos, action, starts[pos], now, STATUS_OK))
        for succ in dag.successors(pos):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                heapq.heappush(ready, succ)

    stop_time = max(
        (t.finish for t in trace if t.status == STATUS_OK), default=start_time
    )
    return FaultedResult(
        trace=tuple(trace),
        stop_time=stop_time,
        completed=True,
        failure=None,
        crash_fired=None,
        failed_attempt=None,
        attempts=attempts,
        wasted_cost=wasted_cost,
    )
