"""ASCII Gantt rendering of simulated executions.

Terminal-friendly visualisation of an :class:`ExecutionResult`: one row
per server, time on the x axis, each block a transfer into that server
(labelled by object id). Deletions are instantaneous and omitted.
"""

from __future__ import annotations

import io
from typing import Dict, List

from repro.model.actions import Transfer
from repro.timing.executor import ExecutionResult


def render_gantt(
    result: ExecutionResult, num_servers: int, width: int = 72
) -> str:
    """Render the execution as an ASCII Gantt chart.

    Parameters
    ----------
    num_servers:
        Number of rows (server ids are 0..num_servers-1).
    width:
        Character width of the time axis.
    """
    makespan = result.makespan
    out = io.StringIO()
    if makespan <= 0:
        out.write("(empty execution)\n")
        return out.getvalue()

    def col(t: float) -> int:
        return min(width - 1, int(t / makespan * width))

    rows: Dict[int, List[str]] = {
        server: [" "] * width for server in range(num_servers)
    }
    for timed in result.trace:
        action = timed.action
        if not isinstance(action, Transfer) or timed.duration <= 0:
            continue
        lo, hi = col(timed.start), max(col(timed.start), col(timed.finish) - 1)
        label = str(action.obj)
        row = rows[action.target]
        for x in range(lo, hi + 1):
            row[x] = "#"
        # overlay the object id at the block start where it fits
        for offset, ch in enumerate(label):
            if lo + offset <= hi:
                row[lo + offset] = ch

    out.write(
        f"Gantt [makespan={makespan:g}, sequential={result.sequential_time:g}, "
        f"speedup={result.speedup:.2f}x]\n"
    )
    for server in range(num_servers):
        out.write(f"S{server:<3d}|{''.join(rows[server])}|\n")
    out.write("    +" + "-" * width + "+\n")
    out.write(f"    0{'time'.center(width - 8)}{makespan:>7g}\n")
    return out.getvalue()
