"""Operational command-line tools over JSON instances and schedules.

``python -m repro.tools <command>``:

* ``schedule`` — read an instance, run a pipeline, write the schedule;
* ``validate`` — replay a schedule against an instance and report
  validity, cost and dummy transfers;
* ``analyze`` — feasibility summary and cost bounds for an instance;
* ``makespan`` — simulate a schedule's parallel execution time.

These are the glue for using the library as a deployment tool: an
external placement system emits ``rtsp-instance/1`` JSON, this CLI turns
it into an executable ``rtsp-schedule/1`` plan.
"""

from repro.tools.cli import main

__all__ = ["main"]
