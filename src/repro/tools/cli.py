"""CLI for scheduling, validating and analysing JSON instances/schedules."""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.bounds import (
    nearest_source_bound,
    universal_lower_bound,
    worst_case_upper_bound,
)
from repro.analysis.feasibility import analyze_feasibility
from repro.analysis.metrics import schedule_stats
from repro.core.pipeline import build_pipeline
from repro.io import load_instance, load_schedule, save_schedule
from repro.obs import load_trace, render_summary, summarize_spans, validate_trace_file
from repro.timing import bandwidths_from_costs, simulate_parallel
from repro.util.errors import RtspError


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for the tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools",
        description="Schedule, validate and analyse RTSP JSON files.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("schedule", help="run a pipeline over an instance")
    p.add_argument("--instance", required=True, help="rtsp-instance/1 JSON file")
    p.add_argument(
        "--pipeline",
        default="GOLCF+H1+H2+OP1",
        help="pipeline spec (default: the paper's winner)",
    )
    p.add_argument("--seed", type=int, default=0, help="RNG seed")
    p.add_argument("--out", required=True, help="output rtsp-schedule/1 file")
    p.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help=(
            "plan by connected component through repro.shard, packing "
            "components into at most N parallel work units; the output "
            "schedule is identical for every N"
        ),
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="K",
        help="process-pool size for --shards (default 1: serial)",
    )
    p.add_argument(
        "--progress",
        action="store_true",
        help="render live heartbeat events (shard completions, builder "
        "waves) on the terminal",
    )
    p.add_argument(
        "--events",
        metavar="PATH",
        help="write the structured rtsp-events/1 stream here",
    )
    p.add_argument(
        "--prometheus",
        metavar="PATH",
        help="write run metrics in Prometheus text exposition format",
    )
    p.add_argument(
        "--otlp",
        metavar="PATH",
        help="write run metrics and trace spans as OTLP-style JSON",
    )
    p.add_argument(
        "--flight-record",
        metavar="PATH",
        help="keep a bounded flight-recorder ring over the event stream "
        "and dump it here on a crash or invariant violation "
        "(nothing is written on success)",
    )

    p = sub.add_parser("validate", help="replay a schedule against an instance")
    p.add_argument("--instance", required=True)
    p.add_argument("--schedule", required=True)
    p.add_argument(
        "--strict",
        action="store_true",
        help="also run the independent invariant oracle (repro.exact)",
    )

    p = sub.add_parser(
        "exact", help="solve an instance to proven optimality (small sizes)"
    )
    p.add_argument("--instance", required=True)
    p.add_argument(
        "--max-nodes", type=int, default=None,
        help="search-node budget (default: solver default)",
    )
    p.add_argument(
        "--max-seconds", type=float, default=None,
        help="wall-clock budget (off by default; breaks determinism)",
    )
    p.add_argument("--out", help="write the optimal rtsp-schedule/1 file here")

    p = sub.add_parser(
        "golden",
        help="check or refresh the exact differential corpus "
        "(tests/golden/exact)",
    )
    mode = p.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--check", action="store_true",
        help="regenerate and byte-compare against the committed corpus",
    )
    mode.add_argument(
        "--update", action="store_true",
        help="regenerate and overwrite the committed corpus",
    )
    p.add_argument(
        "--dir", default=None,
        help="corpus directory (default: tests/golden/exact)",
    )

    p = sub.add_parser(
        "serve",
        help="run the HTTP planning service (POST /v1/plan, /v1/validate, "
        "/v1/repair; GET /v1/jobs/{id}, /healthz, /metrics)",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument("--port", type=int, default=8323, help="bind port (0: any)")
    p.add_argument(
        "--workers", type=int, default=2,
        help="planning worker threads (bounds concurrent plan CPU)",
    )
    p.add_argument(
        "--max-pending", type=int, default=64,
        help="queued-job bound; submissions beyond it get 429",
    )
    p.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="default per-job timeout (requests may set their own)",
    )
    p.add_argument(
        "--plan-cache", type=int, default=128, metavar="N",
        help="finished plan responses kept for byte-identical replay",
    )
    p.add_argument(
        "--topology-cache", type=int, default=32, metavar="N",
        help="cost matrices kept for delta re-planning",
    )
    p.add_argument("--quiet", action="store_true", help="no startup banner")

    p = sub.add_parser("analyze", help="feasibility + cost bounds of an instance")
    p.add_argument("--instance", required=True)

    p = sub.add_parser("makespan", help="simulate parallel execution time")
    p.add_argument("--instance", required=True)
    p.add_argument("--schedule", required=True)
    p.add_argument("--slots", type=int, default=1,
                   help="concurrent in/out transfers per server")

    p = sub.add_parser(
        "trace-summary",
        help="summarise an rtsp-trace/1 file (from --trace) on the terminal",
    )
    p.add_argument("trace", help="rtsp-trace/1 JSONL file")
    p.add_argument(
        "--top", type=int, default=15,
        help="number of span rows to show (default 15)",
    )
    return parser


def _cmd_schedule(args) -> int:
    from repro.obs import (
        EventStream,
        FlightRecorder,
        MetricsRegistry,
        Tracer,
        observed,
        render_event,
        write_otlp,
        write_prometheus,
    )

    instance = load_instance(args.instance)
    pipeline = build_pipeline(args.pipeline)

    on_event = (lambda e: print("  " + render_event(e))) if args.progress else None
    recorder = (
        FlightRecorder(path=args.flight_record) if args.flight_record else None
    )
    stream: Optional[EventStream] = None
    if args.events or args.progress or recorder is not None:
        stream = EventStream(
            meta={"tool": "schedule", "pipeline": args.pipeline},
            on_event=on_event,
            recorder=recorder,
        )
    registry = MetricsRegistry() if (args.prometheus or args.otlp) else None
    tracer = Tracer() if args.otlp else None

    try:
        with observed(tracer=tracer, metrics=registry, events=stream):
            if args.shards is not None:
                from repro.shard import plan_sharded

                plan = plan_sharded(
                    instance,
                    pipeline,
                    shards=args.shards,
                    workers=args.workers,
                    rng=args.seed,
                    progress=(
                        None
                        if args.progress
                        else lambda line: print("  " + line)
                    ),
                )
                schedule = plan.schedule
                print(
                    f"sharded over {len(plan.partition.parts)} component(s) in "
                    f"{len(plan.shards)} shard(s), workers={args.workers}, "
                    f"cross-shard dummies={plan.cross_shard_dummies}"
                )
            else:
                if stream is not None:
                    stream.emit("plan.start", parts=1, shards=0)
                schedule = pipeline.run(instance, rng=args.seed)
                if stream is not None:
                    stream.emit(
                        "plan.done", parts=1, actions=len(schedule)
                    )
    except BaseException as exc:
        if recorder is not None:
            recorder.note(
                "exception", error=type(exc).__name__, message=str(exc)[:500]
            )
            recorder.dump(reason=f"exception: {type(exc).__name__}")
            print(f"flight recorder dumped to {args.flight_record}",
                  file=sys.stderr)
        raise
    stats = schedule_stats(schedule, instance)
    save_schedule(schedule, args.out)
    if args.events and stream is not None:
        stream.write_jsonl(args.events)
        print(f"wrote {args.events}")
    if args.prometheus and registry is not None:
        write_prometheus(registry.snapshot(), args.prometheus)
        print(f"wrote {args.prometheus}")
    if args.otlp and registry is not None:
        write_otlp(
            args.otlp,
            snapshot=registry.snapshot(),
            spans=tracer.spans if tracer is not None else None,
            meta={"tool": "schedule", "pipeline": args.pipeline},
        )
        print(f"wrote {args.otlp}")
    print(
        f"{pipeline.name}: {stats.num_actions} actions, "
        f"cost={stats.cost:,.6g}, dummy transfers={stats.num_dummy_transfers}"
    )
    print(f"wrote {args.out}")
    return 0


def _cmd_validate(args) -> int:
    instance = load_instance(args.instance)
    schedule = load_schedule(args.schedule)
    report = schedule.validate(instance)
    if not report.ok:
        where = (
            "end state" if report.position is None else f"action {report.position}"
        )
        print(f"INVALID at {where}: {report.message}")
        return 1
    if args.strict:
        from repro.exact.validate import check_invariants

        strict_report = check_invariants(instance, schedule)
        if not strict_report.ok:
            print(f"STRICT-INVALID: {strict_report.summary()}")
            return 1
        if abs(strict_report.cost - report.cost) > 1e-9 * max(1.0, report.cost):
            print(
                "ORACLE DISAGREEMENT: model cost "
                f"{report.cost:,.6g} != independent cost "
                f"{strict_report.cost:,.6g}"
            )
            return 1
    print(
        f"VALID{' (strict)' if args.strict else ''}: cost={report.cost:,.6g}, "
        f"dummy transfers={report.dummy_transfers}, "
        f"actions={len(schedule)}"
    )
    return 0


def _cmd_exact(args) -> int:
    from repro.exact.solver import SolverBudget, solve_optimal

    instance = load_instance(args.instance)
    kwargs = {}
    if args.max_nodes is not None:
        kwargs["max_nodes"] = args.max_nodes
    if args.max_seconds is not None:
        kwargs["max_seconds"] = args.max_seconds
    budget = SolverBudget(**kwargs) if kwargs else None
    result = solve_optimal(instance, budget=budget)
    print(f"status      : {result.status}")
    print(f"cost        : {result.cost:,.6g}")
    print(f"lower bound : {result.lower_bound:,.6g}")
    print(
        f"search      : {result.stats.nodes} nodes, "
        f"{result.stats.pruned_bound} bound-pruned, "
        f"{result.stats.pruned_memo} memo-pruned, "
        f"{result.stats.elapsed_seconds:.3f}s"
    )
    if args.out:
        save_schedule(result.schedule, args.out)
        print(f"wrote {args.out}")
    return 0 if result.proved_optimal else 1


def _cmd_golden(args) -> int:
    from repro.exact.differential import (
        DEFAULT_GOLDEN_DIR,
        check_corpus,
        update_corpus,
    )

    directory = args.dir or DEFAULT_GOLDEN_DIR
    if args.update:
        for path in update_corpus(directory):
            print(f"wrote {path}")
        return 0
    problems = check_corpus(directory)
    if problems:
        print(f"golden corpus check FAILED ({len(problems)} problems):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print("golden corpus check passed (byte-identical, all optima proved)")
    return 0


def _cmd_serve(args) -> int:
    from repro.serve import ServeConfig, run_server

    config = ServeConfig(
        workers=args.workers,
        max_pending=args.max_pending,
        default_timeout=args.timeout,
        plan_cache_entries=args.plan_cache,
        topology_entries=args.topology_cache,
    )
    return run_server(
        host=args.host, port=args.port, config=config, quiet=args.quiet
    )


def _cmd_analyze(args) -> int:
    instance = load_instance(args.instance)
    summary = analyze_feasibility(instance)
    outstanding, superfluous = instance.diff_counts()
    print(f"instance: {instance}")
    print(f"outstanding replicas : {outstanding}")
    print(f"superfluous replicas : {superfluous}")
    print(f"storage feasible     : {summary.storage_feasible}")
    print(f"dummy-free provable  : {summary.trivially_sequenceable}")
    print(f"transfer-graph cycle : {summary.transfer_cycle}")
    print(f"deadlock possible    : {summary.deadlock_possible}")
    print(f"forced dummy objects : {sorted(summary.forced_dummy_objects)}")
    print(f"cost lower bound     : {universal_lower_bound(instance):,.6g}")
    print(f"nearest-source bound : {nearest_source_bound(instance):,.6g}")
    print(f"worst-case bound     : {worst_case_upper_bound(instance):,.6g}")
    return 0


def _cmd_makespan(args) -> int:
    instance = load_instance(args.instance)
    schedule = load_schedule(args.schedule)
    report = schedule.validate(instance)
    if not report.ok:
        print(f"INVALID schedule: {report.message}")
        return 1
    bandwidths = bandwidths_from_costs(instance.costs)
    result = simulate_parallel(
        schedule, instance, bandwidths,
        out_slots=args.slots, in_slots=args.slots,
    )
    print(f"makespan       : {result.makespan:,.6g}")
    print(f"sequential time: {result.sequential_time:,.6g}")
    print(f"critical path  : {result.critical_path:,.6g}")
    print(f"speedup        : {result.speedup:.2f}x")
    return 0


def _cmd_trace_summary(args) -> int:
    problems = validate_trace_file(args.trace)
    if problems:
        print(f"INVALID trace {args.trace}:", file=sys.stderr)
        for problem in problems[:10]:
            print(f"  {problem}", file=sys.stderr)
        return 1
    header, spans = load_trace(args.trace)
    print(render_summary(summarize_spans(header, spans), top=args.top))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "schedule": _cmd_schedule,
        "validate": _cmd_validate,
        "analyze": _cmd_analyze,
        "makespan": _cmd_makespan,
        "trace-summary": _cmd_trace_summary,
        "exact": _cmd_exact,
        "golden": _cmd_golden,
        "serve": _cmd_serve,
    }
    try:
        return handlers[args.command](args)
    except (RtspError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
