"""CLI for scheduling, validating and analysing JSON instances/schedules."""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.bounds import (
    nearest_source_bound,
    universal_lower_bound,
    worst_case_upper_bound,
)
from repro.analysis.feasibility import analyze_feasibility
from repro.analysis.metrics import schedule_stats
from repro.core.pipeline import build_pipeline
from repro.io import load_instance, load_schedule, save_schedule
from repro.obs import load_trace, render_summary, summarize_spans, validate_trace_file
from repro.timing import bandwidths_from_costs, simulate_parallel
from repro.util.errors import RtspError


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for the tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools",
        description="Schedule, validate and analyse RTSP JSON files.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("schedule", help="run a pipeline over an instance")
    p.add_argument("--instance", required=True, help="rtsp-instance/1 JSON file")
    p.add_argument(
        "--pipeline",
        default="GOLCF+H1+H2+OP1",
        help="pipeline spec (default: the paper's winner)",
    )
    p.add_argument("--seed", type=int, default=0, help="RNG seed")
    p.add_argument("--out", required=True, help="output rtsp-schedule/1 file")

    p = sub.add_parser("validate", help="replay a schedule against an instance")
    p.add_argument("--instance", required=True)
    p.add_argument("--schedule", required=True)

    p = sub.add_parser("analyze", help="feasibility + cost bounds of an instance")
    p.add_argument("--instance", required=True)

    p = sub.add_parser("makespan", help="simulate parallel execution time")
    p.add_argument("--instance", required=True)
    p.add_argument("--schedule", required=True)
    p.add_argument("--slots", type=int, default=1,
                   help="concurrent in/out transfers per server")

    p = sub.add_parser(
        "trace-summary",
        help="summarise an rtsp-trace/1 file (from --trace) on the terminal",
    )
    p.add_argument("trace", help="rtsp-trace/1 JSONL file")
    p.add_argument(
        "--top", type=int, default=15,
        help="number of span rows to show (default 15)",
    )
    return parser


def _cmd_schedule(args) -> int:
    instance = load_instance(args.instance)
    pipeline = build_pipeline(args.pipeline)
    schedule = pipeline.run(instance, rng=args.seed)
    stats = schedule_stats(schedule, instance)
    save_schedule(schedule, args.out)
    print(
        f"{pipeline.name}: {stats.num_actions} actions, "
        f"cost={stats.cost:,.6g}, dummy transfers={stats.num_dummy_transfers}"
    )
    print(f"wrote {args.out}")
    return 0


def _cmd_validate(args) -> int:
    instance = load_instance(args.instance)
    schedule = load_schedule(args.schedule)
    report = schedule.validate(instance)
    if report.ok:
        print(
            f"VALID: cost={report.cost:,.6g}, "
            f"dummy transfers={report.dummy_transfers}, "
            f"actions={len(schedule)}"
        )
        return 0
    where = "end state" if report.position is None else f"action {report.position}"
    print(f"INVALID at {where}: {report.message}")
    return 1


def _cmd_analyze(args) -> int:
    instance = load_instance(args.instance)
    summary = analyze_feasibility(instance)
    outstanding, superfluous = instance.diff_counts()
    print(f"instance: {instance}")
    print(f"outstanding replicas : {outstanding}")
    print(f"superfluous replicas : {superfluous}")
    print(f"storage feasible     : {summary.storage_feasible}")
    print(f"dummy-free provable  : {summary.trivially_sequenceable}")
    print(f"transfer-graph cycle : {summary.transfer_cycle}")
    print(f"deadlock possible    : {summary.deadlock_possible}")
    print(f"forced dummy objects : {sorted(summary.forced_dummy_objects)}")
    print(f"cost lower bound     : {universal_lower_bound(instance):,.6g}")
    print(f"nearest-source bound : {nearest_source_bound(instance):,.6g}")
    print(f"worst-case bound     : {worst_case_upper_bound(instance):,.6g}")
    return 0


def _cmd_makespan(args) -> int:
    instance = load_instance(args.instance)
    schedule = load_schedule(args.schedule)
    report = schedule.validate(instance)
    if not report.ok:
        print(f"INVALID schedule: {report.message}")
        return 1
    bandwidths = bandwidths_from_costs(instance.costs)
    result = simulate_parallel(
        schedule, instance, bandwidths,
        out_slots=args.slots, in_slots=args.slots,
    )
    print(f"makespan       : {result.makespan:,.6g}")
    print(f"sequential time: {result.sequential_time:,.6g}")
    print(f"critical path  : {result.critical_path:,.6g}")
    print(f"speedup        : {result.speedup:.2f}x")
    return 0


def _cmd_trace_summary(args) -> int:
    problems = validate_trace_file(args.trace)
    if problems:
        print(f"INVALID trace {args.trace}:", file=sys.stderr)
        for problem in problems[:10]:
            print(f"  {problem}", file=sys.stderr)
        return 1
    header, spans = load_trace(args.trace)
    print(render_summary(summarize_spans(header, spans), top=args.top))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "schedule": _cmd_schedule,
        "validate": _cmd_validate,
        "analyze": _cmd_analyze,
        "makespan": _cmd_makespan,
        "trace-summary": _cmd_trace_summary,
    }
    try:
        return handlers[args.command](args)
    except (RtspError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
