"""Shared utilities: errors, RNG plumbing, validation, timing.

These helpers are deliberately small and dependency-free so that every
other subpackage can import them without cycles.
"""

from repro.util.errors import (
    RtspError,
    InvalidActionError,
    InvalidScheduleError,
    InfeasibleInstanceError,
    CapacityError,
    ConfigurationError,
)
from repro.util.rng import ensure_rng, spawn_rngs, derive_seed
from repro.util.timing import Stopwatch, timed
from repro.util.validation import (
    check_binary_matrix,
    check_nonnegative,
    check_positive,
    check_probability,
    check_symmetric,
)

__all__ = [
    "RtspError",
    "InvalidActionError",
    "InvalidScheduleError",
    "InfeasibleInstanceError",
    "CapacityError",
    "ConfigurationError",
    "ensure_rng",
    "spawn_rngs",
    "derive_seed",
    "Stopwatch",
    "timed",
    "check_binary_matrix",
    "check_nonnegative",
    "check_positive",
    "check_probability",
    "check_symmetric",
]
