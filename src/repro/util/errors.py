"""Exception hierarchy for the ``repro`` package.

All library-raised exceptions derive from :class:`RtspError` so callers can
catch everything coming out of the scheduler with a single ``except``.
"""

from __future__ import annotations


class RtspError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(RtspError):
    """A generator, heuristic, or experiment received inconsistent options."""


class InvalidActionError(RtspError):
    """An action is invalid in the state it was applied to.

    Examples: transferring from a non-replicator source, transferring to a
    server that already holds the object, deleting a replica that does not
    exist, or violating a storage-capacity constraint.
    """

    def __init__(self, message: str, action=None, position=None):
        super().__init__(message)
        #: The offending action (``Transfer`` or ``Delete``), when known.
        self.action = action
        #: Zero-based index of the action within its schedule, when known.
        self.position = position


class InvalidScheduleError(RtspError):
    """A schedule failed validation against an ``(X_old, X_new)`` pair.

    Raised either because some action in the sequence is invalid, or because
    the replayed final replication matrix differs from ``X_new``.
    """

    def __init__(self, message: str, position=None):
        super().__init__(message)
        #: Index of the first invalid action, or ``None`` for end-state
        #: mismatches.
        self.position = position


class CapacityError(RtspError):
    """A placement or transfer would exceed a server's storage capacity."""


class RepairExhaustedError(RtspError):
    """Online repair gave up before reaching ``X_new``.

    Raised by :class:`repro.robust.RepairEngine` when the configured
    ``max_rounds`` bound is hit while faults are still firing. With the
    default (automatic) bound this cannot happen: a fault plan is finite
    and every repair round consumes at least one fault.
    """


class InfeasibleInstanceError(RtspError):
    """The RTSP instance admits no valid schedule.

    Without a dummy server this can happen through transfer-graph deadlocks
    (paper Fig. 1); with a dummy server it only happens when ``X_new`` itself
    violates storage constraints.
    """
