"""Random-number-generator plumbing.

Every stochastic component in the library accepts an optional ``rng``
argument. The helpers here normalise what callers may pass (``None``, an
integer seed, or a ``numpy.random.Generator``) into a proper generator and
derive independent child streams for sub-components so that experiments are
reproducible action-for-action given a single seed.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    ``None`` yields a fresh OS-seeded generator; an ``int`` or
    ``SeedSequence`` seeds a new PCG64 generator; an existing generator is
    returned unchanged.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, (int, np.integer, np.random.SeedSequence)):
        return np.random.default_rng(rng)
    raise TypeError(f"cannot interpret {type(rng).__name__!r} as an RNG")


def spawn_rngs(rng: RngLike, n: int) -> List[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    Children are derived through ``SeedSequence.spawn`` semantics: each child
    stream is independent of its siblings and of the parent's future output.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    parent = ensure_rng(rng)
    # Derive child seeds from the parent stream itself so that the same
    # parent always produces the same family of children.
    seeds = parent.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(base_seed: int, *components: object) -> int:
    """Deterministically mix ``components`` into ``base_seed``.

    Used by the experiment harness to give each (figure, series, x-value,
    repetition) cell its own stable seed without coordinating global state.
    """
    h = np.uint64(base_seed & 0xFFFFFFFFFFFFFFFF)
    for comp in components:
        for byte in repr(comp).encode("utf-8"):
            # FNV-1a style mixing; cheap and stable across runs/platforms.
            h = np.uint64((int(h) ^ byte) * 0x100000001B3 & 0xFFFFFFFFFFFFFFFF)
    return int(h & 0x7FFFFFFFFFFFFFFF)
