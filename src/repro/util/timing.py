"""Deprecated timing shim — use :mod:`repro.obs.profile` instead.

:class:`Stopwatch` used to live here; it is now a thin subclass of
:class:`repro.obs.profile.StageProfiler` that emits a
``DeprecationWarning`` on construction. :func:`timed` is re-exported
unchanged. Existing imports (``from repro.util.timing import Stopwatch,
timed``) keep working; new code should import from ``repro.obs``.
"""

from __future__ import annotations

import warnings

from repro.obs.profile import StageProfiler, timed

__all__ = ["Stopwatch", "timed"]


class Stopwatch(StageProfiler):
    """Deprecated alias of :class:`repro.obs.profile.StageProfiler`.

    Keeps the historical API (``lap`` as the context-manager name) via the
    ``lap = stage`` alias StageProfiler already provides.
    """

    def __init__(self) -> None:
        warnings.warn(
            "repro.util.timing.Stopwatch is deprecated; use "
            "repro.obs.profile.StageProfiler (or repro.obs.StageProfiler)",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__()
