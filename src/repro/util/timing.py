"""Lightweight timing helpers used by the experiment harness.

Per the optimisation-workflow guidance ("no optimisation without
measuring"), the harness records wall-clock durations per pipeline stage.
These helpers keep that bookkeeping out of the algorithm code.
"""

from __future__ import annotations

import functools
import time
from typing import Callable, Dict, Optional, TypeVar

F = TypeVar("F", bound=Callable)


class Stopwatch:
    """Accumulating stopwatch with named laps.

    >>> sw = Stopwatch()
    >>> with sw.lap("build"):
    ...     pass
    >>> "build" in sw.laps
    True
    """

    def __init__(self) -> None:
        self.laps: Dict[str, float] = {}

    def lap(self, name: str) -> "_Lap":
        """Return a context manager that accumulates elapsed time under ``name``."""
        return _Lap(self, name)

    def add(self, name: str, seconds: float) -> None:
        """Add ``seconds`` to lap ``name`` (creating it if needed)."""
        self.laps[name] = self.laps.get(name, 0.0) + float(seconds)

    @property
    def total(self) -> float:
        """Sum of all recorded laps, in seconds."""
        return sum(self.laps.values())

    def report(self) -> str:
        """Render laps as aligned ``name: seconds`` lines, longest first."""
        if not self.laps:
            return "(no laps recorded)"
        width = max(len(k) for k in self.laps)
        rows = sorted(self.laps.items(), key=lambda kv: -kv[1])
        return "\n".join(f"{k.ljust(width)} : {v:10.4f}s" for k, v in rows)


class _Lap:
    def __init__(self, watch: Stopwatch, name: str) -> None:
        self._watch = watch
        self._name = name
        self._start: Optional[float] = None

    def __enter__(self) -> "_Lap":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self._watch.add(self._name, time.perf_counter() - self._start)


def timed(watch: Stopwatch, name: Optional[str] = None) -> Callable[[F], F]:
    """Decorator recording each call's duration into ``watch``.

    The lap name defaults to the wrapped function's ``__name__``.
    """

    def decorate(fn: F) -> F:
        lap_name = name or fn.__name__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            start = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                watch.add(lap_name, time.perf_counter() - start)

        return wrapper  # type: ignore[return-value]

    return decorate
