"""Input-validation helpers shared across the library.

Validation failures raise :class:`~repro.util.errors.ConfigurationError`
with a message naming the offending argument, so errors surface at API
boundaries rather than deep inside a heuristic.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.util.errors import ConfigurationError


def check_binary_matrix(x: np.ndarray, name: str = "matrix") -> np.ndarray:
    """Validate that ``x`` is a 2-D 0/1 array and return it as ``int8``."""
    arr = np.asarray(x)
    if arr.ndim != 2:
        raise ConfigurationError(f"{name} must be 2-D, got shape {arr.shape}")
    # Elementwise compare instead of np.isin: same predicate, ~50x faster
    # on the large 0/1 matrices the scaling benchmarks feed through here.
    if arr.size and not ((arr == 0) | (arr == 1)).all():
        raise ConfigurationError(f"{name} must contain only 0/1 entries")
    return arr.astype(np.int8, copy=False)


def check_nonnegative(values: Sequence[float], name: str = "values") -> np.ndarray:
    """Validate that every entry of ``values`` is >= 0; return float array."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size and float(arr.min()) < 0:
        raise ConfigurationError(f"{name} must be non-negative")
    return arr


def check_positive(values: Sequence[float], name: str = "values") -> np.ndarray:
    """Validate that every entry of ``values`` is > 0; return float array."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size and float(arr.min()) <= 0:
        raise ConfigurationError(f"{name} must be strictly positive")
    return arr


def check_probability(p: float, name: str = "p") -> float:
    """Validate ``p`` lies in [0, 1]."""
    p = float(p)
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"{name} must lie in [0, 1], got {p}")
    return p


def check_symmetric(x: np.ndarray, name: str = "matrix", atol: float = 1e-9) -> np.ndarray:
    """Validate that ``x`` is a square symmetric matrix; return float array."""
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ConfigurationError(f"{name} must be square, got shape {arr.shape}")
    if arr.size and not np.allclose(arr, arr.T, atol=atol):
        raise ConfigurationError(f"{name} must be symmetric")
    return arr
