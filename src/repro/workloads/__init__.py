"""Workload generation: placements, sizes, capacities, scenario models.

* :mod:`repro.workloads.regular` — the paper's experimental workload:
  regular random placements (``r`` replicas per object, equal per-server
  counts) and reshuffled ``X_new`` with controlled overlap,
* :mod:`repro.workloads.sizes` — object-size distributions,
* :mod:`repro.workloads.capacity` — capacity policies (exact fit, slack),
* :mod:`repro.workloads.zipf` — Zipf popularity models,
* :mod:`repro.workloads.video` — the motivating distributed video-server
  scenario (daily popularity drift driving placement changes).
"""

from repro.workloads.regular import (
    regular_random_placement,
    regular_placement_pair,
    paper_instance,
)
from repro.workloads.sizes import constant_sizes, uniform_sizes, zipf_sizes
from repro.workloads.capacity import (
    exact_fit_capacities,
    max_load_capacities,
    with_extra_object_slack,
)
from repro.workloads.zipf import zipf_weights, sample_requests
from repro.workloads.video import VideoRotationModel, VideoCatalog
from repro.workloads.maintenance import drain_placement, drain_instance

__all__ = [
    "regular_random_placement",
    "regular_placement_pair",
    "paper_instance",
    "constant_sizes",
    "uniform_sizes",
    "zipf_sizes",
    "exact_fit_capacities",
    "max_load_capacities",
    "with_extra_object_slack",
    "zipf_weights",
    "sample_requests",
    "VideoRotationModel",
    "VideoCatalog",
    "drain_placement",
    "drain_instance",
]
