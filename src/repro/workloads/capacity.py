"""Server-capacity policies.

The paper's experiments pin capacities to the minimum sufficient for both
``X_old`` and ``X_new`` (zero slack — the deadlock-prone regime), then in
experiment 3 hand out one extra object's worth of space to a growing
number of random servers.
"""

from __future__ import annotations

import numpy as np

from repro.model.placement import loads
from repro.util.errors import ConfigurationError
from repro.util.rng import ensure_rng


def exact_fit_capacities(x: np.ndarray, sizes: np.ndarray) -> np.ndarray:
    """Capacity exactly equal to each server's load under ``x``."""
    return loads(x, sizes)


def max_load_capacities(
    x_old: np.ndarray, x_new: np.ndarray, sizes: np.ndarray
) -> np.ndarray:
    """Minimum capacity sufficient for both schemes (paper §5.2).

    Per server, the maximum of its ``X_old`` and ``X_new`` loads. With the
    paper's equal per-server replica counts and equal sizes the two loads
    coincide and this is a true zero-slack configuration.
    """
    return np.maximum(loads(x_old, sizes), loads(x_new, sizes))


def with_extra_object_slack(
    capacities: np.ndarray,
    sizes: np.ndarray,
    num_servers_with_slack: int,
    rng=None,
    slack: float = None,
) -> np.ndarray:
    """Give ``num_servers_with_slack`` random servers room for one more object.

    ``slack`` defaults to the largest object size, guaranteeing the extra
    space can host any single object (experiment 3 uses equal sizes, where
    this is exactly "capacity to store one more object").
    """
    capacities = np.asarray(capacities, dtype=np.float64)
    m = capacities.shape[0]
    if not 0 <= num_servers_with_slack <= m:
        raise ConfigurationError(
            f"num_servers_with_slack must be in [0, {m}], "
            f"got {num_servers_with_slack}"
        )
    gen = ensure_rng(rng)
    out = capacities.copy()
    if num_servers_with_slack == 0:
        return out
    amount = float(np.max(sizes)) if slack is None else float(slack)
    chosen = gen.choice(m, size=num_servers_with_slack, replace=False)
    out[chosen] += amount
    return out


def scaled_capacities(
    x_old: np.ndarray, x_new: np.ndarray, sizes: np.ndarray, factor: float
) -> np.ndarray:
    """Minimal capacities uniformly scaled by ``factor >= 1``.

    A smoother slack model than :func:`with_extra_object_slack`, used by
    the extension benchmarks.
    """
    if factor < 1.0:
        raise ConfigurationError("factor must be >= 1 to keep instances feasible")
    return max_load_capacities(x_old, x_new, sizes) * float(factor)
