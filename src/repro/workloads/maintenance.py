"""Maintenance workloads: draining and decommissioning servers.

A common production trigger for RTSP outside popularity drift: a server
must be emptied (hardware replacement, scale-in). ``X_new`` relocates
every replica held by the drained servers onto the remaining ones,
least-loaded first, leaving the drained servers empty.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.model.instance import RtspInstance
from repro.model.placement import loads
from repro.util.errors import ConfigurationError
from repro.util.rng import ensure_rng


def drain_placement(
    x_old: np.ndarray,
    sizes: np.ndarray,
    capacities: np.ndarray,
    drained: Sequence[int],
    rng=None,
) -> np.ndarray:
    """Relocate every replica off the ``drained`` servers.

    Each displaced replica moves to the surviving server with the most
    free space that does not already hold the object (ties broken
    randomly). Raises when the survivors cannot absorb the load.
    """
    x_old = np.asarray(x_old, dtype=np.int8)
    sizes = np.asarray(sizes, dtype=np.float64)
    capacities = np.asarray(capacities, dtype=np.float64)
    m = x_old.shape[0]
    drained_set = {int(s) for s in drained}
    if not drained_set:
        return x_old.copy()
    if any(not 0 <= s < m for s in drained_set):
        raise ConfigurationError("drained server index out of range")
    if len(drained_set) >= m:
        raise ConfigurationError("cannot drain every server")
    gen = ensure_rng(rng)

    x_new = x_old.copy()
    free = capacities - loads(x_new, sizes)
    # Largest replicas first: classic first-fit-decreasing to avoid
    # stranding big objects after small ones consumed the slack.
    moves = [
        (int(i), int(k))
        for i in sorted(drained_set)
        for k in np.flatnonzero(x_old[i])
    ]
    moves.sort(key=lambda ik: -float(sizes[ik[1]]))
    for i, k in moves:
        x_new[i, k] = 0
        free[i] += sizes[k]
        candidates = [
            j
            for j in range(m)
            if j not in drained_set
            and x_new[j, k] == 0
            and free[j] >= sizes[k]
        ]
        if not candidates:
            # the replica may simply be dropped if another copy survives
            if x_new[:, k].sum() > 0:
                continue
            raise ConfigurationError(
                f"survivors cannot absorb object {k} (size {sizes[k]:g})"
            )
        best_free = max(free[j] for j in candidates)
        top = [j for j in candidates if free[j] == best_free]
        j = int(top[int(gen.integers(0, len(top)))])
        x_new[j, k] = 1
        free[j] -= sizes[k]
    return x_new


def drain_instance(
    instance: RtspInstance,
    drained: Sequence[int],
    rng=None,
) -> RtspInstance:
    """RTSP instance for draining ``drained`` servers of ``instance``.

    ``X_old`` is the instance's *current* target (``x_new``) — the usual
    situation where maintenance interrupts a stable placement — and the
    new scheme is the drained relocation.
    """
    x_old = instance.x_new
    x_new = drain_placement(
        x_old, instance.sizes, instance.capacities, drained, rng=rng
    )
    return RtspInstance.create(
        instance.sizes,
        instance.capacities,
        instance.costs,
        x_old,
        x_new,
    )
