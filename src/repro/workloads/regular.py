"""Regular random placements — the paper's experimental workload (§5.1).

The experiments allocate each object to ``r`` servers uniformly at random
such that every server stores the same number of objects; ``X_new`` is a
reshuffle of ``X_old`` with a controlled replica overlap (0% in the
paper). This module generates such placement pairs with exact row/column
sums via greedy least-loaded assignment followed by 2-swap repair.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.model.instance import RtspInstance
from repro.network.brite import brite_paper_topology
from repro.network.costmatrix import cost_matrix_from_topology
from repro.util.errors import ConfigurationError
from repro.util.rng import ensure_rng
from repro.util.validation import check_probability
from repro.workloads.capacity import max_load_capacities
from repro.workloads.sizes import constant_sizes, uniform_sizes


def _row_targets(m: int, total: int, gen: np.random.Generator) -> np.ndarray:
    """Distribute ``total`` replicas over ``m`` servers as evenly as possible."""
    base = total // m
    targets = np.full(m, base, dtype=np.int64)
    extra = total - base * m
    if extra:
        targets[gen.choice(m, size=extra, replace=False)] += 1
    return targets


def _lift_targets_to_pins(
    targets: np.ndarray, pinned_counts: np.ndarray
) -> np.ndarray:
    """Raise row targets to at least the pinned counts, preserving the total.

    Pinned replicas cannot move, so a row's target must cover them; the
    excess is stolen from the rows with the most headroom, keeping the
    distribution as balanced as the pins allow.
    """
    targets = targets.copy()
    for i in np.flatnonzero(pinned_counts > targets):
        need = int(pinned_counts[i] - targets[i])
        targets[i] = pinned_counts[i]
        for _ in range(need):
            headroom = targets - pinned_counts
            j = int(np.argmax(headroom))
            if headroom[j] <= 0:
                raise ConfigurationError("pinned mask exceeds total capacity")
            targets[j] -= 1
    return targets


def regular_random_placement(
    num_servers: int,
    num_objects: int,
    replicas: int,
    rng=None,
    forbidden: Optional[np.ndarray] = None,
    pinned: Optional[np.ndarray] = None,
    max_repair_rounds: int = 100_000,
    attempts: int = 16,
) -> np.ndarray:
    """Random 0/1 placement with ``replicas`` copies per object and
    (near-)equal per-server counts.

    Parameters
    ----------
    forbidden:
        Optional 0/1 mask of cells that must stay 0 (used to enforce zero
        overlap against an existing placement).
    pinned:
        Optional 0/1 mask of cells that must be 1 (used to enforce a given
        overlap). Pinned cells count toward both row and column sums and
        override ``forbidden``.
    max_repair_rounds:
        Safety bound on the 2-swap row-balancing loop.
    attempts:
        The greedy fill plus swap repair can wedge itself on very tight
        pinned/forbidden combinations; the construction is retried with
        fresh randomness up to this many times before giving up.
    """
    gen = ensure_rng(rng)
    for _ in range(max(1, attempts)):
        try:
            return _attempt_regular_placement(
                num_servers,
                num_objects,
                replicas,
                gen,
                forbidden,
                pinned,
                max_repair_rounds,
            )
        except _RepairStuck:
            continue
    # Exact row balance can be genuinely unattainable under tight
    # pinned/forbidden combinations (e.g. tiny instances with partial
    # overlap); fall back to the best-effort greedy fill, which keeps the
    # rows as balanced as the constraints allow.
    return _attempt_regular_placement(
        num_servers,
        num_objects,
        replicas,
        gen,
        forbidden,
        pinned,
        max_repair_rounds,
        strict_balance=False,
    )


class _RepairStuck(Exception):
    """Internal: one construction attempt wedged; the caller retries."""


def _attempt_regular_placement(
    num_servers: int,
    num_objects: int,
    replicas: int,
    gen: np.random.Generator,
    forbidden: Optional[np.ndarray],
    pinned: Optional[np.ndarray],
    max_repair_rounds: int,
    strict_balance: bool = True,
) -> np.ndarray:
    m, n, r = num_servers, num_objects, replicas
    if r < 1 or r > m:
        raise ConfigurationError(f"replicas must be in [1, {m}], got {r}")
    forbidden_mask = (
        np.zeros((m, n), dtype=bool) if forbidden is None else forbidden.astype(bool)
    )
    x = np.zeros((m, n), dtype=np.int8)
    if pinned is not None:
        x[pinned.astype(bool)] = 1
        forbidden_mask = forbidden_mask & ~pinned.astype(bool)
    if (x.sum(axis=0) > r).any():
        raise ConfigurationError("pinned mask exceeds the per-object replica count")

    row_targets = _row_targets(m, n * r, gen)
    row_counts = x.sum(axis=1).astype(np.int64)
    if pinned is not None:
        row_targets = _lift_targets_to_pins(row_targets, row_counts)

    # Greedy fill: each object picks its missing replicas on the least
    # loaded (relative to target) eligible servers, random tie-break.
    order = gen.permutation(n)
    for k in order:
        need = r - int(x[:, k].sum())
        for _ in range(need):
            eligible = np.flatnonzero((x[:, k] == 0) & ~forbidden_mask[:, k])
            if eligible.size == 0:
                raise ConfigurationError(
                    f"no eligible server left for object {k}; "
                    "forbidden mask too restrictive"
                )
            deficits = row_targets[eligible] - row_counts[eligible]
            best = eligible[deficits == deficits.max()]
            i = int(best[gen.integers(0, best.size)])
            x[i, k] = 1
            row_counts[i] += 1

    if not strict_balance:
        return x

    # 2-swap repair: move replicas from overloaded to underloaded servers
    # (column sums are preserved; pinned replicas never move).
    pinned_mask = pinned.astype(bool) if pinned is not None else None
    for _ in range(max_repair_rounds):
        over = np.flatnonzero(row_counts > row_targets)
        if over.size == 0:
            break
        i = int(over[gen.integers(0, over.size)])
        under = np.flatnonzero(row_counts < row_targets)
        candidates = np.flatnonzero(x[i] == 1)
        if pinned_mask is not None:
            candidates = candidates[~pinned_mask[i, candidates]]
        gen.shuffle(candidates)
        moved = False
        for k in candidates:
            dests = under[(x[under, k] == 0) & ~forbidden_mask[under, k]]
            if dests.size:
                i2 = int(dests[gen.integers(0, dests.size)])
                x[i, k] = 0
                x[i2, k] = 1
                row_counts[i] -= 1
                row_counts[i2] += 1
                moved = True
                break
        if not moved:
            # Direct move impossible; relocate via a 3-way rotation:
            # i -> j (balanced server) for object k, j -> under for k'.
            done = False
            for k in candidates:
                mids = np.flatnonzero(
                    (x[:, k] == 0) & ~forbidden_mask[:, k] & (row_counts <= row_targets)
                )
                gen.shuffle(mids)
                for j in mids:
                    ks = np.flatnonzero(x[j] == 1)
                    if pinned_mask is not None:
                        ks = ks[~pinned_mask[j, ks]]
                    gen.shuffle(ks)
                    for k2 in ks:
                        dests = under[(x[under, k2] == 0) & ~forbidden_mask[under, k2]]
                        if dests.size:
                            i2 = int(dests[gen.integers(0, dests.size)])
                            x[i, k] = 0
                            x[j, k] = 1
                            x[j, k2] = 0
                            x[i2, k2] = 1
                            row_counts[i] -= 1
                            row_counts[i2] += 1
                            done = True
                            break
                    if done:
                        break
                if done:
                    break
            if not done:
                raise _RepairStuck(
                    "placement repair is stuck; constraints too tight"
                )
    else:
        raise _RepairStuck("placement repair did not converge")
    return x


def regular_placement_pair(
    num_servers: int,
    num_objects: int,
    replicas: int,
    overlap: float = 0.0,
    rng=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate ``(X_old, X_new)`` with per-object replica count
    ``replicas``, equal per-server counts, and the requested overlap.

    ``overlap`` is the fraction of ``X_new``'s replicas that coincide with
    ``X_old`` replicas (the paper uses 0.0: completely reshuffled).
    """
    overlap = check_probability(overlap, "overlap")
    gen = ensure_rng(rng)
    x_old = regular_random_placement(num_servers, num_objects, replicas, rng=gen)
    pinned = None
    if overlap > 0:
        keep = int(round(overlap * num_objects * replicas))
        coords = np.argwhere(x_old == 1)
        chosen = coords[gen.choice(coords.shape[0], size=keep, replace=False)]
        pinned = np.zeros_like(x_old)
        pinned[chosen[:, 0], chosen[:, 1]] = 1
    x_new = regular_random_placement(
        num_servers,
        num_objects,
        replicas,
        rng=gen,
        forbidden=x_old,
        pinned=pinned,
    )
    return x_old, x_new


def paper_instance(
    replicas: int,
    num_servers: int = 50,
    num_objects: int = 1000,
    object_size: float = 5000.0,
    uniform_size_range: Optional[Tuple[float, float]] = None,
    overlap: float = 0.0,
    extra_capacity_servers: int = 0,
    dummy_constant: float = 1.0,
    rng=None,
) -> RtspInstance:
    """One experiment cell of the paper's setup (§5.1).

    BRITE-like 50-node BA tree with U{1..10} link costs, shortest-path
    cost matrix, ``num_objects`` objects with ``replicas`` copies each,
    reshuffled placements with the given overlap, and minimal capacities
    (``max(load_old, load_new)`` per server). Experiment knobs:

    * ``uniform_size_range=(1000, 5000)`` reproduces experiment 2,
    * ``extra_capacity_servers=n`` gives ``n`` random servers room for one
      extra (max-size) object, reproducing experiment 3.
    """
    gen = ensure_rng(rng)
    topo = brite_paper_topology(n=num_servers, rng=gen)
    costs = cost_matrix_from_topology(topo)
    if uniform_size_range is None:
        sizes = constant_sizes(num_objects, object_size)
    else:
        sizes = uniform_sizes(
            num_objects, uniform_size_range[0], uniform_size_range[1], rng=gen
        )
    x_old, x_new = regular_placement_pair(
        num_servers, num_objects, replicas, overlap=overlap, rng=gen
    )
    capacities = max_load_capacities(x_old, x_new, sizes)
    if extra_capacity_servers:
        from repro.workloads.capacity import with_extra_object_slack

        capacities = with_extra_object_slack(
            capacities, sizes, extra_capacity_servers, rng=gen
        )
    return RtspInstance.create(
        sizes, capacities, costs, x_old, x_new, dummy_constant=dummy_constant
    )
