"""Object-size distributions.

The paper's experiment 1/3 use a constant size of 5000 data units;
experiment 2 varies sizes uniformly in [1000, 5000]. A Zipf-like size
distribution is provided for the video-server scenario (a few blockbusters
dominating storage).
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ConfigurationError
from repro.util.rng import ensure_rng


def constant_sizes(num_objects: int, value: float = 5000.0) -> np.ndarray:
    """All objects share one size (paper experiments 1 and 3)."""
    if value <= 0:
        raise ConfigurationError("object size must be positive")
    return np.full(num_objects, float(value), dtype=np.float64)


def uniform_sizes(
    num_objects: int, low: float = 1000.0, high: float = 5000.0, rng=None
) -> np.ndarray:
    """Sizes drawn uniformly from ``{low..high}`` (paper experiment 2).

    Integer draws: the paper's data units are discrete and integer sizes
    keep capacity arithmetic exact.
    """
    if not 0 < low <= high:
        raise ConfigurationError("need 0 < low <= high")
    gen = ensure_rng(rng)
    return gen.integers(int(low), int(high) + 1, size=num_objects).astype(np.float64)


def zipf_sizes(
    num_objects: int,
    base: float = 1000.0,
    peak: float = 8000.0,
    exponent: float = 0.8,
    rng=None,
) -> np.ndarray:
    """Heavy-tailed sizes: rank-``j`` object gets ``base + span/j^exponent``.

    Ranks are shuffled so size is independent of object id.
    """
    if not 0 < base <= peak:
        raise ConfigurationError("need 0 < base <= peak")
    gen = ensure_rng(rng)
    ranks = gen.permutation(num_objects) + 1
    span = peak - base
    return base + span / np.power(ranks.astype(np.float64), exponent)
