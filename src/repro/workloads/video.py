"""The distributed video-server scenario (paper §2.1).

The paper motivates RTSP with a distributed video server: popular movies
are replicated across servers; popularity drifts daily (old hits fade, new
releases arrive), so the placement is recomputed periodically and the
system must *implement* the new placement — which is exactly RTSP.

:class:`VideoRotationModel` simulates that loop: Zipf popularity over a
movie catalog, daily drift plus new releases, greedy placement per day,
and an :class:`~repro.model.instance.RtspInstance` for each day
transition, ready to be scheduled by any pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.model.instance import RtspInstance
from repro.network.costmatrix import cost_matrix_from_topology
from repro.network.brite import brite_paper_topology
from repro.placement.greedy import greedy_placement
from repro.util.errors import ConfigurationError
from repro.util.rng import ensure_rng
from repro.workloads.zipf import drift_weights, sample_requests, zipf_weights


@dataclass
class VideoCatalog:
    """A movie catalog with sizes and a popularity vector."""

    sizes: np.ndarray
    weights: np.ndarray

    def __post_init__(self) -> None:
        if self.sizes.shape != self.weights.shape:
            raise ConfigurationError("sizes and weights must align")

    @property
    def num_movies(self) -> int:
        return int(self.sizes.shape[0])

    def release(self, movie: int, rng=None) -> None:
        """A new release replaces ``movie``: it jumps to top popularity.

        Popularity mass is taken proportionally from every other movie so
        the vector stays normalised.
        """
        gen = ensure_rng(rng)
        boost = float(self.weights.max()) * (1.0 + 0.2 * gen.random())
        self.weights[movie] = boost
        self.weights /= self.weights.sum()


class VideoRotationModel:
    """Day-by-day placement churn for a distributed video server.

    Parameters
    ----------
    num_servers, num_movies:
        System size. The network is the paper's BRITE-like BA tree.
    movie_size:
        Uniform movie size in data units.
    capacity_movies:
        Per-server capacity expressed in movies.
    zipf_exponent:
        Popularity skew.
    drift, releases_per_day:
        Daily popularity churn: fraction of ranks shuffled, and number of
        catalog slots replaced by fresh releases.
    requests_per_day:
        Zipf samples drawn per day to form the demand matrix.
    """

    def __init__(
        self,
        num_servers: int = 20,
        num_movies: int = 100,
        movie_size: float = 5000.0,
        capacity_movies: int = 10,
        zipf_exponent: float = 0.9,
        drift: float = 0.1,
        releases_per_day: int = 2,
        requests_per_day: int = 20_000,
        dummy_constant: float = 1.0,
        rng=None,
    ) -> None:
        if capacity_movies * num_servers < num_movies:
            raise ConfigurationError(
                "total capacity must hold at least one replica per movie"
            )
        self._gen = ensure_rng(rng)
        self.num_servers = num_servers
        self.catalog = VideoCatalog(
            sizes=np.full(num_movies, float(movie_size)),
            weights=zipf_weights(num_movies, zipf_exponent),
        )
        self.capacities = np.full(num_servers, capacity_movies * float(movie_size))
        self.drift = drift
        self.releases_per_day = releases_per_day
        self.requests_per_day = requests_per_day
        self.dummy_constant = dummy_constant
        topo = brite_paper_topology(n=num_servers, rng=self._gen)
        self.costs = cost_matrix_from_topology(topo)
        self._placement = self._compute_placement()
        self.day = 0

    # ------------------------------------------------------------------
    @property
    def placement(self) -> np.ndarray:
        """Current placement matrix (copy)."""
        return self._placement.copy()

    def _compute_placement(self) -> np.ndarray:
        demand = sample_requests(
            self.catalog.weights,
            self.requests_per_day,
            self.num_servers,
            rng=self._gen,
        )
        return greedy_placement(
            self.costs,
            self.catalog.sizes,
            self.capacities,
            demand.astype(np.float64),
            rng=self._gen,
        )

    def advance_day(self) -> RtspInstance:
        """Advance popularity one day and return the day's RTSP instance.

        The instance's ``X_old`` is yesterday's placement and ``X_new``
        today's greedy placement under the drifted popularity.
        """
        self.day += 1
        self.catalog.weights = drift_weights(
            self.catalog.weights, self.drift, rng=self._gen
        )
        if self.releases_per_day:
            # New releases replace the currently least popular movies.
            losers = np.argsort(self.catalog.weights)[: self.releases_per_day]
            for movie in losers:
                self.catalog.release(int(movie), rng=self._gen)
        x_old = self._placement
        x_new = self._compute_placement()
        self._placement = x_new
        return RtspInstance.create(
            self.catalog.sizes,
            self.capacities,
            self.costs,
            x_old,
            x_new,
            dummy_constant=self.dummy_constant,
        )

    def days(self, count: int) -> Iterator[RtspInstance]:
        """Yield ``count`` consecutive daily RTSP instances."""
        for _ in range(count):
            yield self.advance_day()
