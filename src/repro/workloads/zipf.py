"""Zipf popularity models.

Client interest in movies/web objects is classically Zipf-distributed; the
motivating scenario of the paper (§2.1, distributed video server) changes
placement as popularity drifts. These helpers feed the placement
substrate in :mod:`repro.placement` and the video scenario in
:mod:`repro.workloads.video`.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ConfigurationError
from repro.util.rng import ensure_rng


def zipf_weights(num_objects: int, exponent: float = 0.8) -> np.ndarray:
    """Normalised Zipf weights: ``w_j ∝ 1 / rank_j^exponent``.

    Index 0 is the most popular object. Weights sum to 1.
    """
    if num_objects < 1:
        raise ConfigurationError("need at least one object")
    if exponent < 0:
        raise ConfigurationError("exponent must be non-negative")
    ranks = np.arange(1, num_objects + 1, dtype=np.float64)
    w = 1.0 / np.power(ranks, exponent)
    return w / w.sum()


def sample_requests(
    weights: np.ndarray, num_requests: int, num_clients: int, rng=None
) -> np.ndarray:
    """Sample a ``num_clients x num_objects`` request-count matrix.

    Each request picks a client uniformly and an object by ``weights``;
    entry ``[c, k]`` counts requests from client ``c`` for object ``k``.
    """
    gen = ensure_rng(rng)
    n = weights.shape[0]
    counts = np.zeros((num_clients, n), dtype=np.int64)
    clients = gen.integers(0, num_clients, size=num_requests)
    objects = gen.choice(n, size=num_requests, p=weights)
    np.add.at(counts, (clients, objects), 1)
    return counts


def drift_weights(
    weights: np.ndarray, drift: float, rng=None
) -> np.ndarray:
    """Evolve a popularity vector one epoch forward.

    A fraction ``drift`` of the probability mass is re-assigned by
    swapping ranks of randomly chosen object pairs, modelling movies
    rising and falling in the charts while the overall Zipf shape is
    preserved.
    """
    if not 0.0 <= drift <= 1.0:
        raise ConfigurationError("drift must lie in [0, 1]")
    gen = ensure_rng(rng)
    out = weights.copy()
    n = out.shape[0]
    num_swaps = int(round(drift * n / 2))
    for _ in range(num_swaps):
        a, b = gen.integers(0, n, size=2)
        out[a], out[b] = out[b], out[a]
    return out
