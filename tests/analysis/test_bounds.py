"""Tests for implementation-cost bounds."""

import numpy as np
import pytest

from repro.analysis.bounds import (
    nearest_source_bound,
    optimality_gap,
    universal_lower_bound,
    worst_case_upper_bound,
)
from repro.analysis.examples import fig1_deadlock_instance, fig3_example_instance
from repro.core import build_pipeline, solve_exact
from repro.model.instance import RtspInstance


@pytest.fixture(params=["fig1", "fig3"])
def example(request):
    return (
        fig1_deadlock_instance()
        if request.param == "fig1"
        else fig3_example_instance()
    )


class TestUniversalLowerBound:
    def test_below_exact_optimum(self, example):
        result = solve_exact(example, max_nodes=200_000)
        assert result.complete
        assert universal_lower_bound(example) <= result.cost + 1e-9

    def test_zero_when_nothing_outstanding(self):
        x = np.array([[1]], dtype=np.int8)
        inst = RtspInstance.create([1.0], [1.0], np.zeros((1, 1)), x, x)
        assert universal_lower_bound(inst) == 0.0

    def test_counts_each_outstanding_replica(self):
        # 2 outstanding unit objects, min cost 1 each
        x_old = np.array([[1, 1], [0, 0]], dtype=np.int8)
        x_new = np.array([[1, 1], [1, 1]], dtype=np.int8)
        costs = np.array([[0.0, 1.0], [1.0, 0.0]])
        inst = RtspInstance.create([1.0, 1.0], [2.0, 2.0], costs, x_old, x_new)
        assert universal_lower_bound(inst) == 2.0


class TestNearestSourceBound:
    def test_at_least_universal(self, example):
        assert (
            nearest_source_bound(example)
            >= universal_lower_bound(example) - 1e-9
        )

    def test_below_heuristic_cost(self, example):
        schedule = build_pipeline("GOLCF+H1+H2+OP1").run(example, rng=0)
        assert nearest_source_bound(example) <= schedule.cost(example) + 1e-9

    def test_below_exact_optimum_on_triangle_costs(self, example):
        # both example cost matrices obey the triangle inequality
        result = solve_exact(example, max_nodes=200_000)
        assert nearest_source_bound(example) <= result.cost + 1e-9


class TestWorstCaseUpperBound:
    def test_above_every_heuristic(self, example):
        ub = worst_case_upper_bound(example)
        for spec in ("RDF", "AR", "GOLCF"):
            schedule = build_pipeline(spec).run(example, rng=1)
            assert schedule.cost(example) <= ub + 1e-9

    def test_formula(self):
        x_old = np.array([[1], [0]], dtype=np.int8)
        x_new = np.array([[0], [1]], dtype=np.int8)
        costs = np.array([[0.0, 2.0], [2.0, 0.0]])
        inst = RtspInstance.create([5.0], [5.0, 5.0], costs, x_old, x_new)
        # one replica in X_new, size 5, dummy cost 3
        assert worst_case_upper_bound(inst) == 15.0


class TestOptimalityGap:
    def test_zero_gap_at_bound(self, example):
        lb = universal_lower_bound(example)
        assert optimality_gap(example, lb) == pytest.approx(0.0)

    def test_positive_gap(self, example):
        lb = universal_lower_bound(example)
        assert optimality_gap(example, 2 * lb) == pytest.approx(1.0)

    def test_zero_lower_bound(self):
        x = np.array([[1]], dtype=np.int8)
        inst = RtspInstance.create([1.0], [1.0], np.zeros((1, 1)), x, x)
        assert optimality_gap(inst, 0.0) == 0.0
