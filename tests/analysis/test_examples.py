"""Tests that the paper's example instances match their descriptions."""

import numpy as np
import pytest

from repro.analysis.examples import (
    OBJECTS,
    fig1_deadlock_instance,
    fig3_example_instance,
)
from repro.model.state import SystemState


class TestFig1:
    def test_dimensions(self):
        inst = fig1_deadlock_instance()
        assert inst.num_servers == 4
        assert inst.num_objects == 4

    def test_single_slot_servers(self):
        inst = fig1_deadlock_instance()
        assert (inst.capacities == 1.0).all()
        assert (inst.sizes == 1.0).all()

    def test_cyclic_shift(self):
        inst = fig1_deadlock_instance()
        # S_i holds O_i in X_old and wants O_{(i-1) mod 4} in X_new
        # (S1 <- D, S2 <- A, S3 <- B, S4 <- C, as in the paper)
        for i in range(4):
            assert inst.x_old[i, i] == 1
            assert inst.x_new[i, (i - 1) % 4] == 1
        assert inst.x_old.sum() == 4 and inst.x_new.sum() == 4

    def test_zero_overlap(self):
        inst = fig1_deadlock_instance()
        assert ((inst.x_old == 1) & (inst.x_new == 1)).sum() == 0

    def test_dummy_constant_scales_cost(self):
        cheap = fig1_deadlock_instance(dummy_constant=1.0)
        pricey = fig1_deadlock_instance(dummy_constant=3.0)
        assert pricey.dummy_cost == 3 * cheap.dummy_cost


class TestFig3:
    def test_placements_match_paper(self):
        inst = fig3_example_instance()
        A, B, C, D = (OBJECTS[x] for x in "ABCD")
        expect_old = {0: {A, B}, 1: {C, D}, 2: {B, C}, 3: {A, B}}
        expect_new = {0: {B, D}, 1: {A, B}, 2: {C, D}, 3: {C, D}}
        for server, objs in expect_old.items():
            assert set(np.flatnonzero(inst.x_old[server])) == objs
        for server, objs in expect_new.items():
            assert set(np.flatnonzero(inst.x_new[server])) == objs

    def test_stated_link_costs(self):
        inst = fig3_example_instance()
        # the paper explicitly states l_34 = 1 < l_14 = 2 (1-indexed)
        assert inst.costs[2, 3] == 1.0
        assert inst.costs[0, 3] == 2.0

    def test_source_choices_match_walkthrough(self):
        """The reconstructed costs reproduce every nearest-source decision
        the paper's §4.1 walkthroughs make."""
        inst = fig3_example_instance()
        A, B, C, D = (OBJECTS[x] for x in "ABCD")
        state = SystemState(inst)
        # GSDF considering S2 first: pulls A and B from S1
        assert state.nearest(1, A) == 0
        assert state.nearest(1, B) == 0
        # S4 pulls C from S3 (S2's copy assumed deleted in the walkthrough:
        # exclude it) and D from S3 over S1
        assert state.nearest(3, C, exclude=(1,)) == 2
        # after D is re-created at S1 and S3, S4 prefers S3 (l_34=1 < l_14=2)
        assert float(inst.costs[3, 2]) < float(inst.costs[3, 0])

    def test_zero_slack(self):
        inst = fig3_example_instance()
        assert (inst.old_loads() == inst.capacities).all()
        assert (inst.new_loads() == inst.capacities).all()

    def test_diff_counts(self):
        inst = fig3_example_instance()
        assert inst.diff_counts() == (6, 6)
