"""Tests for feasibility analysis."""

import numpy as np
import pytest

from repro.analysis.examples import fig1_deadlock_instance, fig3_example_instance
from repro.analysis.feasibility import (
    analyze_feasibility,
    deadlock_risk_servers,
    is_trivially_sequenceable,
    minimum_dummy_transfers,
)
from repro.model.instance import RtspInstance


def make(x_old, x_new, caps, sizes=None):
    x_old = np.asarray(x_old, dtype=np.int8)
    x_new = np.asarray(x_new, dtype=np.int8)
    m, n = x_old.shape
    sizes = np.ones(n) if sizes is None else np.asarray(sizes, float)
    costs = np.ones((m, m)) - np.eye(m)
    return RtspInstance.create(sizes, caps, costs, x_old, x_new)


class TestTriviallySequenceable:
    def test_ample_slack(self):
        inst = make([[1], [0]], [[1], [1]], caps=[2.0, 2.0])
        assert is_trivially_sequenceable(inst)

    def test_zero_slack_not_trivial(self):
        assert not is_trivially_sequenceable(fig1_deadlock_instance())

    def test_unsourced_object_not_trivial(self):
        inst = make([[0], [0]], [[1], [0]], caps=[1.0, 1.0])
        assert not is_trivially_sequenceable(inst)

    def test_no_changes_is_trivial(self):
        inst = make([[1], [0]], [[1], [0]], caps=[1.0, 1.0])
        assert is_trivially_sequenceable(inst)


class TestDeadlockRisk:
    def test_fig1_all_servers_at_risk(self):
        assert deadlock_risk_servers(fig1_deadlock_instance()) == [0, 1, 2, 3]

    def test_fig3_all_servers_at_risk(self):
        # Fig. 3 has zero slack everywhere too, but is resolvable
        assert len(deadlock_risk_servers(fig3_example_instance())) == 4

    def test_slack_removes_risk(self):
        inst = make([[1], [0]], [[1], [1]], caps=[1.0, 1.0])
        assert deadlock_risk_servers(inst) == []


class TestAnalyzeFeasibility:
    def test_fig1_summary(self):
        summary = analyze_feasibility(fig1_deadlock_instance())
        assert summary.storage_feasible
        assert not summary.trivially_sequenceable
        assert summary.transfer_cycle
        assert summary.zero_slack_servers == [0, 1, 2, 3]
        assert summary.deadlock_possible

    def test_benign_instance(self):
        inst = make([[1], [0]], [[1], [1]], caps=[2.0, 2.0])
        summary = analyze_feasibility(inst)
        assert summary.trivially_sequenceable
        assert not summary.deadlock_possible
        assert summary.forced_dummy_objects == set()

    def test_forced_dummies_counted(self):
        inst = make([[0, 1], [0, 0]], [[1, 1], [0, 0]], caps=[2.0, 2.0])
        summary = analyze_feasibility(inst)
        assert summary.forced_dummy_objects == {0}
        assert minimum_dummy_transfers(inst) == 1

    def test_zero_minimum_dummies(self):
        assert minimum_dummy_transfers(fig1_deadlock_instance()) == 0

    def test_storage_violation_reported_not_raised(self, monkeypatch):
        from repro.util.errors import InfeasibleInstanceError

        inst = make([[1], [0]], [[1], [1]], caps=[2.0, 2.0])
        monkeypatch.setattr(
            type(inst),
            "check_feasible",
            lambda self: (_ for _ in ()).throw(
                InfeasibleInstanceError("over capacity")
            ),
        )
        summary = analyze_feasibility(inst)
        assert not summary.storage_feasible

    def test_programming_errors_propagate(self, monkeypatch):
        # Only InfeasibleInstanceError means "storage infeasible"; a
        # genuine bug inside check_feasible must not be swallowed.
        inst = make([[1], [0]], [[1], [1]], caps=[2.0, 2.0])
        monkeypatch.setattr(
            type(inst),
            "check_feasible",
            lambda self: (_ for _ in ()).throw(TypeError("boom")),
        )
        with pytest.raises(TypeError, match="boom"):
            analyze_feasibility(inst)
