"""Tests for schedule metrics."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    count_dummy_transfers,
    implementation_cost,
    schedule_stats,
)
from repro.model.actions import Delete, Transfer
from repro.model.instance import RtspInstance
from repro.model.schedule import Schedule


@pytest.fixture
def inst():
    x_old = np.array([[1, 0], [0, 1]], dtype=np.int8)
    x_new = np.array([[0, 1], [1, 0]], dtype=np.int8)
    costs = np.array([[0.0, 2.0], [2.0, 0.0]])
    return RtspInstance.create([1.0, 1.0], [2.0, 2.0], costs, x_old, x_new)


@pytest.fixture
def schedule(inst):
    return Schedule(
        [
            Transfer(1, 0, 0),
            Delete(0, 0),
            Transfer(0, 1, inst.dummy),
            Delete(1, 1),
        ]
    )


class TestBasicMetrics:
    def test_cost(self, inst, schedule):
        # real transfer: 1*2; dummy transfer: 1*3
        assert implementation_cost(schedule, inst) == 5.0

    def test_dummy_count(self, inst, schedule):
        assert count_dummy_transfers(schedule, inst) == 1


class TestScheduleStats:
    def test_counts(self, inst, schedule):
        stats = schedule_stats(schedule, inst)
        assert stats.num_actions == 4
        assert stats.num_transfers == 2
        assert stats.num_deletions == 2
        assert stats.num_dummy_transfers == 1

    def test_cost_share(self, inst, schedule):
        stats = schedule_stats(schedule, inst)
        assert stats.cost == 5.0
        assert stats.dummy_cost_share == pytest.approx(3.0 / 5.0)

    def test_last_dummy_position(self, inst, schedule):
        assert schedule_stats(schedule, inst).max_position_dummy == 2

    def test_no_dummy_schedule(self, inst):
        s = Schedule([Transfer(1, 0, 0)])
        stats = schedule_stats(s, inst)
        assert stats.num_dummy_transfers == 0
        assert stats.dummy_cost_share == 0.0
        assert stats.max_position_dummy == -1

    def test_empty_schedule(self, inst):
        stats = schedule_stats(Schedule(), inst)
        assert stats.num_actions == 0
        assert stats.cost == 0.0
        assert stats.dummy_cost_share == 0.0

    def test_as_dict_roundtrip(self, inst, schedule):
        d = schedule_stats(schedule, inst).as_dict()
        assert d["num_transfers"] == 2
        assert d["cost"] == 5.0
        assert set(d) == {
            "num_actions",
            "num_transfers",
            "num_deletions",
            "num_dummy_transfers",
            "cost",
            "dummy_cost_share",
            "max_position_dummy",
        }
