"""Tests for the transfer graph (paper Fig. 1b)."""

import numpy as np
import pytest

from repro.analysis.examples import fig1_deadlock_instance
from repro.analysis.transfer_graph import (
    build_transfer_graph,
    has_transfer_cycle,
    objects_without_source,
    sole_source_arcs,
    transfer_graph_cycles,
)
from repro.model.instance import RtspInstance


def simple_instance(x_old, x_new, caps=None):
    x_old = np.asarray(x_old, dtype=np.int8)
    x_new = np.asarray(x_new, dtype=np.int8)
    m, n = x_old.shape
    caps = np.full(m, float(n)) if caps is None else np.asarray(caps, float)
    costs = np.ones((m, m)) - np.eye(m)
    return RtspInstance.create(np.ones(n), caps, costs, x_old, x_new)


class TestBuildGraph:
    def test_fig1_graph_is_a_cycle(self):
        g = build_transfer_graph(fig1_deadlock_instance())
        assert g.number_of_nodes() == 4
        assert g.number_of_edges() == 4
        assert all(g.out_degree(u) == 1 and g.in_degree(u) == 1 for u in g)

    def test_arc_per_source(self):
        # O0 replicated on S0 and S1; outstanding on S2 -> two arcs
        inst = simple_instance(
            [[1], [1], [0]],
            [[1], [1], [1]],
        )
        g = build_transfer_graph(inst)
        assert g.number_of_edges() == 2
        assert set(g.predecessors(2)) == {0, 1}

    def test_arcs_carry_object_labels(self):
        inst = simple_instance([[1], [0]], [[1], [1]])
        g = build_transfer_graph(inst)
        (_, _, data), = g.edges(data=True)
        assert data["obj"] == 0

    def test_no_outstanding_no_arcs(self):
        inst = simple_instance([[1], [0]], [[1], [0]])
        assert build_transfer_graph(inst).number_of_edges() == 0


class TestCycles:
    def test_fig1_has_cycle(self):
        assert has_transfer_cycle(fig1_deadlock_instance())

    def test_fig1_cycle_enumeration(self):
        cycles = transfer_graph_cycles(fig1_deadlock_instance())
        assert any(len(c) == 4 for c in cycles)

    def test_star_expansion_has_no_cycle(self):
        # one object spreading out: no cycle possible
        inst = simple_instance(
            [[1], [0], [0]],
            [[1], [1], [1]],
        )
        assert not has_transfer_cycle(inst)

    def test_cycle_limit_respected(self):
        cycles = transfer_graph_cycles(fig1_deadlock_instance(), limit=0)
        assert cycles == []


class TestFragileStructure:
    def test_sole_source_arcs(self):
        inst = simple_instance(
            [[1, 1], [0, 1], [0, 0]],
            [[1, 1], [0, 1], [1, 0]],
        )
        # O0 outstanding at S2, only S0 holds it
        assert sole_source_arcs(inst) == [(0, 2, 0)]

    def test_multi_source_not_fragile(self):
        inst = simple_instance(
            [[1], [1], [0]],
            [[1], [1], [1]],
        )
        assert sole_source_arcs(inst) == []

    def test_objects_without_source(self):
        inst = simple_instance(
            [[0, 1], [0, 0]],
            [[1, 1], [0, 0]],
        )
        assert objects_without_source(inst) == {0}

    def test_all_objects_sourced(self):
        assert objects_without_source(fig1_deadlock_instance()) == set()
