"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.examples import fig1_deadlock_instance, fig3_example_instance
from repro.model.instance import RtspInstance
from repro.workloads.regular import paper_instance


@pytest.fixture
def tiny_instance() -> RtspInstance:
    """Three servers, two unit objects, one outstanding replica.

    S0 holds O0, S1 holds O1; the new scheme moves O0 to S2. Capacities
    are loose so every action ordering is valid.
    """
    x_old = np.array([[1, 0], [0, 1], [0, 0]], dtype=np.int8)
    x_new = np.array([[0, 0], [0, 1], [1, 0]], dtype=np.int8)
    costs = np.array(
        [[0.0, 1.0, 2.0], [1.0, 0.0, 1.0], [2.0, 1.0, 0.0]]
    )
    return RtspInstance.create(
        sizes=[1.0, 1.0],
        capacities=[2.0, 2.0, 2.0],
        costs=costs,
        x_old=x_old,
        x_new=x_new,
    )


@pytest.fixture
def fig1() -> RtspInstance:
    """The paper's Fig. 1 deadlock instance."""
    return fig1_deadlock_instance()


@pytest.fixture
def fig3() -> RtspInstance:
    """The paper's Fig. 3 walkthrough instance."""
    return fig3_example_instance()


@pytest.fixture(scope="session")
def small_paper_instance() -> RtspInstance:
    """A small instance with the paper's workload structure (zero slack)."""
    return paper_instance(replicas=2, num_servers=10, num_objects=40, rng=123)


@pytest.fixture(scope="session")
def medium_paper_instance() -> RtspInstance:
    """A mid-size zero-slack instance for integration tests."""
    return paper_instance(replicas=2, num_servers=20, num_objects=100, rng=321)


def assert_valid(schedule, instance) -> None:
    """Assert a schedule is valid, with a useful failure message."""
    report = schedule.validate(instance)
    assert report.ok, f"invalid at {report.position}: {report.message}"
