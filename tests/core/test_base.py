"""Tests for the algorithm registry and shared building blocks."""

import numpy as np
import pytest

from repro.core.base import (
    available_builders,
    available_optimizers,
    get_builder,
    get_optimizer,
    golcf_benefit,
    shuffled_pairs,
)
from repro.model.state import SystemState
from repro.util.errors import ConfigurationError


class TestRegistry:
    def test_all_paper_builders_registered(self):
        assert set(available_builders()) >= {"RDF", "GSDF", "AR", "GOLCF"}

    def test_gmc_extension_registered(self):
        assert "GMC" in available_builders()

    def test_all_paper_optimizers_registered(self):
        assert set(available_optimizers()) >= {"H1", "H2", "OP1"}

    def test_get_builder_case_insensitive(self):
        assert get_builder("golcf").name == "GOLCF"

    def test_every_registered_builder_resolves(self):
        for name in available_builders():
            builder = get_builder(name.lower())
            assert builder.name == name

    def test_get_optimizer_case_insensitive(self):
        assert get_optimizer("op1").name == "OP1"

    def test_unknown_builder(self):
        with pytest.raises(ConfigurationError, match="available"):
            get_builder("NOPE")

    def test_unknown_builder_lists_known_names(self):
        with pytest.raises(ConfigurationError, match="GOLCF"):
            get_builder("NOPE")

    def test_unknown_optimizer(self):
        with pytest.raises(ConfigurationError):
            get_optimizer("NOPE")

    def test_non_string_builder_name(self):
        with pytest.raises(ConfigurationError, match="string"):
            get_builder(3)

    def test_non_string_optimizer_name(self):
        with pytest.raises(ConfigurationError, match="string"):
            get_optimizer(None)

    def test_fresh_instances_each_call(self):
        assert get_builder("RDF") is not get_builder("RDF")


class TestShuffledPairs:
    def test_covers_all_ones(self):
        mask = np.array([[1, 0], [0, 1], [1, 1]], dtype=np.int8)
        pairs = shuffled_pairs(mask, rng=0)
        assert sorted(pairs) == [(0, 0), (1, 1), (2, 0), (2, 1)]

    def test_deterministic_under_seed(self):
        mask = np.ones((3, 3), dtype=np.int8)
        assert shuffled_pairs(mask, rng=4) == shuffled_pairs(mask, rng=4)

    def test_order_varies_across_seeds(self):
        mask = np.ones((5, 5), dtype=np.int8)
        assert shuffled_pairs(mask, rng=1) != shuffled_pairs(mask, rng=2)

    def test_empty_mask(self):
        assert shuffled_pairs(np.zeros((2, 2), dtype=np.int8), rng=0) == []


class TestGolcfBenefit:
    def test_counts_only_waiting_servers_with_this_nearest(self, fig3):
        state = SystemState(fig3)
        # object B (=1) superfluous at S3 (index 2); pending at S1 (index 1)
        pending = {1: {1}}
        benefit = golcf_benefit(fig3, state, 2, 1, pending)
        # S1's nearest source of B is S0 (cost 1), not S2 -> zero benefit
        assert benefit == 0.0

    def test_positive_benefit_for_sole_nearest(self, fig3):
        state = SystemState(fig3)
        # object C (=2): replicators S1 (cost 2 from S3) and S2 (cost 1);
        # S3 (index 3) waits. Deleting S2's copy forces cost 3->? via S1.
        pending = {2: {3}}
        benefit = golcf_benefit(fig3, state, 2, 2, pending)
        # nearest for S3 is S2 (cost 1), second nearest S1 (cost 3)
        assert benefit == pytest.approx(1.0 * (3.0 - 1.0))

    def test_zero_when_no_pending(self, fig3):
        state = SystemState(fig3)
        assert golcf_benefit(fig3, state, 2, 1, {}) == 0.0
        assert golcf_benefit(fig3, state, 2, 1, {1: set()}) == 0.0
