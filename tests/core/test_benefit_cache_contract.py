"""EvictionBenefitCache invalidation contract (see its docstring).

The cache keys eq. 4 benefits on ``(index.versions[obj],
len(waiting[obj]))``. The contract: every replicator-set mutation flows
through the state before the next ``get``, and waiting sets only ever
shrink. Under those rules a stamp can never repeat with different
underlying sets — even when *several* actions land between queries, as
the wave-batched flat builders do — so stale hits are impossible.

These tests pin both sides: batched deliveries between queries force a
recompute that matches a from-scratch ``keep_benefit``, and an unchanged
stamp serves the memoized value without recomputation.
"""

import numpy as np

from repro.core.builders.common import EvictionBenefitCache
from repro.model.instance import RtspInstance
from repro.model.state import SystemState
from repro.obs.context import use_metrics
from repro.obs.metrics import MetricsRegistry


def _instance() -> RtspInstance:
    rng = np.random.default_rng(17)
    m, n = 6, 8
    sizes = rng.integers(1, 4, size=n).astype(float)
    costs = rng.integers(1, 12, size=(m, m)).astype(float)
    costs = (costs + costs.T) / 2
    np.fill_diagonal(costs, 0.0)
    x_old = (rng.random((m, n)) < 0.5).astype(np.int8)
    x_new = (rng.random((m, n)) < 0.5).astype(np.int8)
    caps = np.maximum(x_old @ sizes, x_new @ sizes) + 6
    return RtspInstance.create(sizes, caps, costs, x_old, x_new)


def _fresh_benefit(state, target, obj, waiting) -> float:
    return state.index.keep_benefit(target, obj, waiting[obj])


def test_batched_deliveries_invalidate_before_next_get():
    inst = _instance()
    state = SystemState(inst)
    obj = 0
    # Waiting targets: servers that don't hold obj (besides the ones we
    # will deliver to below).
    absent = [
        s for s in range(inst.num_servers) if not state.holds(s, obj)
    ]
    assert len(absent) >= 3, "workload draw left too few absent servers"
    waiting = {obj: set(absent)}
    target = next(s for s in range(inst.num_servers) if state.holds(s, obj))
    cache = EvictionBenefitCache(state, waiting)

    first = cache.get(target, obj)
    assert first == _fresh_benefit(state, target, obj, waiting)

    # A wave of deliveries lands between queries — no get() in between,
    # exactly the flat builders' batching. Each delivery bumps the
    # version counter and shrinks the waiting set.
    delivered = absent[:2]
    for s in delivered:
        state.apply_transfer_trusted(s, obj)
        waiting[obj].discard(s)

    second = cache.get(target, obj)
    assert second == _fresh_benefit(state, target, obj, waiting)


def test_unchanged_stamp_serves_memoized_value():
    inst = _instance()
    state = SystemState(inst)
    obj = 1
    absent = [
        s for s in range(inst.num_servers) if not state.holds(s, obj)
    ]
    holder = next(
        s for s in range(inst.num_servers) if state.holds(s, obj)
    )
    waiting = {obj: set(absent)}

    registry = MetricsRegistry()
    with use_metrics(registry):
        cache = EvictionBenefitCache(state, waiting)
        a = cache.get(holder, obj)
        b = cache.get(holder, obj)
    assert a == b
    assert registry.counter("builder.benefit_cache_misses").value == 1
    assert registry.counter("builder.benefit_cache_hits").value == 1


def test_version_bump_with_restored_set_still_recomputes():
    # Deliver then evict the same server: the replicator set returns to
    # its original value but the version counter advanced twice, so the
    # stamp differs and the cache recomputes (to the same number). This
    # is the monotonicity that makes wave batching safe.
    inst = _instance()
    state = SystemState(inst)
    obj = 2
    absent = [
        s for s in range(inst.num_servers) if not state.holds(s, obj)
    ]
    holder = next(
        s for s in range(inst.num_servers) if state.holds(s, obj)
    )
    waiting = {obj: set(absent)}

    registry = MetricsRegistry()
    with use_metrics(registry):
        cache = EvictionBenefitCache(state, waiting)
        before = cache.get(holder, obj)
        bounce = absent[0]
        state.apply_transfer_trusted(bounce, obj)
        state.apply_delete_trusted(bounce, obj)
        after = cache.get(holder, obj)
    assert before == after
    assert registry.counter("builder.benefit_cache_misses").value == 2
    assert registry.counter("builder.benefit_cache_hits").value == 0


def test_waiting_shrink_changes_stamp_even_without_version_bump():
    inst = _instance()
    state = SystemState(inst)
    obj = 3
    absent = [
        s for s in range(inst.num_servers) if not state.holds(s, obj)
    ]
    assert len(absent) >= 2
    holder = next(
        s for s in range(inst.num_servers) if state.holds(s, obj)
    )
    waiting = {obj: set(absent)}
    cache = EvictionBenefitCache(state, waiting)
    cache.get(holder, obj)
    # Shrink the waiting set without touching the replicator set (a
    # delivery to a server that was already a holder cannot do this, so
    # emulate a builder crossing a target off after a dummy-sourced
    # transfer recorded elsewhere).
    waiting[obj].discard(absent[0])
    recomputed = cache.get(holder, obj)
    assert recomputed == _fresh_benefit(state, holder, obj, waiting)
