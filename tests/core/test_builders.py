"""Tests for the four schedule builders (RDF, GSDF, AR, GOLCF)."""

import numpy as np
import pytest

from repro.core import build_pipeline, get_builder
from repro.model.actions import Delete, Transfer, is_delete, is_transfer
from repro.workloads.regular import paper_instance

BUILDERS = ["RDF", "GSDF", "AR", "GOLCF"]


@pytest.fixture(scope="module")
def instance():
    return paper_instance(replicas=2, num_servers=8, num_objects=24, rng=99)


@pytest.mark.parametrize("name", BUILDERS)
class TestAllBuilders:
    def test_produces_valid_schedule(self, name, instance):
        schedule = get_builder(name).build(instance, rng=0)
        report = schedule.validate(instance)
        assert report.ok, f"{name}: {report.message} @ {report.position}"

    def test_valid_on_deadlock_instance(self, name, fig1):
        schedule = get_builder(name).build(fig1, rng=0)
        assert schedule.validate(fig1).ok

    def test_valid_on_fig3(self, name, fig3):
        schedule = get_builder(name).build(fig3, rng=0)
        assert schedule.validate(fig3).ok

    def test_action_counts(self, name, instance):
        schedule = get_builder(name).build(instance, rng=1)
        outstanding, superfluous = instance.diff_counts()
        assert len(schedule.transfers()) == outstanding
        assert len(schedule.deletions()) == superfluous

    def test_deterministic_under_seed(self, name, instance):
        a = get_builder(name).build(instance, rng=7)
        b = get_builder(name).build(instance, rng=7)
        assert a == b

    def test_varies_across_seeds(self, name, instance):
        a = get_builder(name).build(instance, rng=1)
        b = get_builder(name).build(instance, rng=2)
        assert a != b

    def test_transfers_target_outstanding_cells(self, name, instance):
        schedule = get_builder(name).build(instance, rng=3)
        outstanding = instance.outstanding()
        for t in schedule.transfers():
            assert outstanding[t.target, t.obj] == 1

    def test_deletions_cover_superfluous_cells(self, name, instance):
        schedule = get_builder(name).build(instance, rng=3)
        superfluous = instance.superfluous()
        deleted = {(d.server, d.obj) for d in schedule.deletions()}
        expected = {
            (int(i), int(k)) for i, k in zip(*np.nonzero(superfluous))
        }
        assert deleted == expected

    def test_no_op_instance(self, name):
        inst = paper_instance(replicas=2, num_servers=6, num_objects=12, rng=4)
        from repro.model.instance import RtspInstance

        same = RtspInstance.create(
            inst.sizes, inst.capacities, inst.costs, inst.x_old, inst.x_old
        )
        schedule = get_builder(name).build(same, rng=0)
        assert len(schedule) == 0
        assert schedule.validate(same).ok


class TestRdfStructure:
    def test_all_deletions_precede_all_transfers(self, instance):
        schedule = get_builder("RDF").build(instance, rng=5)
        kinds = [is_transfer(a) for a in schedule]
        first_transfer = kinds.index(True)
        assert all(kinds[first_transfer:])

    def test_uses_nearest_available_source(self, instance):
        schedule = get_builder("RDF").build(instance, rng=5)
        state = instance and None
        # replay and check each transfer's source is the then-nearest
        from repro.model.state import SystemState

        state = SystemState(instance)
        for action in schedule:
            if is_transfer(action):
                assert action.source == state.nearest(action.target, action.obj)
            state.apply(action)


class TestGsdfStructure:
    def test_server_grouping(self, instance):
        """Actions appear in contiguous per-server groups: deletions of a
        server immediately followed by its transfers."""
        schedule = get_builder("GSDF").build(instance, rng=5)
        # group key: deletions/transfers both belong to their server
        order = []
        for a in schedule:
            server = a.server if is_delete(a) else a.target
            if not order or order[-1] != server:
                order.append(server)
        # each server appears at most once in the group sequence
        assert len(order) == len(set(order))

    def test_within_group_deletions_first(self, instance):
        schedule = get_builder("GSDF").build(instance, rng=6)
        current, seen_transfer = None, False
        for a in schedule:
            server = a.server if is_delete(a) else a.target
            if server != current:
                current, seen_transfer = server, False
            if is_transfer(a):
                seen_transfer = True
            else:
                assert not seen_transfer, "deletion after transfer in group"

    def test_first_server_never_uses_dummy(self, fig3):
        for seed in range(20):
            schedule = get_builder("GSDF").build(fig3, rng=seed)
            first_server = None
            for a in schedule:
                server = a.server if is_delete(a) else a.target
                if first_server is None:
                    first_server = server
                if server != first_server:
                    break
                if is_transfer(a):
                    assert a.source != fig3.dummy


class TestArStructure:
    def test_deletions_are_lazy(self, instance):
        """AR deletes only when space is needed: every deletion that is
        not in the final flush is immediately useful for its server."""
        schedule = get_builder("AR").build(instance, rng=8)
        # the schedule interleaves; at minimum it must not be RDF-shaped
        # for tight instances: some transfer happens before some deletion.
        kinds = [is_transfer(a) for a in schedule]
        first_transfer = kinds.index(True)
        assert not all(kinds[first_transfer:])

    def test_final_flush_deletes_leftovers(self, instance):
        schedule = get_builder("AR").build(instance, rng=8)
        report = schedule.validate(instance)
        assert report.ok


class TestGolcfStructure:
    def test_object_at_a_time(self, instance):
        """Transfers of each object form one contiguous block."""
        schedule = get_builder("GOLCF").build(instance, rng=9)
        transfer_objs = [a.obj for a in schedule if is_transfer(a)]
        seen = set()
        current = None
        for obj in transfer_objs:
            if obj != current:
                assert obj not in seen, f"object {obj} split into blocks"
                seen.add(obj)
                current = obj

    def test_lowest_cost_target_chosen_each_step(self, instance):
        """Each transfer goes to the pending target with the cheapest
        nearest-source cost *at that moment* (later transfers can be
        cheaper once the fresh replica becomes a nearby source)."""
        from repro.model.state import SystemState

        schedule = get_builder("GOLCF").build(instance, rng=9)
        # remaining targets per object, in schedule order
        remaining = {}
        for a in schedule.transfers():
            remaining.setdefault(a.obj, []).append(a.target)
        state = SystemState(instance)
        for action in schedule:
            if is_transfer(action):
                pending = remaining[action.obj]
                best = min(
                    state.nearest_cost(t, action.obj) for t in pending
                )
                chosen = state.nearest_cost(action.target, action.obj)
                assert chosen == pytest.approx(best)
                pending.remove(action.target)
            state.apply(action)

    def test_beats_ar_on_average_cost(self):
        inst = paper_instance(replicas=2, num_servers=10, num_objects=40, rng=55)
        golcf = np.mean(
            [
                build_pipeline("GOLCF").run(inst, rng=s).cost(inst)
                for s in range(5)
            ]
        )
        ar = np.mean(
            [build_pipeline("AR").run(inst, rng=s).cost(inst) for s in range(5)]
        )
        assert golcf < ar
