"""Tests for the RTSP-decision API (paper §3.4's decision problem)."""

import pytest

from repro.core import solve_exact
from repro.core.exact import decide_rtsp
from repro.npc import (
    KnapsackInstance,
    decision_threshold,
    reduce_knapsack_to_rtsp,
    solve_knapsack,
)


class TestDecideRtsp:
    def test_yes_at_the_optimum(self, fig1):
        opt = solve_exact(fig1).cost
        assert decide_rtsp(fig1, opt) is True

    def test_yes_at_exact_budget(self, fig1):
        opt = solve_exact(fig1).cost
        assert decide_rtsp(fig1, opt + 10.0) is True

    def test_no_below_the_optimum(self, fig1):
        opt = solve_exact(fig1).cost
        assert decide_rtsp(fig1, opt - 0.5) is False

    def test_no_at_zero_budget_with_work_to_do(self, fig3):
        assert decide_rtsp(fig3, 0.0) is False

    def test_yes_at_zero_budget_for_noop(self):
        import numpy as np

        from repro.model.instance import RtspInstance

        x = np.array([[1]], dtype=np.int8)
        inst = RtspInstance.create([1.0], [1.0], np.zeros((1, 1)), x, x)
        assert decide_rtsp(inst, 0.0) is True

    def test_uncertified_when_budget_exhausted(self, fig3):
        opt = solve_exact(fig3).cost
        assert decide_rtsp(fig3, opt - 1.0, max_nodes=3) is None

    def test_monotone_in_budget(self, fig3):
        opt = solve_exact(fig3).cost
        answers = [
            decide_rtsp(fig3, b)
            for b in (opt - 1.0, opt, opt + 5.0)
        ]
        assert answers == [False, True, True]


class TestKnapsackDecisionBridge:
    """The paper's reduction, exercised through the decision API: the
    Knapsack-decision answer transfers to RTSP-decision at the paper's
    threshold."""

    @pytest.fixture(scope="class")
    def setup(self):
        knap = KnapsackInstance.create(
            benefits=[3, 2, 4], sizes=[2, 3, 4], capacity=5
        )
        return knap, reduce_knapsack_to_rtsp(knap), solve_knapsack(knap)

    def test_yes_at_k_equal_optimum(self, setup):
        knap, reduction, dp = setup
        threshold = decision_threshold(knap, dp.value)
        assert decide_rtsp(
            reduction.rtsp, threshold, allow_staging=False
        ) is True

    def test_no_above_optimum_value(self, setup):
        knap, reduction, dp = setup
        threshold = decision_threshold(knap, dp.value + 1)
        assert decide_rtsp(
            reduction.rtsp, threshold, allow_staging=False
        ) is False
