"""Tests for the exact branch-and-bound solver."""

import numpy as np
import pytest

from repro.analysis.bounds import universal_lower_bound
from repro.core import build_pipeline, solve_exact
from repro.core.exact import ExactSolver
from repro.model.actions import Delete, Transfer
from repro.model.instance import RtspInstance
from repro.model.schedule import Schedule


def swap_instance(cost=2.0):
    """Two full servers that must swap their objects via staging/dummy."""
    x_old = np.array([[1, 0], [0, 1]], dtype=np.int8)
    x_new = np.array([[0, 1], [1, 0]], dtype=np.int8)
    costs = np.array([[0.0, cost], [cost, 0.0]])
    return RtspInstance.create([1.0, 1.0], [1.0, 1.0], costs, x_old, x_new)


class TestOptimality:
    def test_fig1_optimum(self, fig1):
        result = solve_exact(fig1)
        assert result.complete
        # one unavoidable dummy (cost 2 = a*(1+1)) + three unit transfers
        assert result.cost == 5.0
        assert result.schedule.validate(fig1).ok
        assert result.schedule.count_dummy_transfers(fig1) == 1

    def test_fig3_optimum_below_heuristics(self, fig3):
        result = solve_exact(fig3)
        assert result.complete
        assert result.schedule.validate(fig3).ok
        for spec in ("RDF", "GOLCF", "GOLCF+H1+H2+OP1"):
            for seed in range(3):
                heuristic = build_pipeline(spec).run(fig3, rng=seed)
                assert result.cost <= heuristic.cost(fig3) + 1e-9

    def test_respects_universal_lower_bound(self, fig3):
        result = solve_exact(fig3)
        assert result.cost >= universal_lower_bound(fig3) - 1e-9

    def test_trivial_instance(self):
        x = np.array([[1]], dtype=np.int8)
        inst = RtspInstance.create([1.0], [1.0], np.zeros((1, 1)), x, x)
        result = solve_exact(inst)
        assert result.complete
        assert result.cost == 0.0
        assert len(result.schedule) == 0

    def test_single_transfer_instance(self, tiny_instance):
        result = solve_exact(tiny_instance)
        assert result.complete
        # nearest source: S0 at cost 2 (size 1)
        assert result.cost == 2.0


class TestSwapScenarios:
    def test_swap_needs_one_dummy_without_spare(self):
        inst = swap_instance()
        result = solve_exact(inst)
        assert result.complete
        assert result.schedule.validate(inst).ok
        # optimal: break the cycle once via the dummy, cascade the rest:
        # D(0,O0), T(0,O1,S1) real, D(1,O1), T(1,O0,dummy)
        assert result.schedule.count_dummy_transfers(inst) == 1
        assert result.cost == pytest.approx(2.0 + 3.0)

    def test_swap_with_spare_server_avoids_dummies(self):
        # add an empty third server: staging beats the dummy
        x_old = np.array([[1, 0], [0, 1], [0, 0]], dtype=np.int8)
        x_new = np.array([[0, 1], [1, 0], [0, 0]], dtype=np.int8)
        costs = np.array(
            [[0.0, 2.0, 1.0], [2.0, 0.0, 1.0], [1.0, 1.0, 0.0]]
        )
        inst = RtspInstance.create(
            [1.0, 1.0], [1.0, 1.0, 1.0], costs, x_old, x_new
        )
        result = solve_exact(inst, allow_staging=True)
        assert result.complete
        assert result.schedule.count_dummy_transfers(inst) == 0
        # stage O0 on S2 (1), move O1 to S0 (2), move staged O0 to S1 (1)
        assert result.cost == pytest.approx(4.0)

    def test_staging_disabled_falls_back_to_dummy(self):
        x_old = np.array([[1, 0], [0, 1], [0, 0]], dtype=np.int8)
        x_new = np.array([[0, 1], [1, 0], [0, 0]], dtype=np.int8)
        costs = np.array(
            [[0.0, 2.0, 1.0], [2.0, 0.0, 1.0], [1.0, 1.0, 0.0]]
        )
        inst = RtspInstance.create(
            [1.0, 1.0], [1.0, 1.0, 1.0], costs, x_old, x_new
        )
        unstaged = solve_exact(inst, allow_staging=False)
        staged = solve_exact(inst, allow_staging=True)
        assert staged.cost < unstaged.cost


class TestBudgetsAndSeeding:
    def test_initial_schedule_seeds_incumbent(self, fig3):
        seed = build_pipeline("GOLCF+H1+H2+OP1").run(fig3, rng=0)
        result = solve_exact(fig3, initial=seed)
        assert result.complete
        assert result.cost <= seed.cost(fig3)

    def test_invalid_initial_ignored(self, fig3):
        bogus = Schedule([Delete(0, 3)])  # invalid for fig3
        result = solve_exact(fig3, initial=bogus, max_nodes=200_000)
        assert result.schedule.validate(fig3).ok

    def test_node_budget_returns_incomplete(self, fig3):
        seed = build_pipeline("GOLCF").run(fig3, rng=0)
        result = solve_exact(fig3, initial=seed, max_nodes=5)
        assert not result.complete
        # still returns the seed (or better)
        assert result.schedule.validate(fig3).ok

    def test_budget_without_seed_reports_failure(self, fig1):
        solver = ExactSolver(max_nodes=1)
        result = solver.solve(fig1)
        assert not result.complete
        assert result.cost == np.inf

    def test_nodes_counted(self, fig1):
        result = solve_exact(fig1)
        assert result.nodes > 0
