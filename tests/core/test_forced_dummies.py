"""Tests: objects with no source anywhere force exactly one dummy each.

When an outstanding object has no replicator in ``X_old`` (a brand-new
movie, in the paper's motivation), its first copy can only come from the
dummy/archival server. H1 and H2 must leave that dummy alone — there is
nothing to restore it from — while still eliminating every *avoidable*
dummy, and further copies must chain off the first real replica.
"""

import numpy as np
import pytest

from repro.analysis.feasibility import minimum_dummy_transfers
from repro.core import build_pipeline
from repro.model.instance import RtspInstance


@pytest.fixture
def new_release_instance():
    """O0 is brand new (no replica anywhere); O1/O2 merely reshuffle."""
    x_old = np.array(
        [[0, 1, 0], [0, 0, 1], [0, 0, 0]], dtype=np.int8
    )
    x_new = np.array(
        [[1, 0, 0], [1, 1, 0], [1, 0, 1]], dtype=np.int8
    )
    costs = np.array(
        [[0.0, 1.0, 2.0], [1.0, 0.0, 1.0], [2.0, 1.0, 0.0]]
    )
    return RtspInstance.create(
        [1.0, 1.0, 1.0], [3.0, 3.0, 3.0], costs, x_old, x_new
    )


class TestForcedDummies:
    def test_floor_is_one(self, new_release_instance):
        assert minimum_dummy_transfers(new_release_instance) == 1

    @pytest.mark.parametrize(
        "spec",
        ["RDF+H1+H2", "AR+H1+H2", "GOLCF+H1+H2", "GOLCF+H1+H2+OP1"],
    )
    def test_optimized_pipelines_hit_the_floor(self, new_release_instance, spec):
        inst = new_release_instance
        for seed in range(5):
            schedule = build_pipeline(spec).run(inst, rng=seed)
            assert schedule.validate(inst).ok
            assert schedule.count_dummy_transfers(inst) == 1, (spec, seed)

    def test_later_copies_chain_off_the_first(self, new_release_instance):
        """Only O0's *first* copy is a dummy transfer; the other two
        targets fetch from real replicas."""
        inst = new_release_instance
        schedule = build_pipeline("GOLCF+H1+H2").run(inst, rng=0)
        o0_transfers = [t for t in schedule.transfers() if t.obj == 0]
        assert len(o0_transfers) == 3
        dummies = [t for t in o0_transfers if t.source == inst.dummy]
        assert len(dummies) == 1
        assert o0_transfers[0].source == inst.dummy
