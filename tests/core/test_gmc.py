"""Tests for GMC (global minimum-cost-first builder, extension)."""

import numpy as np
import pytest

from repro.core import build_pipeline, get_builder
from repro.model.actions import Transfer, is_transfer
from repro.model.state import SystemState
from repro.workloads.regular import paper_instance


@pytest.fixture(scope="module")
def instance():
    return paper_instance(replicas=2, num_servers=10, num_objects=30, rng=23)


class TestGmc:
    def test_registered(self):
        assert get_builder("GMC").name == "GMC"

    def test_produces_valid_schedule(self, instance):
        for seed in range(5):
            schedule = get_builder("GMC").build(instance, rng=seed)
            report = schedule.validate(instance)
            assert report.ok, report.message

    def test_valid_on_paper_examples(self, fig1, fig3):
        for inst in (fig1, fig3):
            schedule = get_builder("GMC").build(inst, rng=0)
            assert schedule.validate(inst).ok

    def test_action_counts(self, instance):
        schedule = get_builder("GMC").build(instance, rng=1)
        outstanding, superfluous = instance.diff_counts()
        assert len(schedule.transfers()) == outstanding
        assert len(schedule.deletions()) == superfluous

    def test_globally_cheapest_chosen_each_step(self, instance):
        """Each transfer is the cheapest pending transfer at its moment."""
        schedule = get_builder("GMC").build(instance, rng=2)
        remaining = {}
        for t in schedule.transfers():
            remaining.setdefault(t.obj, set()).add(t.target)
        state = SystemState(instance)
        for action in schedule:
            if is_transfer(action):
                chosen = float(
                    instance.sizes[action.obj]
                    * instance.costs[action.target, action.source]
                )
                best = min(
                    float(
                        instance.sizes[k] * instance.costs[i, state.nearest(i, k)]
                    )
                    for k, targets in remaining.items()
                    for i in targets
                    if targets
                )
                assert chosen == pytest.approx(best)
                remaining[action.obj].discard(action.target)
                if not remaining[action.obj]:
                    del remaining[action.obj]
            state.apply(action)

    def test_comparable_to_golcf(self, instance):
        """The two greedy orders land within 25% of each other on the
        paper's workload family."""
        gmc = np.mean(
            [
                build_pipeline("GMC").run(instance, rng=s).cost(instance)
                for s in range(4)
            ]
        )
        golcf = np.mean(
            [
                build_pipeline("GOLCF").run(instance, rng=s).cost(instance)
                for s in range(4)
            ]
        )
        assert abs(gmc - golcf) / golcf < 0.25

    def test_composes_with_optimizers(self, instance):
        schedule = build_pipeline("GMC+H1+H2+OP1").run(instance, rng=0)
        report = schedule.validate(instance)
        assert report.ok
        base = build_pipeline("GMC").run(instance, rng=0)
        assert report.cost <= base.cost(instance) + 1e-9
        assert report.dummy_transfers <= base.count_dummy_transfers(instance)

    def test_deterministic(self, instance):
        a = get_builder("GMC").build(instance, rng=9)
        b = get_builder("GMC").build(instance, rng=9)
        assert a == b
