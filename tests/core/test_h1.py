"""Tests for H1 (move dummy transfers before deletions)."""

import numpy as np
import pytest

from repro.core import build_pipeline, get_builder
from repro.core.optimizers.h1 import H1MoveDummyTransfers
from repro.model.actions import Delete, Transfer
from repro.model.schedule import Schedule
from repro.workloads.regular import paper_instance


@pytest.fixture(scope="module")
def tight_instance():
    return paper_instance(replicas=2, num_servers=10, num_objects=30, rng=77)


class TestBasicBehaviour:
    def test_preserves_validity(self, tight_instance):
        for builder in ("RDF", "AR", "GOLCF"):
            base = get_builder(builder).build(tight_instance, rng=0)
            out = H1MoveDummyTransfers().optimize(tight_instance, base)
            assert out.validate(tight_instance).ok, builder

    def test_never_increases_dummies(self, tight_instance):
        for seed in range(5):
            base = get_builder("AR").build(tight_instance, rng=seed)
            out = H1MoveDummyTransfers().optimize(tight_instance, base)
            assert out.count_dummy_transfers(
                tight_instance
            ) <= base.count_dummy_transfers(tight_instance)

    def test_reduces_dummies_on_rdf(self, tight_instance):
        """RDF's delete-everything-first schedules are H1's best case."""
        base = get_builder("RDF").build(tight_instance, rng=1)
        out = H1MoveDummyTransfers().optimize(tight_instance, base)
        assert out.count_dummy_transfers(
            tight_instance
        ) < base.count_dummy_transfers(tight_instance)

    def test_input_schedule_unchanged(self, tight_instance):
        base = get_builder("RDF").build(tight_instance, rng=1)
        snapshot = base.actions()
        H1MoveDummyTransfers().optimize(tight_instance, base)
        assert base.actions() == snapshot

    def test_no_dummies_is_noop(self, tiny_instance):
        base = Schedule([Transfer(2, 0, 0), Delete(0, 0)])
        out = H1MoveDummyTransfers().optimize(tiny_instance, base)
        assert out == base


class TestPaperWalkthrough:
    def test_restores_simple_dummy_by_moving(self, fig3):
        """The paper's first H1 example: T_1Dd moves before D_2D and turns
        into T_1D2 (0-indexed: transfer of obj 3 to server 0, source 1)."""
        # RDF-like schedule from the paper (§4.1), 0-indexed
        D = {"A": 0, "B": 1, "C": 2, "D": 3}
        base = Schedule(
            [
                Delete(0, D["A"]),
                Delete(3, D["B"]),
                Delete(2, D["B"]),
                Delete(3, D["A"]),
                Delete(1, D["D"]),
                Delete(1, D["C"]),
                Transfer(0, D["D"], fig3.dummy),
                Transfer(3, D["C"], 2),
                Transfer(2, D["D"], 0),
                Transfer(1, D["B"], 0),
                Transfer(1, D["A"], fig3.dummy),
                Transfer(3, D["D"], 2),
            ]
        )
        assert base.validate(fig3).ok
        assert base.count_dummy_transfers(fig3) == 2
        out = H1MoveDummyTransfers().optimize(fig3, base)
        assert out.validate(fig3).ok
        # H1 can restore both dummies on this schedule
        assert out.count_dummy_transfers(fig3) == 0
        # the restored transfer of D to S1 sources from S2 (paper: T_1D2)
        restored = [
            a
            for a in out.transfers()
            if a.target == 0 and a.obj == D["D"]
        ]
        assert restored[0].source == 1


class TestKnobs:
    def test_zero_passes_is_noop(self, tight_instance):
        base = get_builder("RDF").build(tight_instance, rng=2)
        out = H1MoveDummyTransfers(max_passes=0).optimize(tight_instance, base)
        assert out == base

    def test_more_deletion_candidates_never_worse(self, tight_instance):
        base = get_builder("RDF").build(tight_instance, rng=3)
        narrow = H1MoveDummyTransfers(max_deletion_candidates=1).optimize(
            tight_instance, base
        )
        wide = H1MoveDummyTransfers(max_deletion_candidates=8).optimize(
            tight_instance, base
        )
        assert wide.count_dummy_transfers(
            tight_instance
        ) <= narrow.count_dummy_transfers(tight_instance)

    def test_depth_zero_still_valid(self, tight_instance):
        base = get_builder("RDF").build(tight_instance, rng=4)
        out = H1MoveDummyTransfers(max_depth=0).optimize(tight_instance, base)
        assert out.validate(tight_instance).ok


class TestCostEffect:
    def test_dummy_replacement_reduces_cost(self, tight_instance):
        """Every dummy transfer H1 converts had the maximal per-unit cost,
        so the schedule cost never increases."""
        for seed in range(3):
            base = get_builder("RDF").build(tight_instance, rng=seed)
            out = H1MoveDummyTransfers().optimize(tight_instance, base)
            assert out.cost(tight_instance) <= base.cost(tight_instance) + 1e-9
