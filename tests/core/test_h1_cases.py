"""Targeted tests for H1's repair cases (paper §4.1 cases i-iii)."""

import numpy as np
import pytest

from repro.core.optimizers.h1 import H1MoveDummyTransfers
from repro.model.actions import Delete, Transfer
from repro.model.instance import RtspInstance
from repro.model.schedule import Schedule

# objects
A, B, C = 0, 1, 2


def make_instance(x_old, x_new, capacities, m=None):
    x_old = np.asarray(x_old, dtype=np.int8)
    x_new = np.asarray(x_new, dtype=np.int8)
    m = x_old.shape[0]
    costs = np.ones((m, m)) - np.eye(m)
    return RtspInstance.create(
        np.ones(x_old.shape[1]), np.asarray(capacities, float), costs,
        x_old, x_new,
    )


class TestCaseI:
    def test_plain_move(self):
        """No interference at the target: the transfer just moves back."""
        inst = make_instance(
            x_old=[[0, 0], [1, 0]],
            x_new=[[1, 0], [0, 0]],
            capacities=[1.0, 1.0],
        )
        base = Schedule([Delete(1, A), Transfer(0, A, inst.dummy)])
        assert base.validate(inst).ok
        out = H1MoveDummyTransfers().optimize(inst, base)
        assert out.validate(inst).ok
        assert out.count_dummy_transfers(inst) == 0
        assert out[0] == Transfer(0, A, 1)


class TestCaseII:
    def test_standalone_deletion_hoisted(self):
        """The target is full; its own (standalone) deletion is hoisted
        before the restored transfer."""
        inst = make_instance(
            # S0: {B} -> {A};  S1: {A} -> {}
            x_old=[[0, 1], [1, 0]],
            x_new=[[1, 0], [0, 0]],
            capacities=[1.0, 1.0],
        )
        base = Schedule(
            [Delete(1, A), Delete(0, B), Transfer(0, A, inst.dummy)]
        )
        assert base.validate(inst).ok
        out = H1MoveDummyTransfers().optimize(inst, base)
        assert out.validate(inst).ok
        assert out.count_dummy_transfers(inst) == 0
        # hoisted deletion precedes the restored transfer
        actions = out.actions()
        assert actions.index(Delete(0, B)) < actions.index(Transfer(0, A, 1))


class TestCaseIII:
    @pytest.fixture
    def pair_instance(self):
        """S0 must swap B out (re-homed to S2) before receiving A."""
        return make_instance(
            # S0: {B} -> {A}; S1: {A} -> {}; S2: {} -> {B}
            x_old=[[0, 1, 0], [1, 0, 0], [0, 0, 0]],
            x_new=[[1, 0, 0], [0, 0, 0], [0, 1, 0]],
            capacities=[1.0, 1.0, 1.0],
        )

    def test_pair_move(self, pair_instance):
        """The deletion D(0,B) is fed by T(2,B,0); the pair moves before
        the restored transfer."""
        inst = pair_instance
        base = Schedule(
            [
                Delete(1, A),
                Transfer(2, B, 0),
                Delete(0, B),
                Transfer(0, A, inst.dummy),
            ]
        )
        assert base.validate(inst).ok
        out = H1MoveDummyTransfers().optimize(inst, base)
        assert out.validate(inst).ok
        assert out.count_dummy_transfers(inst) == 0
        actions = out.actions()
        # order: re-home B, delete it at S0, then the restored T(0,A,1)
        assert actions.index(Transfer(2, B, 0)) < actions.index(Delete(0, B))
        assert actions.index(Delete(0, B)) < actions.index(Transfer(0, A, 1))

    def test_recursive_restoration(self):
        """Pair move fails (the re-homing target is itself full) and H1
        recursively restores the converted transfer (paper's H'')."""
        inst = make_instance(
            # S0: {B} -> {A}; S1: {A} -> {}; S2: {C} -> {B}; S3: {} -> {C}
            x_old=[[0, 1, 0], [1, 0, 0], [0, 0, 1], [0, 0, 0]],
            x_new=[[1, 0, 0], [0, 0, 0], [0, 1, 0], [0, 0, 1]],
            capacities=[1.0, 1.0, 1.0, 1.0],
        )
        base = Schedule(
            [
                Delete(1, A),          # destroys A's only source
                Transfer(3, C, 2),     # re-home C to the empty S3
                Delete(2, C),
                Transfer(2, B, 0),     # re-home B (S2 now has room)
                Delete(0, B),
                Transfer(0, A, inst.dummy),
            ]
        )
        assert base.validate(inst).ok
        out = H1MoveDummyTransfers().optimize(inst, base)
        assert out.validate(inst).ok
        assert out.count_dummy_transfers(inst) == 0

    def test_backtracks_when_unrestorable(self):
        """No repair exists: the original dummy transfer stays."""
        inst = make_instance(
            # two full servers swapping their objects, nobody to stage on
            x_old=[[1, 0], [0, 1]],
            x_new=[[0, 1], [1, 0]],
            capacities=[1.0, 1.0],
        )
        base = Schedule(
            [
                Delete(0, A),
                Delete(1, B),
                Transfer(0, B, inst.dummy),
                Transfer(1, A, inst.dummy),
            ]
        )
        assert base.validate(inst).ok
        out = H1MoveDummyTransfers().optimize(inst, base)
        assert out.validate(inst).ok
        # H1 can break the cycle once (move one transfer before the other
        # deletion) but at least one dummy must remain
        assert out.count_dummy_transfers(inst) >= 1
