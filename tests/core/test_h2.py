"""Tests for H2 (create superfluous replicas to source dummy transfers)."""

import numpy as np
import pytest

from repro.core import get_builder
from repro.core.optimizers.h1 import H1MoveDummyTransfers
from repro.core.optimizers.h2 import H2CreateSuperfluousReplicas
from repro.model.actions import Delete, Transfer
from repro.model.instance import RtspInstance
from repro.model.schedule import Schedule
from repro.workloads.regular import paper_instance


@pytest.fixture(scope="module")
def tight_instance():
    return paper_instance(replicas=2, num_servers=10, num_objects=30, rng=77)


@pytest.fixture
def staging_instance():
    """An instance where only H2 can remove the dummy transfer.

    S0 holds O0 and must swap it for O1; S1 holds O1 and must swap it for
    O0; both are full, so neither can receive first — but S2 is empty and
    can stage a copy. H1 has no lateral move here (each mover's capacity
    is violated at every earlier point), H2 stages via S2.
    """
    x_old = np.array([[1, 0], [0, 1], [0, 0]], dtype=np.int8)
    x_new = np.array([[0, 1], [1, 0], [0, 0]], dtype=np.int8)
    costs = np.array(
        [[0.0, 5.0, 1.0], [5.0, 0.0, 1.0], [1.0, 1.0, 0.0]]
    )
    return RtspInstance.create(
        [1.0, 1.0], [1.0, 1.0, 1.0], costs, x_old, x_new
    )


class TestBasicBehaviour:
    def test_preserves_validity(self, tight_instance):
        for builder in ("RDF", "AR", "GOLCF"):
            base = get_builder(builder).build(tight_instance, rng=0)
            out = H2CreateSuperfluousReplicas().optimize(tight_instance, base)
            assert out.validate(tight_instance).ok, builder

    def test_never_increases_dummies(self, tight_instance):
        for seed in range(5):
            base = get_builder("AR").build(tight_instance, rng=seed)
            out = H2CreateSuperfluousReplicas().optimize(tight_instance, base)
            assert out.count_dummy_transfers(
                tight_instance
            ) <= base.count_dummy_transfers(tight_instance)

    def test_input_unchanged(self, tight_instance):
        base = get_builder("RDF").build(tight_instance, rng=1)
        snapshot = base.actions()
        H2CreateSuperfluousReplicas().optimize(tight_instance, base)
        assert base.actions() == snapshot

    def test_staged_replica_is_cleaned_up(self, staging_instance):
        """H2's temporary replica must be deleted again (final state is
        X_new exactly)."""
        base = Schedule(
            [
                Delete(0, 0),
                Delete(1, 1),
                Transfer(0, 1, staging_instance.dummy),
                Transfer(1, 0, staging_instance.dummy),
            ]
        )
        assert base.validate(staging_instance).ok
        out = H2CreateSuperfluousReplicas().optimize(staging_instance, base)
        assert out.validate(staging_instance).ok
        assert out.count_dummy_transfers(staging_instance) < 2


class TestStagingScenario:
    def test_h2_at_least_matches_h1_and_combination_wins(self, staging_instance):
        """On the swap instance each heuristic alone fixes one of the two
        dummies; only H1 followed by H2 (staging through the empty S2)
        eliminates both."""
        base = Schedule(
            [
                Delete(0, 0),
                Delete(1, 1),
                Transfer(0, 1, staging_instance.dummy),
                Transfer(1, 0, staging_instance.dummy),
            ]
        )
        h1_out = H1MoveDummyTransfers().optimize(staging_instance, base)
        h2_out = H2CreateSuperfluousReplicas().optimize(staging_instance, base)
        assert h2_out.count_dummy_transfers(
            staging_instance
        ) <= h1_out.count_dummy_transfers(staging_instance)
        combined = H2CreateSuperfluousReplicas().optimize(
            staging_instance, h1_out
        )
        assert combined.validate(staging_instance).ok
        assert combined.count_dummy_transfers(staging_instance) == 0

    def test_staging_transfer_injected_before_deletion(self, staging_instance):
        base = Schedule(
            [
                Delete(0, 0),
                Delete(1, 1),
                Transfer(0, 1, staging_instance.dummy),
                Transfer(1, 0, staging_instance.dummy),
            ]
        )
        out = H2CreateSuperfluousReplicas().optimize(staging_instance, base)
        # a transfer onto the spare server S2 now exists, plus its deletion
        stage_transfers = [t for t in out.transfers() if t.target == 2]
        stage_deletes = [d for d in out.deletions() if d.server == 2]
        assert stage_transfers and stage_deletes


class TestCombinedWithH1:
    def test_h1_plus_h2_dominates_either(self, tight_instance):
        for seed in range(3):
            base = get_builder("RDF").build(tight_instance, rng=seed)
            h1 = H1MoveDummyTransfers().optimize(tight_instance, base)
            h1h2 = H2CreateSuperfluousReplicas().optimize(tight_instance, h1)
            assert h1h2.validate(tight_instance).ok
            assert h1h2.count_dummy_transfers(
                tight_instance
            ) <= h1.count_dummy_transfers(tight_instance)

    def test_nearly_nullifies_dummies_at_two_replicas(self):
        """The paper's headline: with 2 replicas/object, H1+H2 drive the
        dummy count to (almost) zero."""
        inst = paper_instance(replicas=2, num_servers=15, num_objects=60, rng=5)
        base = get_builder("GOLCF").build(inst, rng=0)
        h1 = H1MoveDummyTransfers().optimize(inst, base)
        out = H2CreateSuperfluousReplicas().optimize(inst, h1)
        assert base.count_dummy_transfers(inst) > 0
        assert out.count_dummy_transfers(inst) <= 1


class TestKnobs:
    def test_zero_passes_noop(self, tight_instance):
        base = get_builder("RDF").build(tight_instance, rng=2)
        out = H2CreateSuperfluousReplicas(max_passes=0).optimize(
            tight_instance, base
        )
        assert out == base

    def test_no_stage_candidates_noop(self, staging_instance):
        base = Schedule(
            [
                Delete(0, 0),
                Delete(1, 1),
                Transfer(0, 1, staging_instance.dummy),
                Transfer(1, 0, staging_instance.dummy),
            ]
        )
        out = H2CreateSuperfluousReplicas(max_stage_candidates=0).optimize(
            staging_instance, base
        )
        assert out == base
