"""Tests for NSR (nearest-source refinement, extension)."""

import pytest

from repro.core import build_pipeline, get_builder, get_optimizer
from repro.core.optimizers.nsr import NearestSourceRefinement
from repro.model.actions import Delete, Transfer
from repro.model.schedule import Schedule
from repro.workloads.regular import paper_instance


@pytest.fixture(scope="module")
def instance():
    return paper_instance(replicas=3, num_servers=10, num_objects=30, rng=17)


class TestNsr:
    def test_registered(self):
        assert get_optimizer("NSR").name == "NSR"

    def test_preserves_validity(self, instance):
        for spec in ("RDF", "AR", "GOLCF+H1+H2"):
            base = build_pipeline(spec).run(instance, rng=0)
            out = NearestSourceRefinement().optimize(instance, base)
            assert out.validate(instance).ok

    def test_never_increases_cost(self, instance):
        for seed in range(5):
            base = get_builder("AR").build(instance, rng=seed)
            out = NearestSourceRefinement().optimize(instance, base)
            assert out.cost(instance) <= base.cost(instance) + 1e-9

    def test_preserves_action_structure(self, instance):
        base = get_builder("GOLCF").build(instance, rng=1)
        out = NearestSourceRefinement().optimize(instance, base)
        assert len(out) == len(base)
        for a, b in zip(base, out):
            if isinstance(a, Transfer):
                assert (a.target, a.obj) == (b.target, b.obj)
            else:
                assert a == b

    def test_fixes_stale_source(self, tiny_instance):
        # O0 at S0 (cost 2 to S2) and — after the first transfer — at S1
        # (cost 1 to S2). A schedule pointing S2 at S0 gets re-pointed.
        stale = Schedule(
            [Transfer(1, 0, 0), Transfer(2, 0, 0), Delete(0, 0), Delete(1, 0)]
        )
        # (this tiny instance's X_new wants O0 only at S2)
        inst = tiny_instance
        assert stale.validate(inst).ok
        out = NearestSourceRefinement().optimize(inst, stale)
        assert out.validate(inst).ok
        assert out[1] == Transfer(2, 0, 1)
        assert out.cost(inst) < stale.cost(inst)

    def test_idempotent(self, instance):
        base = get_builder("AR").build(instance, rng=2)
        once = NearestSourceRefinement().optimize(instance, base)
        twice = NearestSourceRefinement().optimize(instance, once)
        assert once == twice

    def test_builders_already_nearest(self, instance):
        """Fresh builder output uses nearest sources, so NSR is a no-op."""
        base = get_builder("GOLCF").build(instance, rng=3)
        out = NearestSourceRefinement().optimize(instance, base)
        assert out == base
