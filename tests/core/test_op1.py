"""Tests for OP1 (reordering same-object transfers)."""

import numpy as np
import pytest

from repro.core import get_builder
from repro.core.optimizers.op1 import OP1ReorderTransfers
from repro.model.actions import Delete, Transfer
from repro.model.instance import RtspInstance
from repro.model.schedule import Schedule
from repro.workloads.regular import paper_instance


@pytest.fixture(scope="module")
def tight_instance():
    return paper_instance(replicas=3, num_servers=10, num_objects=30, rng=31)


@pytest.fixture
def relay_instance():
    """An instance where transfer order changes cost.

    O0 lives on S0. Both S1 (far from S0: 10) and S2 (near S0: 1, near
    S1: 1) need copies. Fetching S2's copy first lets S1 fetch from S2
    for 1 instead of from S0 for 10.
    """
    x_old = np.array([[1], [0], [0]], dtype=np.int8)
    x_new = np.array([[1], [1], [1]], dtype=np.int8)
    costs = np.array(
        [[0.0, 10.0, 1.0], [10.0, 0.0, 1.0], [1.0, 1.0, 0.0]]
    )
    return RtspInstance.create([1.0], [1.0, 1.0, 1.0], costs, x_old, x_new)


class TestBasicBehaviour:
    def test_preserves_validity(self, tight_instance):
        for builder in ("RDF", "AR", "GSDF", "GOLCF"):
            base = get_builder(builder).build(tight_instance, rng=0)
            out = OP1ReorderTransfers().optimize(tight_instance, base)
            assert out.validate(tight_instance).ok, builder

    def test_never_increases_cost(self, tight_instance):
        for builder in ("RDF", "AR", "GSDF"):
            for seed in range(3):
                base = get_builder(builder).build(tight_instance, rng=seed)
                out = OP1ReorderTransfers().optimize(tight_instance, base)
                assert out.cost(tight_instance) <= base.cost(tight_instance) + 1e-9

    def test_input_unchanged(self, tight_instance):
        base = get_builder("RDF").build(tight_instance, rng=1)
        snapshot = base.actions()
        OP1ReorderTransfers().optimize(tight_instance, base)
        assert base.actions() == snapshot

    def test_improves_bad_order(self, relay_instance):
        # expensive order: S1 fetches from S0 (10), then S2 from S1 (1)
        base = Schedule([Transfer(1, 0, 0), Transfer(2, 0, 1)])
        assert base.validate(relay_instance).ok
        assert base.cost(relay_instance) == 11.0
        out = OP1ReorderTransfers().optimize(relay_instance, base)
        assert out.validate(relay_instance).ok
        # optimal: S2 fetches from S0 (1), then S1 from S2 (1)
        assert out.cost(relay_instance) == 2.0

    def test_repoints_later_transfers(self, relay_instance):
        base = Schedule([Transfer(1, 0, 0), Transfer(2, 0, 1)])
        out = OP1ReorderTransfers().optimize(relay_instance, base)
        transfers = out.transfers()
        assert transfers[0] == Transfer(2, 0, 0)
        assert transfers[1] == Transfer(1, 0, 2)

    def test_already_optimal_untouched(self, relay_instance):
        base = Schedule([Transfer(2, 0, 0), Transfer(1, 0, 2)])
        out = OP1ReorderTransfers().optimize(relay_instance, base)
        assert out == base


class TestRestartPolicy:
    def test_both_policies_valid_and_comparable(self, tight_instance):
        base = get_builder("AR").build(tight_instance, rng=5)
        restart = OP1ReorderTransfers(restart=True).optimize(
            tight_instance, base
        )
        inplace = OP1ReorderTransfers(restart=False).optimize(
            tight_instance, base
        )
        assert restart.validate(tight_instance).ok
        assert inplace.validate(tight_instance).ok
        base_cost = base.cost(tight_instance)
        assert restart.cost(tight_instance) <= base_cost + 1e-9
        assert inplace.cost(tight_instance) <= base_cost + 1e-9

    def test_max_rounds_zero_noop(self, tight_instance):
        base = get_builder("AR").build(tight_instance, rng=5)
        out = OP1ReorderTransfers(max_rounds=0).optimize(tight_instance, base)
        assert out == base


class TestCapacityCases:
    def test_hoists_enabling_deletions(self):
        """Case (iv): moving the later transfer earlier requires hoisting
        the deletions that made room for it."""
        # S0 holds O0; S1 full with O1 (superfluous); S2 needs O0 too.
        # good order: S1 deletes O1, fetches O0 cheaply, S2 fetches from S1.
        x_old = np.array([[1, 0], [0, 1], [0, 0]], dtype=np.int8)
        x_new = np.array([[1, 0], [1, 0], [1, 0]], dtype=np.int8)
        costs = np.array(
            [[0.0, 1.0, 10.0], [1.0, 0.0, 1.0], [10.0, 1.0, 0.0]]
        )
        inst = RtspInstance.create(
            [1.0, 1.0], [1.0, 1.0, 1.0], costs, x_old, x_new
        )
        base = Schedule(
            [
                Transfer(2, 0, 0),  # expensive: cost 10
                Delete(1, 1),
                Transfer(1, 0, 0),  # cost 1
            ]
        )
        assert base.validate(inst).ok
        out = OP1ReorderTransfers().optimize(inst, base)
        assert out.validate(inst).ok
        # optimal: delete at S1, fetch S1<-S0 (1), then S2<-S1 (1)
        assert out.cost(inst) == pytest.approx(2.0)

    def test_dummy_moved_transfer_gets_real_source(self, tight_instance):
        """OP1 may replace dummy sources as a side effect (paper §4.2)."""
        base = get_builder("RDF").build(tight_instance, rng=2)
        out = OP1ReorderTransfers().optimize(tight_instance, base)
        assert out.count_dummy_transfers(tight_instance) <= base.count_dummy_transfers(
            tight_instance
        )
