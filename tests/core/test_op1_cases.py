"""Targeted tests for OP1's validity cases (paper §4.2 cases ii-iv)."""

import numpy as np
import pytest

from repro.core.optimizers.op1 import OP1ReorderTransfers
from repro.model.actions import Delete, Transfer
from repro.model.instance import RtspInstance
from repro.model.schedule import Schedule

A, B = 0, 1


def make_instance(x_old, x_new, capacities, costs):
    return RtspInstance.create(
        np.ones(np.asarray(x_old).shape[1]),
        np.asarray(capacities, float),
        np.asarray(costs, float),
        np.asarray(x_old, dtype=np.int8),
        np.asarray(x_new, dtype=np.int8),
    )


class TestCaseIiVoidMoves:
    def test_duplicate_replica_rewrite_rejected(self):
        """Moving a transfer before an identical-cell create/delete pair
        would duplicate the replica; OP1 must drop that rewrite (case ii)
        and leave a valid schedule behind."""
        # S0 holds A; S1 cycles A in and out; S2 wants A.
        inst = make_instance(
            x_old=[[1], [0], [0]],
            x_new=[[1], [0], [1]],
            capacities=[1.0, 1.0, 1.0],
            costs=[[0, 1, 5], [1, 0, 5], [5, 5, 0]],
        )
        base = Schedule(
            [
                Transfer(1, A, 0),
                Transfer(2, A, 1),
                Delete(1, A),
            ]
        )
        assert base.validate(inst).ok
        out = OP1ReorderTransfers().optimize(inst, base)
        assert out.validate(inst).ok
        assert out.cost(inst) <= base.cost(inst) + 1e-9


class TestCaseIiiOutdatedSources:
    def test_stranded_transfer_repointed_with_penalty(self):
        """Hoisting the mover's enabling deletion strands a transfer that
        used the deleted replica as source; OP1 re-points it (case iii)
        and only accepts when the net benefit remains positive."""
        # S3 holds B initially and serves it to S4 *after* S3 would have
        # deleted B in the rewritten order.
        inst = make_instance(
            # S0:{A}, S3:{B}; X_new: A on S1,S2,S3; B on S4
            x_old=[[1, 0], [0, 0], [0, 0], [0, 1], [0, 0]],
            x_new=[[1, 0], [1, 0], [1, 0], [1, 0], [0, 1]],
            capacities=[1.0, 1.0, 1.0, 1.0, 1.0],
            costs=[
                [0, 9, 9, 1, 9],
                [9, 0, 1, 1, 9],
                [9, 1, 0, 9, 9],
                [1, 1, 9, 0, 2],
                [9, 9, 9, 2, 0],
            ],
        )
        base = Schedule(
            [
                Transfer(1, A, 0),      # expensive: 9
                Transfer(4, B, 3),      # uses S3's replica of B
                Delete(3, B),
                Transfer(3, A, 0),      # cheap: 1; candidate to move up
                Transfer(2, A, 1),
            ]
        )
        assert base.validate(inst).ok
        out = OP1ReorderTransfers().optimize(inst, base)
        assert out.validate(inst).ok
        assert out.cost(inst) <= base.cost(inst) + 1e-9

    def test_all_rewrites_keep_final_state(self):
        inst = make_instance(
            x_old=[[1], [0], [0]],
            x_new=[[1], [1], [1]],
            capacities=[1.0, 1.0, 1.0],
            costs=[[0, 10, 1], [10, 0, 1], [1, 1, 0]],
        )
        base = Schedule([Transfer(1, A, 0), Transfer(2, A, 1)])
        out = OP1ReorderTransfers().optimize(inst, base)
        assert out.replay(inst).matches(inst.x_new)


class TestCaseIvCapacity:
    def test_enabling_deletions_hoisted_with_move(self):
        """The moved transfer's target freed space via deletions located
        between the two transfers; OP1 hoists them with the move."""
        inst = make_instance(
            # S0:{A}, S1:{B}; X_new: A on S0,S1,S2
            x_old=[[1, 0], [0, 1], [0, 0]],
            x_new=[[1, 0], [1, 0], [1, 0]],
            capacities=[1.0, 1.0, 1.0],
            costs=[[0, 1, 10], [1, 0, 1], [10, 1, 0]],
        )
        base = Schedule(
            [
                Transfer(2, A, 0),  # expensive first copy: 10
                Delete(1, B),
                Transfer(1, A, 0),  # cheap: 1
            ]
        )
        assert base.validate(inst).ok
        out = OP1ReorderTransfers().optimize(inst, base)
        assert out.validate(inst).ok
        # optimal: delete B at S1 first, S1 <- S0 (1), S2 <- S1 (1)
        assert out.cost(inst) == pytest.approx(2.0)
        actions = out.actions()
        assert actions.index(Delete(1, B)) < actions.index(Transfer(1, A, 0))

    def test_rejects_when_benefit_insufficient(self):
        """Moving early would force the moved transfer onto a costlier
        source with no compensating re-point benefit: no change."""
        inst = make_instance(
            x_old=[[1], [0], [0]],
            x_new=[[1], [1], [1]],
            capacities=[1.0, 1.0, 1.0],
            costs=[[0, 1, 1], [1, 0, 9], [1, 9, 0]],
        )
        # both targets already fetch from the cheap hub S0
        base = Schedule([Transfer(1, A, 0), Transfer(2, A, 0)])
        out = OP1ReorderTransfers().optimize(inst, base)
        assert out == base
