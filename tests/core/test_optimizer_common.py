"""Tests for the optimizer machinery (ArrayState, window replays)."""

import numpy as np
import pytest

from repro.core.optimizers.common import (
    ArrayState,
    actions_cost,
    blocking_transfer,
    capture_states,
    count_dummies,
    deletion_positions_before,
    is_standalone_deletion,
    server_deletions_between,
    window_replay_with_repairs,
    window_valid,
)
from repro.model.actions import Delete, Transfer
from repro.model.instance import RtspInstance
from repro.model.state import SystemState


@pytest.fixture
def inst():
    x_old = np.array([[1, 0], [0, 1], [0, 0]], dtype=np.int8)
    x_new = np.array([[0, 0], [0, 1], [1, 0]], dtype=np.int8)
    costs = np.array([[0.0, 1.0, 2.0], [1.0, 0.0, 1.0], [2.0, 1.0, 0.0]])
    return RtspInstance.create([1.0, 1.0], [1.0, 1.0, 1.0], costs, x_old, x_new)


class TestArrayState:
    def test_mirrors_system_state_semantics(self, inst):
        """ArrayState and SystemState agree on validity for a batch of
        random action attempts."""
        rng = np.random.default_rng(0)
        heavy = SystemState(inst)
        light = ArrayState(inst)
        candidates = [
            Transfer(2, 0, 0),
            Transfer(2, 0, 1),
            Transfer(0, 1, 1),
            Transfer(2, 1, inst.dummy),
            Delete(0, 0),
            Delete(2, 0),
            Transfer(inst.dummy, 0, 0),
            Transfer(0, 0, 0),
        ]
        for _ in range(50):
            a = candidates[int(rng.integers(0, len(candidates)))]
            assert light.is_valid(a) == heavy.is_valid(a), str(a)
            if light.is_valid(a):
                light.apply(a)
                heavy.apply(a)

    def test_copy_independent(self, inst):
        s = ArrayState(inst)
        dup = s.copy()
        s.apply(Delete(0, 0))
        assert dup.holds(0, 0) and not s.holds(0, 0)

    def test_nearest_matches_system_state(self, inst):
        light = ArrayState(inst)
        heavy = SystemState(inst)
        for target in range(3):
            for obj in range(2):
                assert light.nearest(target, obj) == heavy.nearest(target, obj)

    def test_nearest_exclude(self, inst):
        light = ArrayState(inst)
        assert light.nearest(2, 0, exclude=0) == inst.dummy

    def test_try_apply(self, inst):
        s = ArrayState(inst)
        assert not s.try_apply(Transfer(2, 0, 1))
        assert s.try_apply(Transfer(2, 0, 0))
        assert s.holds(2, 0)


class TestCaptureStates:
    def test_snapshots_before_positions(self, inst):
        actions = [Delete(0, 0), Transfer(2, 0, inst.dummy), Delete(2, 0)]
        snaps = capture_states(inst, actions, [0, 1, 2])
        assert snaps[0].holds(0, 0)
        assert not snaps[1].holds(0, 0)
        assert snaps[2].holds(2, 0)

    def test_duplicate_positions_ok(self, inst):
        actions = [Delete(0, 0)]
        snaps = capture_states(inst, actions, [0, 0, 1])
        assert set(snaps) == {0, 1}


class TestWindowReplay:
    def test_window_valid_accepts(self, inst):
        start = ArrayState(inst)
        assert window_valid(start, [Transfer(2, 0, 0), Delete(0, 0)])

    def test_window_valid_rejects_and_preserves_start(self, inst):
        start = ArrayState(inst)
        assert not window_valid(start, [Delete(0, 0), Transfer(2, 0, 0)])
        assert start.holds(0, 0)  # start state untouched

    def test_repairs_broken_source(self, inst):
        start = ArrayState(inst)
        window = [Delete(0, 0), Transfer(2, 0, 0)]
        repaired = window_replay_with_repairs(start, window)
        assert repaired is not None
        assert repaired[1] == Transfer(2, 0, inst.dummy)

    def test_unrepairable_returns_none(self, inst):
        start = ArrayState(inst)
        # deleting an absent replica cannot be repaired
        assert window_replay_with_repairs(start, [Delete(2, 0)]) is None

    def test_repair_budget(self, inst):
        start = ArrayState(inst)
        window = [Delete(0, 0), Transfer(2, 0, 0)]
        assert window_replay_with_repairs(start, window, max_repairs=0) is None


class TestAccounting:
    def test_actions_cost(self, inst):
        actions = [Transfer(2, 0, 0), Delete(0, 0), Transfer(0, 1, 1)]
        assert actions_cost(inst, actions) == 2.0 + 1.0

    def test_count_dummies(self, inst):
        actions = [Transfer(2, 0, inst.dummy), Transfer(0, 1, 1)]
        assert count_dummies(inst, actions) == 1


class TestStructureQueries:
    def test_deletion_positions_before_nearest_first(self):
        actions = [Delete(0, 5), Transfer(1, 5, 0), Delete(2, 5), Delete(1, 6)]
        assert deletion_positions_before(actions, 4, 5) == [2, 0]

    def test_server_deletions_between_exclusive(self):
        actions = [Delete(1, 0), Delete(1, 1), Delete(1, 2), Delete(1, 3)]
        assert server_deletions_between(actions, 0, 3, 1) == [1, 2]

    def test_standalone_detection(self):
        # deletion fed by a transfer sourcing from its server: not standalone
        actions = [Transfer(2, 7, 1), Delete(1, 7)]
        assert not is_standalone_deletion(actions, 0, 1)
        # creation at the server: not standalone either
        actions = [Transfer(1, 7, 2), Delete(1, 7)]
        assert not is_standalone_deletion(actions, 0, 1)
        # unrelated actions: standalone
        actions = [Transfer(2, 8, 0), Delete(1, 7)]
        assert is_standalone_deletion(actions, 0, 1)

    def test_blocking_transfer_found(self):
        actions = [Transfer(2, 7, 1), Delete(1, 7)]
        assert blocking_transfer(actions, 0, 1) == 0

    def test_blocking_transfer_absent(self):
        actions = [Transfer(1, 7, 2), Delete(1, 7)]
        assert blocking_transfer(actions, 0, 1) is None
