"""Tests for pipeline composition and parsing."""

import pytest

from repro.core import build_pipeline, get_builder, get_optimizer
from repro.core.pipeline import PAPER_PIPELINES, Pipeline
from repro.util.errors import ConfigurationError


class TestParsing:
    def test_builder_only(self):
        p = build_pipeline("GOLCF")
        assert p.name == "GOLCF"
        assert p.optimizers == []

    def test_full_chain(self):
        p = build_pipeline("GOLCF+H1+H2+OP1")
        assert p.builder.name == "GOLCF"
        assert [o.name for o in p.optimizers] == ["H1", "H2", "OP1"]

    def test_whitespace_tolerated(self):
        p = build_pipeline(" golcf + h1 ")
        assert p.name == "golcf+h1"
        assert p.builder.name == "GOLCF"

    def test_empty_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            build_pipeline("")

    def test_unknown_component_rejected(self):
        with pytest.raises(ConfigurationError):
            build_pipeline("GOLCF+WAT")

    def test_optimizer_as_builder_rejected(self):
        with pytest.raises(ConfigurationError):
            build_pipeline("H1+GOLCF")

    def test_all_paper_pipelines_parse(self):
        for spec in PAPER_PIPELINES.values():
            assert build_pipeline(spec) is not None


class TestExecution:
    def test_run_produces_valid_schedule(self, fig3):
        schedule = build_pipeline("GSDF+H1+OP1").run(fig3, rng=0)
        assert schedule.validate(fig3).ok

    def test_run_deterministic(self, fig3):
        a = build_pipeline("AR+H1+H2+OP1").run(fig3, rng=3)
        b = build_pipeline("AR+H1+H2+OP1").run(fig3, rng=3)
        assert a == b

    def test_run_with_stats_stages(self, fig3):
        schedule, stats = build_pipeline("GOLCF+H1+OP1").run_with_stats(
            fig3, rng=1
        )
        assert [s.stage for s in stats] == ["GOLCF", "H1", "OP1"]
        assert stats[-1].cost == schedule.cost(fig3)
        assert all(s.seconds >= 0 for s in stats)

    def test_stats_monotone_improvements(self, medium_paper_instance):
        inst = medium_paper_instance
        _, stats = build_pipeline("GOLCF+H1+H2+OP1").run_with_stats(inst, rng=2)
        # H1/H2 never increase dummies; OP1 never increases cost
        assert stats[1].dummy_transfers <= stats[0].dummy_transfers
        assert stats[2].dummy_transfers <= stats[1].dummy_transfers
        assert stats[3].cost <= stats[2].cost + 1e-9

    def test_custom_composition(self, fig3):
        p = Pipeline(get_builder("RDF"), [get_optimizer("H1")], name="mine")
        assert p.name == "mine"
        assert p.run(fig3, rng=0).validate(fig3).ok

    def test_default_name_joined(self):
        p = Pipeline(get_builder("RDF"), [get_optimizer("H1")])
        assert p.name == "RDF+H1"


class TestReplanTrivialResidual:
    def test_trivial_residual_short_circuits_to_empty_schedule(self, fig3):
        """placement == X_new: no stage runs, the schedule is empty."""
        pipeline = build_pipeline("GOLCF+H1")

        def boom(instance, rng=None):
            raise AssertionError("pipeline ran on a trivial residual")

        pipeline.run = boom  # any stage invocation is a regression
        schedule = pipeline.replan(fig3, fig3.x_new)
        assert len(schedule) == 0

    def test_nontrivial_residual_still_plans(self, fig3):
        pipeline = build_pipeline("GOLCF+H1")
        schedule = pipeline.replan(fig3, fig3.x_old, rng=3)
        assert len(schedule) > 0
        assert schedule.validate(fig3).ok
