"""Path-identity regression: the selector's scalar and gather refreshes.

``PendingTransferSelector._refresh_obj`` picks between a Python scalar
scan and a NumPy gather based on ``_SCALAR_BLOCK``. Schedules must never
depend on which side of the threshold an instance lands on, so these
tests pin the threshold to both extremes (0 = always gather, huge =
always scalar) on the *same* instances — including fractional data,
where a summation-order slip would show up first — and require
byte-identical schedules. See the "Path-identity contract" paragraph in
the selector's docstring.
"""

import numpy as np
import pytest

from repro.core.base import get_builder
from repro.core.builders.common import PendingTransferSelector
from repro.model.instance import RtspInstance
from repro.util.errors import ConfigurationError

BUILDERS = ["GOLCF", "GMC"]  # the selector's only users


def _fractional_instance(seed: int) -> RtspInstance:
    rng = np.random.default_rng(seed)
    m, n = 6, 12
    sizes = rng.uniform(0.3, 3.7, size=n)
    costs = rng.uniform(0.1, 9.0, size=(m, m))
    costs = (costs + costs.T) / 2
    np.fill_diagonal(costs, 0.0)
    x_old = (rng.random((m, n)) < 0.45).astype(np.int8)
    x_new = (rng.random((m, n)) < 0.45).astype(np.int8)
    caps = (
        np.maximum(x_old @ sizes, x_new @ sizes)
        + rng.uniform(0.0, 2.0, size=m)
    )
    return RtspInstance.create(sizes, caps, costs, x_old, x_new)


def _integer_instance(seed: int) -> RtspInstance:
    rng = np.random.default_rng(seed)
    m, n = 7, 14
    sizes = rng.integers(1, 6, size=n).astype(float)
    costs = rng.integers(1, 15, size=(m, m)).astype(float)
    costs = np.ceil((costs + costs.T) / 2)
    np.fill_diagonal(costs, 0.0)
    x_old = (rng.random((m, n)) < 0.4).astype(np.int8)
    x_new = (rng.random((m, n)) < 0.4).astype(np.int8)
    caps = np.maximum(x_old @ sizes, x_new @ sizes) + rng.integers(
        0, 4, size=m
    ).astype(float)
    return RtspInstance.create(sizes, caps, costs, x_old, x_new)


@pytest.mark.parametrize("builder", BUILDERS)
@pytest.mark.parametrize("make", [_integer_instance, _fractional_instance])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_scalar_and_gather_refresh_produce_identical_schedules(
    monkeypatch, builder, make, seed
):
    inst = make(seed)
    monkeypatch.setattr(PendingTransferSelector, "_SCALAR_BLOCK", 1 << 30)
    scalar = get_builder(builder).build(inst, rng=seed)
    monkeypatch.setattr(PendingTransferSelector, "_SCALAR_BLOCK", 0)
    gather = get_builder(builder).build(inst, rng=seed)
    assert scalar.actions() == gather.actions(), (
        f"{builder} diverged between scalar and gather refresh paths"
    )


@pytest.mark.parametrize("builder", BUILDERS)
def test_default_threshold_matches_both_forced_paths(monkeypatch, builder):
    inst = _fractional_instance(11)
    default = get_builder(builder).build(inst, rng=5)
    monkeypatch.setattr(PendingTransferSelector, "_SCALAR_BLOCK", 0)
    gather = get_builder(builder).build(inst, rng=5)
    assert default.actions() == gather.actions()


def test_nan_costs_rejected_at_instance_boundary():
    # A NaN cost entry is skipped by the scalar ``<`` scan but selected
    # by the gather's argmin — the paths would diverge. The instance
    # boundary therefore rejects NaN outright.
    costs = np.array([[0.0, 1.0], [np.nan, 0.0]])
    with pytest.raises(ConfigurationError, match="NaN"):
        RtspInstance.create(
            sizes=[1.0],
            capacities=[2.0, 2.0],
            costs=costs,
            x_old=np.array([[1], [0]], dtype=np.int8),
            x_new=np.array([[0], [1]], dtype=np.int8),
        )


def test_infinite_costs_keep_paths_identical(monkeypatch):
    # +inf entries are legal (an unusable link): both the scalar scan
    # and the gathered min handle them identically, and the dummy
    # column bounds every minimum. Pin both paths to prove it.
    rng = np.random.default_rng(3)
    m, n = 5, 10
    sizes = rng.integers(1, 4, size=n).astype(float)
    costs = rng.integers(1, 9, size=(m, m)).astype(float)
    costs = (costs + costs.T) / 2
    np.fill_diagonal(costs, 0.0)
    costs[0, 1] = costs[1, 0] = np.inf
    x_old = (rng.random((m, n)) < 0.5).astype(np.int8)
    x_new = (rng.random((m, n)) < 0.5).astype(np.int8)
    caps = np.maximum(x_old @ sizes, x_new @ sizes) + 2
    inst = RtspInstance.create(sizes, caps, costs, x_old, x_new)
    monkeypatch.setattr(PendingTransferSelector, "_SCALAR_BLOCK", 1 << 30)
    scalar = get_builder("GMC").build(inst, rng=0)
    monkeypatch.setattr(PendingTransferSelector, "_SCALAR_BLOCK", 0)
    gather = get_builder("GMC").build(inst, rng=0)
    assert scalar.actions() == gather.actions()
