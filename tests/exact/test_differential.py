"""Tests for the differential harness (:mod:`repro.exact.differential`)."""

import json

import numpy as np
import pytest

from repro.exact import (
    DEFAULT_FAMILIES,
    PROVED_OPTIMAL,
    SolverBudget,
    differential_payload,
    family_instances,
    gap_summary,
)
from repro.exact.differential import canonical_json
from repro.util.errors import ConfigurationError


class TestFamilies:
    @pytest.mark.parametrize("family", DEFAULT_FAMILIES)
    def test_deterministic(self, family):
        a = family_instances(family, count=2)
        b = family_instances(family, count=2)
        for x, y in zip(a, b):
            assert np.array_equal(x.sizes, y.sizes)
            assert np.array_equal(x.costs, y.costs)
            assert np.array_equal(x.x_old, y.x_old)
            assert np.array_equal(x.x_new, y.x_new)

    @pytest.mark.parametrize("family", DEFAULT_FAMILIES)
    def test_within_solver_scale(self, family):
        for instance in family_instances(family):
            assert instance.num_servers <= 6
            assert instance.num_objects <= 8

    def test_families_differ(self):
        loose = family_instances("loose", count=1)[0]
        tight = family_instances("tight", count=1)[0]
        # Same generator stream, different slack policy.
        assert float(tight.capacities.sum()) < float(loose.capacities.sum())

    def test_ring_rotates_every_object(self):
        for instance in family_instances("ring"):
            # Every object moves: no overlap between old and new holders.
            assert not np.any((instance.x_old == 1) & (instance.x_new == 1))

    def test_unknown_family(self):
        with pytest.raises(ConfigurationError, match="unknown instance family"):
            family_instances("dense")
        with pytest.raises(ConfigurationError):
            family_instances("ring", count=0)


class TestPayload:
    @pytest.fixture(scope="class")
    def payload(self):
        return differential_payload(
            "ring", count=2, pipelines=("GSDF", "GOLCF"), seeds=(0, 1)
        )

    def test_structure(self, payload):
        assert payload["format"] == "rtsp-golden-exact/1"
        assert payload["family"] == "ring"
        assert [e["index"] for e in payload["instances"]] == [0, 1]
        for entry in payload["instances"]:
            assert entry["exact"]["status"] == PROVED_OPTIMAL
            assert set(entry["heuristics"]) == {"GSDF", "GOLCF"}
            for cells in entry["heuristics"].values():
                assert [c["seed"] for c in cells] == [0, 1]

    def test_gaps_nonnegative_and_valid(self, payload):
        for entry in payload["instances"]:
            for cells in entry["heuristics"].values():
                for cell in cells:
                    assert cell["valid"]
                    assert cell["gap"] >= -1e-12
                    assert cell["cost"] >= entry["exact"]["cost"] - 1e-9

    def test_gap_summary(self, payload):
        summary = gap_summary(payload)
        assert set(summary) == {"GSDF", "GOLCF"}
        for stats in summary.values():
            assert stats["max_gap"] >= stats["mean_gap"] >= 0.0

    def test_canonical_json_round_trips(self, payload):
        text = canonical_json(payload)
        assert text.endswith("\n")
        assert json.loads(text) == payload
        # Canonical means canonical: dumping twice is byte-identical.
        assert canonical_json(json.loads(text)) == text

    def test_respects_budget_override(self):
        payload = differential_payload(
            "ring",
            count=1,
            pipelines=("GSDF",),
            seeds=(0,),
            budget=SolverBudget(max_nodes=500),
        )
        assert payload["solver"]["max_nodes"] == 500
