"""The golden-corpus gate: regenerate and compare byte-for-byte.

This is the test CI's ``exact-differential`` job leans on. It fails when
any heuristic's cost moves on the corpus instances, when the solver
loses an optimality proof, or when a schedule stops validating — the
gaps recorded in ``tests/golden/exact/*.json`` are part of the repo's
contract.
"""

import json
import pathlib

import pytest

from repro.exact import (
    DEFAULT_FAMILIES,
    PROVED_OPTIMAL,
    check_corpus,
    update_corpus,
)
from repro.exact.differential import DEFAULT_GOLDEN_DIR
from repro.tools.cli import main as tools_main

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
GOLDEN_DIR = REPO_ROOT / DEFAULT_GOLDEN_DIR


class TestCommittedCorpus:
    @pytest.mark.parametrize("family", DEFAULT_FAMILIES)
    def test_file_exists_and_is_sound(self, family):
        path = GOLDEN_DIR / f"{family}.json"
        assert path.exists(), "run `python -m repro.tools golden --update`"
        payload = json.loads(path.read_text())
        assert payload["format"] == "rtsp-golden-exact/1"
        for entry in payload["instances"]:
            assert entry["exact"]["status"] == PROVED_OPTIMAL
            assert entry["num_servers"] <= 6
            assert entry["num_objects"] <= 8

    @pytest.mark.slow
    def test_corpus_reproduces_byte_identically(self):
        problems = check_corpus(GOLDEN_DIR)
        assert problems == []


class TestCorpusMaintenance:
    @pytest.mark.slow
    def test_update_then_check_round_trip(self, tmp_path):
        families = ("ring",)
        written = update_corpus(tmp_path, families=families)
        assert [p.name for p in written] == ["ring.json"]
        assert check_corpus(tmp_path, families=families) == []

    @pytest.mark.slow
    def test_check_detects_tampering(self, tmp_path):
        update_corpus(tmp_path, families=("ring",))
        path = tmp_path / "ring.json"
        payload = json.loads(path.read_text())
        payload["instances"][0]["exact"]["cost"] += 1.0
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        problems = check_corpus(tmp_path, families=("ring",))
        assert any("drift" in p for p in problems)
        assert any("exact result moved" in p for p in problems)

    def test_check_reports_missing_file(self, tmp_path):
        problems = check_corpus(tmp_path, families=("ring",))
        assert any("missing golden file" in p for p in problems)


class TestCli:
    @pytest.mark.slow
    def test_golden_check_cli_passes_on_committed_corpus(self, capsys):
        code = tools_main(["golden", "--check", "--dir", str(GOLDEN_DIR)])
        assert code == 0
        assert "passed" in capsys.readouterr().out

    @pytest.mark.slow
    def test_golden_cli_update_and_check(self, tmp_path, capsys):
        assert tools_main(["golden", "--update", "--dir", str(tmp_path)]) == 0
        assert tools_main(["golden", "--check", "--dir", str(tmp_path)]) == 0

    def test_golden_check_cli_fails_on_empty_dir(self, tmp_path, capsys):
        code = tools_main(["golden", "--check", "--dir", str(tmp_path)])
        assert code == 1
        assert "FAILED" in capsys.readouterr().out
