"""Tests for :mod:`repro.exact.solver` (branch-and-bound)."""

import numpy as np
import pytest

from repro.analysis.bounds import residual_lower_bound
from repro.core import build_pipeline, solve_exact
from repro.exact import (
    BEST_FOUND,
    PROVED_OPTIMAL,
    BranchAndBoundSolver,
    SolverBudget,
    solve_optimal,
)
from repro.model.instance import RtspInstance
from repro.obs import MetricsRegistry, use_metrics


def swap_instance(cost=2.0):
    """Two full servers that must swap their objects via staging/dummy."""
    x_old = np.array([[1, 0], [0, 1]], dtype=np.int8)
    x_new = np.array([[0, 1], [1, 0]], dtype=np.int8)
    costs = np.array([[0.0, cost], [cost, 0.0]])
    return RtspInstance.create([1.0, 1.0], [1.0, 1.0], costs, x_old, x_new)


class TestOptimality:
    def test_fig1_proved_optimal(self, fig1):
        result = solve_optimal(fig1)
        assert result.status == PROVED_OPTIMAL
        assert result.proved_optimal
        assert result.cost == 5.0
        assert result.lower_bound == result.cost
        assert result.gap_certificate == 0.0
        assert result.schedule.validate(fig1).ok

    def test_fig3_proved_optimal(self, fig3):
        result = solve_optimal(fig3)
        assert result.status == PROVED_OPTIMAL
        assert result.schedule.validate(fig3).ok

    @pytest.mark.parametrize("fixture", ["fig1", "fig3"])
    def test_matches_legacy_exact_solver(self, fixture, request):
        instance = request.getfixturevalue(fixture)
        legacy = solve_exact(instance)
        assert legacy.complete
        result = solve_optimal(instance)
        assert result.proved_optimal
        assert result.cost == pytest.approx(legacy.cost)

    def test_never_above_heuristics(self, fig3):
        result = solve_optimal(fig3)
        for spec in ("RDF", "GSDF", "AR", "GOLCF", "GOLCF+H1+H2+OP1"):
            for seed in range(3):
                heuristic = build_pipeline(spec).run(fig3, rng=seed)
                assert result.cost <= heuristic.cost(fig3) + 1e-9

    def test_respects_residual_lower_bound(self, fig1, fig3, tiny_instance):
        for instance in (fig1, fig3, tiny_instance):
            result = solve_optimal(instance)
            bound = residual_lower_bound(instance, instance.x_old)
            assert result.cost >= bound - 1e-9

    def test_swap_breaks_cycle_with_single_dummy_fetch(self):
        # Two full servers swapping their objects deadlock without the
        # dummy (paper Fig. 1 in miniature). The optimum sacrifices one
        # replica, moves the other directly (cost 2), and re-fetches the
        # sacrificed object from the dummy (cost 3) — never two dummy
        # fetches (cost 6).
        instance = swap_instance(cost=2.0)
        result = solve_optimal(instance)
        assert result.proved_optimal
        assert result.cost == pytest.approx(5.0)
        assert result.schedule.count_dummy_transfers(instance) == 1

    def test_trivial_instance_zero_cost(self):
        x = np.array([[1]], dtype=np.int8)
        instance = RtspInstance.create(
            [1.0], [1.0], np.zeros((1, 1)), x, x.copy()
        )
        result = solve_optimal(instance)
        assert result.proved_optimal
        assert result.cost == 0.0
        assert len(result.schedule) == 0


class TestDeterminismAndBudget:
    def test_deterministic_across_runs(self, fig3):
        a = solve_optimal(fig3)
        b = solve_optimal(fig3)
        assert a.cost == b.cost
        assert list(a.schedule) == list(b.schedule)
        assert a.stats.nodes == b.stats.nodes

    def test_tiny_node_budget_reports_best_found(self, fig3):
        result = solve_optimal(fig3, budget=SolverBudget(max_nodes=1))
        assert result.status == BEST_FOUND
        assert not result.proved_optimal
        # The seeded incumbent still provides a valid upper bound ...
        assert result.schedule.validate(fig3).ok
        assert np.isfinite(result.cost)
        # ... and the certificate brackets the optimum.
        assert result.lower_bound <= solve_optimal(fig3).cost <= result.cost
        assert result.gap_certificate >= 0.0

    def test_unseeded_tiny_budget_still_sound(self, tiny_instance):
        solver = BranchAndBoundSolver(
            budget=SolverBudget(max_nodes=100_000), seed_incumbent=False
        )
        result = solver.solve(tiny_instance)
        assert result.proved_optimal
        assert result.schedule.validate(tiny_instance).ok

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            SolverBudget(max_nodes=0)
        with pytest.raises(ValueError):
            SolverBudget(max_seconds=-1.0)

    def test_counters_published(self, fig1):
        registry = MetricsRegistry()
        with use_metrics(registry):
            solve_optimal(fig1)
        values = registry.counter_values()
        assert values.get("exact.solves") == 1
        assert values.get("exact.nodes", 0) > 0


class TestStagingToggle:
    def test_disallowing_staging_never_beats_allowing(self, fig3):
        with_staging = solve_optimal(fig3, allow_staging=True)
        without = solve_optimal(fig3, allow_staging=False)
        assert with_staging.cost <= without.cost + 1e-9
        assert without.schedule.validate(fig3).ok
