"""Tests for the strict invariant oracle (:mod:`repro.exact.validate`)."""

import numpy as np
import pytest

from repro.core import build_pipeline, get_builder
from repro.exact import assert_invariants, check_invariants, resolve_validator
from repro.model.actions import Delete, Transfer
from repro.model.instance import RtspInstance
from repro.model.schedule import Schedule
from repro.util.errors import ConfigurationError, InvalidScheduleError


@pytest.fixture
def instance():
    """Three servers, two unit objects, O0 moving from S0 to S2."""
    x_old = np.array([[1, 0], [0, 1], [0, 0]], dtype=np.int8)
    x_new = np.array([[0, 0], [0, 1], [1, 0]], dtype=np.int8)
    costs = np.array([[0.0, 1.0, 2.0], [1.0, 0.0, 1.0], [2.0, 1.0, 0.0]])
    return RtspInstance.create(
        [1.0, 1.0], [2.0, 2.0, 1.0], costs, x_old, x_new
    )


@pytest.fixture
def valid_schedule():
    return Schedule([Transfer(2, 0, 0), Delete(0, 0)])


class TestValidSchedules:
    def test_accepts_and_recomputes(self, instance, valid_schedule):
        report = check_invariants(instance, valid_schedule)
        assert report.ok
        assert report.violations == ()
        assert report.first is None
        assert report.cost == pytest.approx(valid_schedule.cost(instance))
        assert report.dummy_transfers == 0
        assert report.num_actions == 2
        assert report.summary().startswith("valid")

    def test_peak_load_tracks_prefix_maximum(self, instance, valid_schedule):
        report = check_invariants(instance, valid_schedule)
        # S2 rises to 1.0 when the transfer lands; S0 starts (and peaks)
        # at 1.0 before its delete.
        assert report.peak_load == (1.0, 1.0, 1.0)

    def test_assert_returns_report(self, instance, valid_schedule):
        report = assert_invariants(instance, valid_schedule)
        assert report.ok

    def test_agrees_with_model_on_builders(self, instance, fig1, fig3):
        for inst in (instance, fig1, fig3):
            for name in ("RDF", "GSDF", "AR", "GOLCF"):
                schedule = get_builder(name).build(inst, rng=0)
                report = check_invariants(inst, schedule)
                assert report.ok, report.summary()
                assert report.cost == pytest.approx(schedule.cost(inst))
                assert report.dummy_transfers == (
                    schedule.count_dummy_transfers(inst)
                )


class TestViolations:
    def rule_of(self, instance, actions):
        report = check_invariants(instance, Schedule(actions))
        assert not report.ok
        return report.first.rule

    def test_source_missing(self, instance):
        assert self.rule_of(instance, [Transfer(2, 0, 1)]) == "source-missing"

    def test_target_present(self, instance):
        actions = [Transfer(2, 0, 0), Transfer(2, 0, 0)]
        assert self.rule_of(instance, actions) == "target-present"

    def test_self_transfer(self, instance):
        assert self.rule_of(instance, [Transfer(0, 0, 0)]) == "self-transfer"

    def test_dummy_target(self, instance):
        dummy = instance.dummy
        assert self.rule_of(instance, [Transfer(dummy, 0, 0)]) == "dummy-target"

    def test_dummy_delete(self, instance):
        assert self.rule_of(instance, [Delete(instance.dummy, 0)]) == (
            "dummy-delete"
        )

    def test_replica_missing(self, instance):
        assert self.rule_of(instance, [Delete(2, 0)]) == "replica-missing"

    def test_capacity_at_prefix(self, instance):
        # S2 has room for one unit object; a second transfer overflows it
        # even though deleting later would fix the end state.
        actions = [Transfer(2, 0, 0), Transfer(2, 1, 1)]
        assert self.rule_of(instance, actions) == "capacity"

    def test_index_range(self, instance):
        assert self.rule_of(instance, [Transfer(99, 0, 0)]) == "index-range"
        assert self.rule_of(instance, [Delete(0, 99)]) == "index-range"

    def test_unknown_action(self, instance):
        assert self.rule_of(instance, [object()]) == "unknown-action"

    def test_landing(self, instance):
        # Valid steps, wrong destination: O0 never reaches S2.
        report = check_invariants(instance, Schedule([]))
        assert not report.ok
        assert report.first.rule == "landing"
        assert report.first.position is None

    def test_invalid_actions_still_charged(self, instance):
        # Differential comparisons need the cost of the whole sequence.
        report = check_invariants(
            instance, Schedule([Transfer(2, 0, 0), Transfer(2, 0, 0)])
        )
        assert not report.ok
        assert report.cost == pytest.approx(2 * instance.costs[2, 0])

    def test_assert_raises_with_context(self, instance):
        with pytest.raises(InvalidScheduleError, match="unit-test:"):
            assert_invariants(instance, Schedule([]), context="unit-test")


class TestResolveValidator:
    def test_none_and_false_disable(self):
        assert resolve_validator(None) is None
        assert resolve_validator(False) is None

    def test_basic_replays_model(self, instance, valid_schedule):
        validator = resolve_validator("basic")
        validator(instance, valid_schedule)  # does not raise
        with pytest.raises(InvalidScheduleError):
            validator(instance, Schedule([]))

    def test_strict_uses_oracle(self, instance, valid_schedule):
        validator = resolve_validator("strict")
        validator(instance, valid_schedule)
        with pytest.raises(InvalidScheduleError):
            validator(instance, Schedule([Transfer(2, 0, 1)]))

    def test_callable_passthrough(self):
        sentinel = lambda instance, schedule: None  # noqa: E731
        assert resolve_validator(sentinel) is sentinel

    def test_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            resolve_validator("very-strict")
        with pytest.raises(ConfigurationError):
            resolve_validator(3.14)


class TestPipelineWiring:
    def test_strict_pipeline_accepts_all_stages(self, fig3):
        schedule = build_pipeline("GOLCF+H1+H2+OP1", validate="strict").run(
            fig3, rng=0
        )
        assert schedule.validate(fig3).ok

    def test_failing_validator_names_stage(self, fig3):
        def reject(instance, schedule):
            raise InvalidScheduleError("nope", position=0)

        with pytest.raises(InvalidScheduleError, match="stage 'GSDF'"):
            build_pipeline("GSDF", validate=reject).run(fig3, rng=0)

    def test_build_checked_default_strict(self, fig3):
        schedule = get_builder("GOLCF").build_checked(fig3, rng=0)
        assert schedule.validate(fig3).ok
