"""Tests for experiment configuration."""

import pytest

from repro.experiments.config import (
    SCALES,
    ExperimentScale,
    FigureSpec,
    get_scale,
)
from repro.util.errors import ConfigurationError


class TestScales:
    def test_builtin_scales_present(self):
        assert {"small", "medium", "paper"} <= set(SCALES)

    def test_paper_scale_matches_paper(self):
        paper = SCALES["paper"]
        assert paper.num_servers == 50
        assert paper.num_objects == 1000

    def test_get_scale(self):
        assert get_scale("small").name == "small"

    def test_unknown_scale(self):
        with pytest.raises(ConfigurationError):
            get_scale("galactic")

    def test_scaled_servers(self):
        scale = ExperimentScale("t", 50, 100, 1)
        assert scale.scaled_servers(0.2) == 10
        assert scale.scaled_servers(1.0) == 50
        assert scale.scaled_servers(0.0) == 0


class TestFigureSpec:
    def _spec(self, **overrides):
        kwargs = dict(
            figure_id="figX",
            title="t",
            x_label="x",
            y_label="y",
            metric="cost",
            pipelines=["GOLCF"],
            x_values=[1, 2],
            make_instance=lambda x, scale, seed: None,
            workload_key="k",
        )
        kwargs.update(overrides)
        return FigureSpec(**kwargs)

    def test_valid_spec(self):
        assert self._spec().figure_id == "figX"

    def test_bad_metric(self):
        with pytest.raises(ConfigurationError):
            self._spec(metric="latency")

    def test_empty_pipelines(self):
        with pytest.raises(ConfigurationError):
            self._spec(pipelines=[])

    def test_empty_x_values(self):
        with pytest.raises(ConfigurationError):
            self._spec(x_values=[])
