"""Tests for the figure specifications."""

import pytest

from repro.experiments.config import ExperimentScale
from repro.experiments.figures import FIGURES, get_figure
from repro.util.errors import ConfigurationError

TINY = ExperimentScale("tiny", num_servers=6, num_objects=12, repetitions=1)


class TestRegistry:
    def test_all_six_figures_present(self):
        assert set(FIGURES) == {f"fig{i}" for i in range(4, 10)}

    def test_lookup_by_number(self):
        assert get_figure("4").figure_id == "fig4"
        assert get_figure("fig7").figure_id == "fig7"
        assert get_figure("FIG9").figure_id == "fig9"

    def test_unknown_figure(self):
        with pytest.raises(ConfigurationError):
            get_figure("fig99")


class TestSpecsMatchPaper:
    def test_metrics(self):
        assert FIGURES["fig4"].metric == "dummy_transfers"
        assert FIGURES["fig5"].metric == "cost"
        assert FIGURES["fig6"].metric == "dummy_transfers"
        assert FIGURES["fig7"].metric == "cost"
        assert FIGURES["fig8"].metric == "dummy_transfers"
        assert FIGURES["fig9"].metric == "cost"

    def test_experiment1_sweeps_replicas(self):
        assert FIGURES["fig4"].x_values == [1, 2, 3, 4, 5]
        assert FIGURES["fig5"].x_values == [1, 2, 3, 4, 5]

    def test_experiment3_sweeps_slack(self):
        assert FIGURES["fig8"].x_values[0] == 0.0
        assert FIGURES["fig8"].x_values[-1] == 1.0

    def test_paired_figures_share_workloads(self):
        assert FIGURES["fig4"].workload_key == FIGURES["fig5"].workload_key
        assert FIGURES["fig6"].workload_key == FIGURES["fig7"].workload_key
        assert FIGURES["fig8"].workload_key == FIGURES["fig9"].workload_key
        assert FIGURES["fig4"].workload_key != FIGURES["fig6"].workload_key

    def test_winner_pipeline_in_every_cost_figure(self):
        for fid in ("fig5", "fig7", "fig9"):
            assert "GOLCF+H1+H2+OP1" in FIGURES[fid].pipelines

    def test_fig6_is_golcf_variants_only(self):
        assert all(p.startswith("GOLCF") for p in FIGURES["fig6"].pipelines)


class TestInstanceFactories:
    @pytest.mark.parametrize("fid", sorted(FIGURES))
    def test_factories_produce_feasible_instances(self, fid):
        spec = FIGURES[fid]
        x = spec.x_values[0]
        inst = spec.make_instance(x, TINY, seed=42)
        inst.check_feasible()
        assert inst.num_servers == TINY.num_servers
        assert inst.num_objects == TINY.num_objects

    def test_equal_size_figures(self):
        inst = FIGURES["fig4"].make_instance(2, TINY, seed=1)
        assert len(set(inst.sizes.tolist())) == 1

    def test_uniform_size_figures(self):
        inst = FIGURES["fig6"].make_instance(2, TINY, seed=1)
        assert len(set(inst.sizes.tolist())) > 1

    def test_fig8_slack_grows_with_x(self):
        lo = FIGURES["fig8"].make_instance(0.0, TINY, seed=2)
        hi = FIGURES["fig8"].make_instance(1.0, TINY, seed=2)
        assert hi.capacities.sum() > lo.capacities.sum()

    def test_same_seed_same_workload_across_paired_figures(self):
        a = FIGURES["fig4"].make_instance(2, TINY, seed=3)
        b = FIGURES["fig5"].make_instance(2, TINY, seed=3)
        assert (a.x_old == b.x_old).all()
        assert (a.x_new == b.x_new).all()
