"""Tests for reporting and the CLI."""

import os

import pytest

from repro.experiments.cli import build_parser, main
from repro.experiments.config import ExperimentScale, FigureSpec
from repro.experiments.report import render_ascii_chart, render_csv, render_table
from repro.experiments.runner import run_figure
from repro.workloads.regular import paper_instance

TINY = ExperimentScale("tiny", num_servers=6, num_objects=12, repetitions=2)


@pytest.fixture(scope="module")
def result():
    spec = FigureSpec(
        figure_id="figT",
        title="tiny title",
        x_label="replicas",
        y_label="cost",
        metric="cost",
        pipelines=["AR", "GOLCF"],
        x_values=[1, 2],
        make_instance=lambda x, scale, seed: paper_instance(
            replicas=int(x),
            num_servers=scale.num_servers,
            num_objects=scale.num_objects,
            rng=seed,
        ),
        workload_key="tiny-report",
        expected_shape="GOLCF below AR",
    )
    return run_figure(spec, TINY)


class TestRenderTable:
    def test_contains_title_and_series(self, result):
        table = render_table(result)
        assert "tiny title" in table
        assert "AR" in table and "GOLCF" in table
        assert "replicas" in table

    def test_one_row_per_x(self, result):
        table = render_table(result)
        lines = [l for l in table.splitlines() if l.strip().startswith(("1", "2"))]
        assert len(lines) == 2

    def test_expected_shape_shown(self, result):
        assert "GOLCF below AR" in render_table(result)

    def test_std_suppression(self, result):
        assert "±" not in render_table(result, show_std=False)


class TestRenderCsv:
    def test_header_and_rows(self, result):
        csv = render_csv(result)
        lines = csv.strip().splitlines()
        assert lines[0].startswith("figure,scale,x,pipeline")
        assert len(lines) == 1 + len(result.cells)

    def test_values_joined(self, result):
        csv = render_csv(result)
        assert ";" in csv  # two repetition values per cell


class TestAsciiChart:
    def test_contains_marks_and_bounds(self, result):
        chart = render_ascii_chart(result)
        assert "o=AR" in chart
        assert "x=GOLCF" in chart
        assert "replicas" in chart


class TestCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.figure == "all"
        assert args.scale == "small"

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scale", "galactic"])

    def test_end_to_end_single_figure(self, tmp_path, capsys):
        code = main(
            [
                "--figure",
                "4",
                "--scale",
                "small",
                "--reps",
                "1",
                "--quiet",
                "--csv-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "FIG4" in out
        assert os.path.exists(tmp_path / "fig4.csv")

    def test_seed_override_changes_results(self, capsys):
        main(["--figure", "4", "--scale", "small", "--reps", "1", "--quiet",
              "--seed", "1"])
        out1 = capsys.readouterr().out
        main(["--figure", "4", "--scale", "small", "--reps", "1", "--quiet",
              "--seed", "2"])
        out2 = capsys.readouterr().out
        assert out1 != out2


class TestObservabilityFlags:
    def test_trace_metrics_profile_artifacts(self, tmp_path, capsys):
        import json

        from repro.obs import validate_trace_file

        trace = tmp_path / "trace.jsonl"
        chrome = tmp_path / "chrome.json"
        metrics = tmp_path / "metrics.json"
        code = main(
            ["--figure", "4", "--scale", "small", "--reps", "1", "--quiet",
             "--trace", str(trace), "--chrome-trace", str(chrome),
             "--metrics-json", str(metrics), "--profile"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"wrote {trace}" in out
        assert "function calls" in out  # --profile output
        assert validate_trace_file(str(trace)) == []
        chrome_data = json.loads(chrome.read_text())
        assert chrome_data["traceEvents"]
        snap = json.loads(metrics.read_text())
        assert snap["format"] == "rtsp-metrics/1"
        assert snap["counters"]["builder.candidates_scanned"] > 0
        assert snap["counters"]["nearest_index.cache_misses"] > 0
        assert snap["histograms"]["executor.queue_depth"]["count"] > 0

    def test_parser_obs_defaults(self):
        args = build_parser().parse_args([])
        assert args.trace is None
        assert args.metrics_json is None
        assert not args.profile
