"""Tests for the failure-rate sweep and its CLI entry point."""

import json
import os

import pytest

from repro.experiments.cli import build_parser, main
from repro.experiments.config import ExperimentScale
from repro.experiments.robust_sweep import (
    render_robust_csv,
    render_robust_table,
    run_robust_sweep,
)
from repro.util.errors import ConfigurationError

TINY = ExperimentScale("tiny", num_servers=6, num_objects=12, repetitions=2)


@pytest.fixture(scope="module")
def result():
    return run_robust_sweep(
        TINY, rates=[0.0, 0.1], pipelines=["GSDF", "GOLCF+H1+H2"], fault_seed=3
    )


class TestRunRobustSweep:
    def test_cell_coverage(self, result):
        assert len(result.cells) == 2 * 2  # rates x pipelines
        assert {c.pipeline for c in result.cells} == {"GSDF", "GOLCF+H1+H2"}

    def test_zero_rate_has_zero_overhead(self, result):
        for name in result.pipelines:
            cell = result.cell(0.0, name)
            assert cell.cost_overhead == 0.0
            assert cell.repair_rounds == 0.0
            assert cell.dummy_fallbacks == 0.0
            assert cell.makespan_stretch == 1.0

    def test_nonzero_rate_records_stats(self, result):
        for name in result.pipelines:
            cell = result.cell(0.1, name)
            assert len(cell.stats) == TINY.repetitions
            assert cell.makespan_stretch >= 1.0

    def test_deterministic(self):
        a = run_robust_sweep(TINY, rates=[0.1], pipelines=["GSDF"], fault_seed=3)
        b = run_robust_sweep(TINY, rates=[0.1], pipelines=["GSDF"], fault_seed=3)
        for ca, cb in zip(a.cells, b.cells):
            assert [s.as_dict() for s in ca.stats] == [
                s.as_dict() for s in cb.stats
            ]

    def test_fault_seed_changes_plans(self):
        a = run_robust_sweep(TINY, rates=[0.2], pipelines=["GSDF"], fault_seed=1)
        b = run_robust_sweep(TINY, rates=[0.2], pipelines=["GSDF"], fault_seed=2)
        assert [s.as_dict() for s in a.cells[0].stats] != [
            s.as_dict() for s in b.cells[0].stats
        ]

    def test_series_and_cell_lookup(self, result):
        series = result.series("GSDF")
        assert len(series) == 2
        assert series[0] == result.cell(0.0, "GSDF").cost_overhead
        with pytest.raises(KeyError):
            result.cell(0.9, "GSDF")

    def test_repetition_override(self):
        out = run_robust_sweep(
            TINY, rates=[0.0], pipelines=["GSDF"], repetitions=1
        )
        assert len(out.cells[0].stats) == 1

    def test_progress_callback(self):
        lines = []
        run_robust_sweep(
            TINY,
            rates=[0.0],
            pipelines=["GSDF"],
            repetitions=1,
            progress=lines.append,
        )
        assert len(lines) == 1
        assert "robust" in lines[0]

    def test_to_dict_is_json_ready(self, result):
        data = result.to_dict()
        json.dumps(data)
        assert data["format"] == "rtsp-robust-sweep/1"
        assert data["fault_seed"] == 3
        assert len(data["cells"]) == 4


class TestRendering:
    def test_table_rows(self, result):
        table = render_robust_table(result)
        assert "Robustness sweep" in table
        assert table.count("GSDF") >= 2

    def test_csv_rows(self, result):
        csv = render_robust_csv(result)
        lines = csv.strip().splitlines()
        assert lines[0].startswith("rate,pipeline,")
        assert len(lines) == 1 + len(result.cells)


class TestCli:
    def test_parser_accepts_fault_flags(self):
        args = build_parser().parse_args(
            ["--figure", "robust", "--fault-rate", "0.1,0.2", "--fault-seed", "5"]
        )
        assert args.figure == "robust"
        assert args.fault_rate == "0.1,0.2"
        assert args.fault_seed == 5

    def test_end_to_end_robust(self, tmp_path, capsys):
        code = main(
            [
                "--figure",
                "robust",
                "--scale",
                "small",
                "--reps",
                "1",
                "--quiet",
                "--fault-rate",
                "0.0,0.1",
                "--fault-seed",
                "7",
                "--csv-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Robustness sweep" in out
        assert os.path.exists(tmp_path / "robust.csv")
        with open(tmp_path / "robust.json", encoding="utf-8") as fh:
            data = json.load(fh)
        assert data["format"] == "rtsp-robust-sweep/1"
        assert data["fault_seed"] == 7

    def test_bad_fault_rate_rejected(self):
        with pytest.raises(ConfigurationError, match="fault-rate"):
            main(["--figure", "robust", "--scale", "small", "--reps", "1",
                  "--quiet", "--fault-rate", "lots"])


class TestRepairCounters:
    def test_replans_and_backoff_in_cells(self, result):
        zero = result.cell(0.0, "GSDF")
        assert zero.replans == 0.0
        assert zero.backoff_total == 0.0
        faulty = result.cell(0.1, "GSDF")
        assert faulty.replans >= 0.0
        assert faulty.replans == pytest.approx(faulty.repair_rounds)

    def test_new_columns_rendered(self, result):
        table = render_robust_table(result)
        assert "replans" in table and "backoff" in table
        csv = render_robust_csv(result)
        assert "replans,backoff_total" in csv.splitlines()[0]

    def test_to_dict_carries_new_fields(self, result):
        data = result.to_dict()
        for cell in data["cells"]:
            assert "replans" in cell and "backoff_total" in cell
            for rep in cell["repetitions"]:
                assert "replans" in rep and "backoff_total" in rep
