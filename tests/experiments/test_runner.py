"""Tests for the experiment runner."""

import pytest

from repro.experiments.config import ExperimentScale, FigureSpec
from repro.experiments.runner import CellResult, FigureResult, run_figure
from repro.workloads.regular import paper_instance

TINY = ExperimentScale("tiny", num_servers=6, num_objects=12, repetitions=2)


def tiny_spec(metric="cost", pipelines=None, x_values=None):
    return FigureSpec(
        figure_id="figT",
        title="tiny",
        x_label="r",
        y_label="y",
        metric=metric,
        pipelines=pipelines or ["AR", "GOLCF"],
        x_values=x_values or [1, 2],
        make_instance=lambda x, scale, seed: paper_instance(
            replicas=int(x),
            num_servers=scale.num_servers,
            num_objects=scale.num_objects,
            rng=seed,
        ),
        workload_key="tiny-test",
    )


class TestRunFigure:
    def test_cell_coverage(self):
        result = run_figure(tiny_spec(), TINY)
        assert len(result.cells) == 2 * 2  # x values x pipelines
        assert {c.pipeline for c in result.cells} == {"AR", "GOLCF"}

    def test_repetitions_recorded(self):
        result = run_figure(tiny_spec(), TINY)
        assert all(len(c.values) == 2 for c in result.cells)

    def test_repetition_override(self):
        result = run_figure(tiny_spec(), TINY, repetitions=1)
        assert all(len(c.values) == 1 for c in result.cells)

    def test_deterministic(self):
        a = run_figure(tiny_spec(), TINY)
        b = run_figure(tiny_spec(), TINY)
        for ca, cb in zip(a.cells, b.cells):
            assert ca.values == cb.values

    def test_series_ordering(self):
        result = run_figure(tiny_spec(), TINY)
        series = result.series("GOLCF")
        assert len(series) == 2
        assert series[0] == result.cell(1, "GOLCF").mean

    def test_cell_lookup_missing(self):
        result = run_figure(tiny_spec(), TINY)
        with pytest.raises(KeyError):
            result.cell(99, "GOLCF")

    def test_progress_callback(self):
        lines = []
        run_figure(tiny_spec(), TINY, progress=lines.append)
        assert len(lines) == 4
        assert all("figT" in line for line in lines)

    def test_dummy_metric(self):
        result = run_figure(tiny_spec(metric="dummy_transfers"), TINY)
        for c in result.cells:
            assert all(v == int(v) and v >= 0 for v in c.values)

    def test_timing_recorded(self):
        result = run_figure(tiny_spec(), TINY)
        assert result.seconds > 0
        assert all(c.seconds >= 0 for c in result.cells)


class TestParallelRunFigure:
    def test_bit_identical_to_serial(self):
        spec = tiny_spec()
        serial = run_figure(spec, TINY)
        parallel = run_figure(spec, TINY, workers=4)
        assert len(serial.cells) == len(parallel.cells)
        for cs, cp in zip(serial.cells, parallel.cells):
            assert (cs.x, cs.pipeline) == (cp.x, cp.pipeline)
            assert cs.values == cp.values  # exact float equality

    def test_dummy_metric_bit_identical(self):
        spec = tiny_spec(metric="dummy_transfers")
        serial = run_figure(spec, TINY)
        parallel = run_figure(spec, TINY, workers=2)
        for cs, cp in zip(serial.cells, parallel.cells):
            assert cs.values == cp.values

    def test_repetition_override_parallel(self):
        result = run_figure(tiny_spec(), TINY, repetitions=1, workers=2)
        assert all(len(c.values) == 1 for c in result.cells)

    def test_progress_callback_parallel(self):
        lines = []
        run_figure(tiny_spec(), TINY, workers=2, progress=lines.append)
        assert len(lines) == 4
        assert all("figT" in line for line in lines)

    def test_workers_one_stays_serial(self):
        spec = tiny_spec()
        a = run_figure(spec, TINY, workers=1)
        b = run_figure(spec, TINY)
        for ca, cb in zip(a.cells, b.cells):
            assert ca.values == cb.values

    def test_serial_fallback_is_loud(self, monkeypatch):
        """No fork start method: warn, tell progress, still compute."""
        import multiprocessing

        def no_fork(method=None):
            raise ValueError("cannot find context for 'fork'")

        monkeypatch.setattr(multiprocessing, "get_context", no_fork)
        spec = tiny_spec()
        lines = []
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            result = run_figure(spec, TINY, workers=4, progress=lines.append)
        assert any("falling back to serial" in line for line in lines)
        serial = run_figure(spec, TINY)
        for cf, cs in zip(result.cells, serial.cells):
            assert cf.values == cs.values

    def test_spawn_only_platform_falls_back_serially(self, monkeypatch):
        """Platforms advertising only 'spawn' degrade loudly, not fatally.

        Regression: the old runner only caught get_context('fork')
        raising; a platform where 'fork' is absent from
        get_all_start_methods() never reached that probe and crashed
        inside the pool instead."""
        import multiprocessing

        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )
        spec = tiny_spec()
        lines = []
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            result = run_figure(spec, TINY, workers=3, progress=lines.append)
        assert any("falling back to serial" in line for line in lines)
        serial = run_figure(spec, TINY)
        for cf, cs in zip(result.cells, serial.cells):
            assert cf.values == cs.values


class TestCellResult:
    def test_mean_std(self):
        cell = CellResult(x=1, pipeline="p", values=[2.0, 4.0], seconds=0.0)
        assert cell.mean == 3.0
        assert cell.std == 1.0
